package main

import (
	"math"
	"testing"

	"dcra/internal/experiments"
)

func baseRecord() Record {
	return Record{
		NsPerCycle:        100,
		Figure5Seconds:    10,
		Figure5AllocBytes: 1 << 20,
		Figure5Allocs:     10_000,
		SampledSeconds:    2,
		SampledSpeedup:    5,
		DetailedFraction:  0.25,
		VsICount:          8.5,
		Parity:            experiments.ParityStats{Cells: 12, WithinCI: 12, AllWithin: true},
	}
}

func deltaByName(t *testing.T, deltas []MetricDelta, name string) MetricDelta {
	t.Helper()
	for _, d := range deltas {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("no delta named %q in %+v", name, deltas)
	return MetricDelta{}
}

func TestDiffRecordsNoChange(t *testing.T) {
	deltas, regressed := diffRecords(baseRecord(), baseRecord(), 0.10)
	if regressed {
		t.Fatalf("identical records flagged as regression: %+v", deltas)
	}
	if len(deltas) != 8 {
		t.Fatalf("expected 8 metric deltas, got %d", len(deltas))
	}
	for _, d := range deltas {
		if d.Pct != 0 || d.Regressed {
			t.Errorf("delta %s: pct %v regressed %v", d.Name, d.Pct, d.Regressed)
		}
	}
}

func TestDiffRecordsSlowdownRegresses(t *testing.T) {
	old, rec := baseRecord(), baseRecord()
	rec.NsPerCycle = 120 // +20% past the 10% threshold
	deltas, regressed := diffRecords(old, rec, 0.10)
	if !regressed {
		t.Fatal("20% ns/cycle slowdown not flagged")
	}
	d := deltaByName(t, deltas, "ns_per_cycle")
	if !d.Regressed || math.Abs(d.Pct-20) > 1e-9 {
		t.Errorf("ns_per_cycle delta = %+v", d)
	}
	// Other metrics stay clean.
	if deltaByName(t, deltas, "figure5_quick_seconds").Regressed {
		t.Error("unchanged metric flagged")
	}
}

func TestDiffRecordsWithinThreshold(t *testing.T) {
	old, rec := baseRecord(), baseRecord()
	rec.NsPerCycle = 105      // +5%, inside the threshold
	rec.SampledSpeedup = 4.8  // -4%, inside the threshold (higher-better)
	rec.Figure5Seconds = 9    // improvement, never a regression
	if deltas, regressed := diffRecords(old, rec, 0.10); regressed {
		t.Fatalf("within-threshold moves flagged: %+v", deltas)
	}
}

func TestDiffRecordsHigherBetterRegresses(t *testing.T) {
	old, rec := baseRecord(), baseRecord()
	rec.SampledSpeedup = 4 // -20% on a higher-is-better metric
	deltas, regressed := diffRecords(old, rec, 0.10)
	if !regressed || !deltaByName(t, deltas, "figure5_sampled_speedup").Regressed {
		t.Fatalf("speedup collapse not flagged: %+v", deltas)
	}
}

func TestDiffRecordsParityHardGate(t *testing.T) {
	old, rec := baseRecord(), baseRecord()
	rec.Parity.WithinCI = 11
	rec.Parity.AllWithin = false
	deltas, regressed := diffRecords(old, rec, 0.10)
	if !regressed {
		t.Fatal("parity true->false not flagged")
	}
	if !deltaByName(t, deltas, "fig5_sampled_parity.all_within").Regressed {
		t.Fatalf("parity delta missing regression mark: %+v", deltas)
	}

	// A record that never had parity (old.AllWithin false) adds no gate.
	old.Parity.AllWithin = false
	if _, regressed := diffRecords(old, rec, 0.10); regressed {
		t.Fatal("parity gate fired without a true baseline")
	}
}

func TestDiffRecordsZeroBaseline(t *testing.T) {
	old, rec := Record{}, baseRecord()
	deltas, regressed := diffRecords(old, rec, 0.10)
	if regressed {
		t.Fatalf("zero-baseline diff flagged: %+v", deltas)
	}
	if d := deltaByName(t, deltas, "ns_per_cycle"); !math.IsNaN(d.Pct) {
		t.Errorf("zero baseline should yield NaN pct, got %v", d.Pct)
	}
}
