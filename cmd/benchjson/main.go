// Command benchjson records the repo's performance trajectory as JSON: raw
// simulator speed (the same measurement as BenchmarkSimulatorSpeed), the
// quick-suite Figure 5 wall-clock plus allocation totals (the same
// measurement as BenchmarkFigure5), and the sampled-mode sweep's wall-clock,
// speedup, and exact-vs-sampled parity statistics. CI and PERFORMANCE.md use
// it to track ns/cycle across PRs without parsing `go test -bench` output.
//
// Usage:
//
//	benchjson                      # writes bench.json in the working dir
//	benchjson -out BENCH_PR2.json  # the committed per-PR trajectory points
//	benchjson -cycles 2000000      # longer simulator-speed measurement
//	benchjson -diff A.json B.json  # per-metric deltas; exit 1 on regression
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dcra"
	"dcra/internal/campaign"
	"dcra/internal/experiments"
	"dcra/internal/obs"
	"dcra/internal/sample"
)

// Record is the JSON schema of one trajectory point.
type Record struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Workers     int    `json:"workers"`

	// Raw cycle-kernel speed, BenchmarkSimulatorSpeed's measurement.
	SimCycles   uint64  `json:"sim_cycles"`
	NsPerCycle  float64 `json:"ns_per_cycle"`
	SimThreads  int     `json:"sim_threads"`
	SimPolicy   string  `json:"sim_policy"`
	SimDuration float64 `json:"sim_duration_seconds"`

	// Quick-suite Figure 5, BenchmarkFigure5's measurement.
	Figure5Seconds    float64 `json:"figure5_quick_seconds"`
	Figure5AllocBytes uint64  `json:"figure5_alloc_bytes"`
	Figure5Allocs     uint64  `json:"figure5_allocs"`

	// Headline reproduction metrics, to confirm optimisation did not move
	// the science.
	VsICount  float64 `json:"fig5_hmean_vs_icount_pct"`
	VsDG      float64 `json:"fig5_hmean_vs_dg_pct"`
	VsFlushPP float64 `json:"fig5_hmean_vs_flushpp_pct"`

	// Sampled-mode quick Figure 5: the same sweep under SMARTS sampling, its
	// speedup over the exact sweep above, and the parity contract (every
	// cell's sampled throughput within its reported 99.7% CI of exact).
	SampledSeconds float64                 `json:"figure5_sampled_quick_seconds"`
	SampledSpeedup float64                 `json:"figure5_sampled_speedup"`
	Parity         experiments.ParityStats `json:"fig5_sampled_parity"`

	// Adaptive-sampling efficiency: how much detailed simulation the sampled
	// sweep actually paid for, harvested from the runner's obs counters.
	// DetailedFraction is detailed-simulated cycles (windows + pilot +
	// warmups) over the exact-equivalent cycles the same runs would have
	// cost; PilotWarmupShare is the slice of those detailed cycles that is
	// measurement overhead rather than measured windows; MeanWindows is the
	// mean stopping point per sampled run (between min_windows and windows).
	SampledRuns      int64   `json:"sampled_runs"`
	MeanWindows      float64 `json:"sampled_mean_windows_per_run"`
	DetailedFraction float64 `json:"sampled_detailed_cycle_fraction"`
	PilotWarmupShare float64 `json:"sampled_pilot_warmup_share"`
}

func main() {
	var (
		out    = flag.String("out", "bench.json", "output JSON path")
		cycles = flag.Uint64("cycles", 1_000_000, "cycles for the simulator-speed measurement")
		diff   = flag.Bool("diff", false, "compare two trajectory points: benchjson -diff OLD.json NEW.json")
		thresh = flag.Float64("threshold", 0.10, "with -diff: relative wrong-direction move that counts as a regression")
	)
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-diff needs exactly two record paths, got %d", flag.NArg()))
		}
		runDiff(flag.Arg(0), flag.Arg(1), *thresh)
		return
	}
	if *cycles == 0 {
		fatal(fmt.Errorf("-cycles must be > 0"))
	}

	rec := Record{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}

	// Raw simulator speed: the 4-thread DCRA machine of
	// BenchmarkSimulatorSpeed, 5k warmup then a timed run.
	m, err := dcra.NewMachine(dcra.BaselineConfig(), []dcra.Profile{
		dcra.MustProfile("gzip"), dcra.MustProfile("mcf"),
		dcra.MustProfile("art"), dcra.MustProfile("eon"),
	}, dcra.NewDCRA(), 1)
	if err != nil {
		fatal(err)
	}
	m.Run(5_000)
	start := time.Now()
	m.Run(*cycles)
	simDur := time.Since(start)
	rec.SimCycles = *cycles
	rec.NsPerCycle = float64(simDur.Nanoseconds()) / float64(*cycles)
	rec.SimThreads = 4
	rec.SimPolicy = "DCRA"
	rec.SimDuration = simDur.Seconds()

	// Quick-suite Figure 5 wall-clock and allocation totals, using the same
	// reduced windows as BenchmarkFigure5.
	s := experiments.NewQuickSuite()
	s.Runner.Warmup, s.Runner.Measure = 15_000, 60_000
	rec.Workers = s.Engine.Workers()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start = time.Now()
	f5, err := experiments.Figure5(s)
	if err != nil {
		fatal(err)
	}
	rec.Figure5Seconds = time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	rec.Figure5AllocBytes = after.TotalAlloc - before.TotalAlloc
	rec.Figure5Allocs = after.Mallocs - before.Mallocs
	rec.VsICount = f5.AvgHmeanImprovement[experiments.PolICount]
	rec.VsDG = f5.AvgHmeanImprovement[experiments.PolDG]
	rec.VsFlushPP = f5.AvgHmeanImprovement[experiments.PolFlushPP]

	// Sampled-mode Figure 5: time the same sweep under the adaptive SMARTS
	// protocol (variance-driven windows, drift-sized skip, warm-tail gaps),
	// then run the parity harness — the exact cells above and the sampled
	// cells just timed are both memoised, so parity adds only the comparison.
	sampled := experiments.NewQuickSuite()
	sampled.Runner.Warmup, sampled.Runner.Measure = 15_000, 60_000
	sampled.Mode = campaign.ModeSampled
	sampled.Sampling = sample.DeriveAdaptive(15_000, 60_000).Config()
	reg := obs.NewRegistry()
	sampled.Runner.Obs = reg
	start = time.Now()
	if err := sampled.Prefetch(experiments.Figure5Sweep().Cells); err != nil {
		fatal(err)
	}
	rec.SampledSeconds = time.Since(start).Seconds()
	if rec.SampledSeconds > 0 {
		rec.SampledSpeedup = rec.Figure5Seconds / rec.SampledSeconds
	}
	if _, parity, err := experiments.Figure5Parity(s, sampled); err != nil {
		fatal(err)
	} else {
		rec.Parity = parity
	}
	rec.SampledRuns = reg.Counter("sample.runs").Value()
	if rec.SampledRuns > 0 {
		detailed := reg.Counter("sample.cycles.detailed").Value()
		overhead := reg.Counter("sample.cycles.overhead").Value()
		rec.MeanWindows = float64(reg.Counter("sample.windows").Value()) / float64(rec.SampledRuns)
		exactEquiv := rec.SampledRuns * int64(sampled.Runner.Warmup+sampled.Runner.Measure)
		rec.DetailedFraction = float64(detailed+overhead) / float64(exactEquiv)
		rec.PilotWarmupShare = float64(overhead) / float64(detailed+overhead)
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: %.0f ns/cycle, figure5 quick %.1fs exact / %.1fs sampled (%.2fx, %d/%d within CI, %d workers) -> %s\n",
		rec.NsPerCycle, rec.Figure5Seconds, rec.SampledSeconds, rec.SampledSpeedup,
		rec.Parity.WithinCI, rec.Parity.Cells, rec.Workers, *out)
	fmt.Printf("benchjson: adaptive sampling: %.2f windows/run over %d runs, %.1f%% detailed, %.1f%% of that pilot+warmup\n",
		rec.MeanWindows, rec.SampledRuns, 100*rec.DetailedFraction, 100*rec.PilotWarmupShare)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
