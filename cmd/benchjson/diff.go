// benchjson -diff: compare two trajectory points and flag regressions, so
// CI and PR review can read "what moved" without eyeballing raw JSON.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// MetricDelta is one compared metric between two bench records.
type MetricDelta struct {
	Name string
	// Old and New are the metric values; Pct is (new-old)/old in percent
	// (NaN when old is zero).
	Old, New float64
	Pct      float64
	// LowerBetter orients the regression test; Regressed is set when the
	// metric moved the wrong way past the threshold.
	LowerBetter bool
	Regressed   bool
}

// diffRecords compares the perf-tracked metrics of two records. threshold is
// the relative change (e.g. 0.10) past which a wrong-direction move counts
// as a regression. Parity is a hard gate: all_within=true degrading to false
// is always a regression, no threshold.
func diffRecords(old, new Record, threshold float64) (deltas []MetricDelta, regressed bool) {
	add := func(name string, o, n float64, lowerBetter bool) {
		d := MetricDelta{Name: name, Old: o, New: n, LowerBetter: lowerBetter, Pct: math.NaN()}
		if o != 0 {
			d.Pct = 100 * (n - o) / o
			moved := (n - o) / o
			if lowerBetter && moved > threshold {
				d.Regressed = true
			}
			if !lowerBetter && moved < -threshold {
				d.Regressed = true
			}
		}
		regressed = regressed || d.Regressed
		deltas = append(deltas, d)
	}
	add("ns_per_cycle", old.NsPerCycle, new.NsPerCycle, true)
	add("figure5_quick_seconds", old.Figure5Seconds, new.Figure5Seconds, true)
	add("figure5_alloc_bytes", float64(old.Figure5AllocBytes), float64(new.Figure5AllocBytes), true)
	add("figure5_allocs", float64(old.Figure5Allocs), float64(new.Figure5Allocs), true)
	add("figure5_sampled_quick_seconds", old.SampledSeconds, new.SampledSeconds, true)
	add("figure5_sampled_speedup", old.SampledSpeedup, new.SampledSpeedup, false)
	add("sampled_detailed_cycle_fraction", old.DetailedFraction, new.DetailedFraction, true)
	add("fig5_hmean_vs_icount_pct", old.VsICount, new.VsICount, false)

	if old.Parity.AllWithin && !new.Parity.AllWithin {
		deltas = append(deltas, MetricDelta{Name: "fig5_sampled_parity.all_within", Old: 1, New: 0, Regressed: true})
		regressed = true
	}
	return deltas, regressed
}

// runDiff is the -diff entry point: load both records, print the table,
// exit 1 on regression.
func runDiff(oldPath, newPath string, threshold float64) {
	old, err := readRecord(oldPath)
	if err != nil {
		fatal(err)
	}
	rec, err := readRecord(newPath)
	if err != nil {
		fatal(err)
	}
	deltas, regressed := diffRecords(old, rec, threshold)
	fmt.Printf("benchjson: %s -> %s (threshold %.0f%%)\n", oldPath, newPath, 100*threshold)
	for _, d := range deltas {
		mark := " "
		if d.Regressed {
			mark = "!"
		}
		pct := "n/a"
		if !math.IsNaN(d.Pct) {
			pct = fmt.Sprintf("%+.1f%%", d.Pct)
		}
		fmt.Printf("%s %-34s %14.4g -> %-14.4g %s\n", mark, d.Name, d.Old, d.New, pct)
	}
	if regressed {
		fmt.Println("benchjson: REGRESSION (metrics marked '!')")
		os.Exit(1)
	}
	fmt.Println("benchjson: no regressions")
}

func readRecord(path string) (Record, error) {
	var rec Record
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, fmt.Errorf("parsing %s: %w", path, err)
	}
	return rec, nil
}
