// Command experiments regenerates the paper's tables and figures (see
// EXPERIMENTS.md for the experiment index and recorded results). Every
// experiment is driven through its declared campaign sweep; for sharded
// multi-host runs and persistent result stores use cmd/campaign instead.
//
// Usage:
//
//	experiments               # everything, full windows (minutes)
//	experiments -quick        # everything, reduced windows
//	experiments -only fig4,tab1
//	experiments -csv out/     # additionally write CSV files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dcra/internal/experiments"
	"dcra/internal/report"
)

func main() {
	var (
		quick  = flag.Bool("quick", false, "reduced measurement windows (~6x faster)")
		only   = flag.String("only", "", "comma list of: tab1,fig2,tab3,tab4,tab5,fig4,fig5,fig6,fig7,activity,mlp")
		csvDir = flag.String("csv", "", "directory to additionally write CSV files into")
	)
	flag.Parse()

	s := experiments.NewSuite()
	if *quick {
		s = experiments.NewQuickSuite()
	}

	specs := experiments.Specs()
	want := map[string]bool{}
	if *only != "" {
		known := map[string]bool{}
		for _, spec := range specs {
			known[spec.Key] = true
		}
		for _, k := range strings.Split(*only, ",") {
			k = strings.TrimSpace(k)
			if !known[k] {
				fatal(fmt.Errorf("unknown experiment %q in -only", k))
			}
			want[k] = true
		}
	}

	emit := func(name string, t *report.Table) {
		t.Render(os.Stdout)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal(err)
			}
			f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
			if err != nil {
				fatal(err)
			}
			t.RenderCSV(f)
			f.Close()
		}
	}

	for _, spec := range specs {
		if len(want) > 0 && !want[spec.Key] {
			continue
		}
		tables, err := spec.Render(s)
		if err != nil {
			fatal(err)
		}
		for _, rt := range tables {
			emit(rt.Name, rt.Table)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
