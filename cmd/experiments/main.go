// Command experiments regenerates the paper's tables and figures (see
// DESIGN.md §7 for the experiment index and EXPERIMENTS.md for recorded
// results).
//
// Usage:
//
//	experiments               # everything, full windows (minutes)
//	experiments -quick        # everything, reduced windows
//	experiments -only fig4,tab1
//	experiments -csv out/     # additionally write CSV files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dcra/internal/experiments"
	"dcra/internal/report"
	"dcra/internal/trace"
	"dcra/internal/workload"
)

func main() {
	var (
		quick  = flag.Bool("quick", false, "reduced measurement windows (~6x faster)")
		only   = flag.String("only", "", "comma list of: tab1,fig2,tab3,tab4,tab5,fig4,fig5,fig6,fig7,activity,mlp")
		csvDir = flag.String("csv", "", "directory to additionally write CSV files into")
	)
	flag.Parse()

	s := experiments.NewSuite()
	if *quick {
		s = experiments.NewQuickSuite()
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	emit := func(name string, t *report.Table) {
		t.Render(os.Stdout)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal(err)
			}
			f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
			if err != nil {
				fatal(err)
			}
			t.RenderCSV(f)
			f.Close()
		}
	}

	if sel("tab1") {
		emit("table1", experiments.Table1Report())
	}
	if sel("tab4") {
		emit("table4", table4Report())
	}
	if sel("tab3") {
		rows, err := experiments.Table3(s, nil)
		if err != nil {
			fatal(err)
		}
		emit("table3", experiments.Table3Report(rows))
	}
	if sel("fig2") {
		f2, err := experiments.Figure2(s, nil)
		if err != nil {
			fatal(err)
		}
		emit("figure2", f2.Report())
	}
	if sel("tab5") {
		rows, err := experiments.Table5(s)
		if err != nil {
			fatal(err)
		}
		emit("table5", experiments.Table5Report(rows))
	}
	if sel("fig4") {
		f4, err := experiments.Figure4(s)
		if err != nil {
			fatal(err)
		}
		emit("figure4", f4.Report())
	}
	if sel("fig5") {
		f5, err := experiments.Figure5(s)
		if err != nil {
			fatal(err)
		}
		emit("figure5a", f5.ThroughputReport())
		emit("figure5b", f5.HmeanReport())
	}
	if sel("fig6") {
		f6, err := experiments.Figure6(s)
		if err != nil {
			fatal(err)
		}
		emit("figure6", f6.Report())
	}
	if sel("fig7") {
		f7, err := experiments.Figure7(s)
		if err != nil {
			fatal(err)
		}
		emit("figure7", f7.Report())
	}
	if sel("activity") {
		var rows []experiments.ActivityResult
		for _, lat := range []int{300, 500} {
			r, err := experiments.FrontEndActivity(s, lat)
			if err != nil {
				fatal(err)
			}
			rows = append(rows, r)
		}
		emit("activity", experiments.ActivityReport(rows))
	}
	if sel("mlp") {
		rows, err := experiments.MemoryParallelism(s)
		if err != nil {
			fatal(err)
		}
		emit("mlp", experiments.MLPReport(rows))
	}
}

// table4Report renders the encoded workload table (static data).
func table4Report() *report.Table {
	t := report.NewTable("Table 4: workloads (encoded verbatim from the paper)",
		"id", "benchmarks", "types")
	for _, w := range workload.All() {
		types := make([]string, len(w.Names))
		for i, n := range w.Names {
			types[i] = trace.MustProfile(n).Type()
		}
		t.AddRow(w.ID(), strings.Join(w.Names, "+"), strings.Join(types, "+"))
	}
	return t
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
