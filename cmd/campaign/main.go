// Command campaign runs the paper's evaluation as declarative sweeps that
// scale past one process: an experiment's sweep can be partitioned into
// deterministic shards, computed on independent hosts, shipped home as JSON
// shard files, merged, and rendered bit-identically from a persistent
// on-disk result store. See EXPERIMENTS.md for the experiment index.
//
// Usage:
//
//	campaign run -exp fig5 [-store DIR]            # compute + render
//	campaign run -exp fig5 -shards 4 -shard 2 -out shard2.json
//	campaign merge -store DIR shard0.json shard1.json ...
//	campaign status -exp fig5 -store DIR
//	campaign render -exp fig5 -store DIR           # render + CSV artifacts in <store>/csv
//	campaign gc -store DIR [-dry-run]              # prune cells no sweep enumerates
//
// A sharded `run` computes only its partition and writes a shard file
// instead of rendering. After `merge`, re-running `campaign run -exp fig5
// -store DIR` renders every table from the store without resimulating
// (enforceable with -require-store). All invocations of one campaign must
// agree on the measurement protocol (-quick/-warmup/-measure); the store
// manifest and shard headers refuse mismatches.
//
// The coordinated mode replaces hand-run shards with a fleet service:
//
//	campaign coordinate -addr :8123 -exp fig5 -store DIR   # lease server
//	campaign work -coordinator http://host:8123            # any number, anywhere
//	campaign status -coordinator http://host:8123          # live progress
//
// The coordinator leases cell ranges to workers, reclaims leases whose
// heartbeats lapse, retries failed cells with backoff, checkpoints its retry
// state for crash-safe resumption, and renders the experiment once every
// cell has streamed home. See EXPERIMENTS.md ("Distributed campaigns").
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dcra/internal/campaign"
	"dcra/internal/experiments"
	"dcra/internal/obs"
	"dcra/internal/sample"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "merge":
		cmdMerge(os.Args[2:])
	case "status":
		cmdStatus(os.Args[2:])
	case "render":
		cmdRender(os.Args[2:])
	case "gc":
		cmdGC(os.Args[2:])
	case "coordinate":
		cmdCoordinate(os.Args[2:])
	case "work":
		cmdWork(os.Args[2:])
	case "top":
		cmdTop(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: campaign <run|merge|status|render|gc|coordinate|work|top> [flags]

  run        -exp KEY [-quick] [-warmup N -measure N] [-store DIR]
             [-shards N -shard I -out FILE] [-require-store] [-trace FILE]
  merge      -store DIR shard.json...
  status     -exp KEY -store DIR | -coordinator URL
  render     -exp KEY [-csv DIR] [-store DIR] [protocol flags] [-require-store]
             [-trace FILE]
  gc         -store DIR [-dry-run]
  coordinate -addr HOST:PORT -exp KEY -store DIR [protocol flags]
             [-range N -ttl D -retries N -backoff D -backoff-max D]
             [-speculate D -deadline D -grace D -checkpoint FILE -seed N]
             [-health-every D -cell-slo-p Q -cell-slo-ms N -cell-slo-window N]
             [-trace FILE]
  work       -coordinator URL [-id NAME] [-fault SPEC] [-retry-window D]
             [-flightrec FILE]
  top        -coordinator URL [-interval D] [-n N]`)
	os.Exit(2)
}

// suiteFlags registers the measurement-protocol flags shared by run/status.
type suiteFlags struct {
	quick    *bool
	warmup   *uint64
	measure  *uint64
	sampled  *bool
	adaptive *bool
	trace    *string
}

func addSuiteFlags(fs *flag.FlagSet) suiteFlags {
	return suiteFlags{
		quick:   fs.Bool("quick", false, "reduced measurement windows (~6x faster)"),
		warmup:  fs.Uint64("warmup", 0, "override warmup cycles"),
		measure: fs.Uint64("measure", 0, "override measured cycles"),
		sampled: fs.Bool("sampled", false,
			"SMARTS-style sampled execution for workload cells (bench/sched cells stay exact; renders prefer stored exact results)"),
		adaptive: fs.Bool("adaptive", false,
			"variance-driven sampled execution (implies -sampled): adaptive window count, drift-sized skip, warm-tail gaps; cells carry the schedule in their content keys"),
		trace: fs.String("trace", "",
			"write a Chrome trace-event JSON file of the run (load in Perfetto / chrome://tracing)"),
	}
}

// instrument attaches telemetry to the suite when -trace is set and returns
// the function that writes the trace file at the end of the command. Without
// -trace it attaches nothing — the hot paths stay on their zero-overhead
// disabled branches — and the returned flush is a no-op. Call after the
// suite's Store is attached so store telemetry is covered too.
func (sf suiteFlags) instrument(s *experiments.Suite) (flush func()) {
	if *sf.trace == "" {
		return func() {}
	}
	tr := obs.NewTracer()
	s.Instrument(obs.NewRegistry(), tr)
	path := *sf.trace
	return func() {
		if err := tr.WriteFile(path); err != nil {
			fmt.Fprintln(os.Stderr, "campaign: writing trace:", err)
			return
		}
		fmt.Printf("campaign: wrote trace %s (%d events)\n", path, tr.Len())
	}
}

func (sf suiteFlags) suite() *experiments.Suite {
	s := experiments.NewSuite()
	if *sf.quick {
		s = experiments.NewQuickSuite()
	}
	if *sf.warmup > 0 {
		s.Runner.Warmup = *sf.warmup
	}
	if *sf.measure > 0 {
		s.Runner.Measure = *sf.measure
	}
	if *sf.sampled || *sf.adaptive {
		s.Mode = campaign.ModeSampled
	}
	if *sf.adaptive {
		// Derived after the warmup/measure overrides so the adaptive
		// schedule tracks the protocol actually being run; stamped on the
		// suite, it becomes part of every sampled cell's content key.
		s.Sampling = sample.DeriveAdaptive(s.Runner.Warmup, s.Runner.Measure).Config()
	}
	return s
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("campaign run", flag.ExitOnError)
	var (
		exp          = fs.String("exp", "", "experiment key (tab1,fig2,... — see EXPERIMENTS.md)")
		storeDir     = fs.String("store", "", "persistent result store directory")
		shards       = fs.Int("shards", 1, "total shard count")
		shard        = fs.Int("shard", 0, "this shard's index (0-based)")
		out          = fs.String("out", "", "shard result file to write (sharded runs)")
		requireStore = fs.Bool("require-store", false, "fail if any cell had to be simulated instead of loaded from the store")
		sflags       = addSuiteFlags(fs)
	)
	fs.Parse(args)

	spec, err := experiments.SpecByKey(*exp)
	if err != nil {
		fatal(err)
	}
	s := sflags.suite()
	if *storeDir != "" {
		st, err := campaign.Open(*storeDir, s.StoreParams())
		if err != nil {
			fatal(err)
		}
		s.Store = st
	}
	flush := sflags.instrument(s)
	// Sharding enumerates the mode-applied sweep, so a sampled campaign's
	// shard files carry sampled cells (their own keys) end to end.
	sweep := experiments.ApplyModeSampling(spec.Sweep(), s.Mode, s.Sampling)

	if *shards <= 1 && (*shard != 0 || *out != "") {
		fatal(fmt.Errorf("-shard/-out only make sense with -shards N > 1 (did you forget -shards?)"))
	}
	if *shards > 1 {
		cells, err := sweep.Shard(*shard, *shards)
		if err != nil {
			fatal(err)
		}
		if *out == "" {
			fatal(fmt.Errorf("sharded run needs -out to receive the shard results"))
		}
		fmt.Printf("campaign: %s shard %d/%d: %d of %d cells\n",
			spec.Key, *shard, *shards, len(cells), len(sweep.Cells))
		if err := s.Prefetch(cells); err != nil {
			fatal(err)
		}
		sf := campaign.ShardFile{
			Campaign:  spec.Key,
			SweepHash: sweep.Hash(),
			Shards:    *shards,
			Shard:     *shard,
			Params:    s.StoreParams(),
		}
		for _, c := range cells {
			r, err := s.RunCell(c)
			if err != nil {
				fatal(err)
			}
			sf.Cells = append(sf.Cells, campaign.CellResult{Key: c.Key(), Cell: c, Result: r})
		}
		if err := campaign.WriteShard(*out, sf); err != nil {
			fatal(err)
		}
		fmt.Printf("campaign: wrote %d cells to %s (simulated %d, store hits %d)\n",
			len(sf.Cells), *out, s.Simulated(), s.StoreHits())
		flush()
		if *requireStore && s.Simulated() > 0 {
			fatal(fmt.Errorf("%d cells were simulated but -require-store demands a fully populated store", s.Simulated()))
		}
		return
	}

	renderExperiment(spec, s, "", *requireStore)
	flush()
}

// renderExperiment renders spec's tables to stdout — plus CSV artifacts
// when csvDir is set — then prints the cell summary and enforces
// -require-store. Shared by the unsharded `run` tail and `render`.
func renderExperiment(spec experiments.Spec, s *experiments.Suite, csvDir string, requireStore bool) {
	tables, err := spec.Render(s)
	if err != nil {
		fatal(err)
	}
	for _, rt := range tables {
		rt.Table.Render(os.Stdout)
	}
	if csvDir != "" {
		paths, err := experiments.WriteCSVs(csvDir, tables)
		if err != nil {
			fatal(err)
		}
		for _, p := range paths {
			fmt.Printf("campaign: wrote %s\n", p)
		}
	}
	fmt.Printf("campaign: %s: %d cells (simulated %d, store hits %d)\n",
		spec.Key, len(spec.Sweep().Cells), s.Simulated(), s.StoreHits())
	if requireStore && s.Simulated() > 0 {
		fatal(fmt.Errorf("%d cells were simulated but -require-store demands a fully populated store", s.Simulated()))
	}
}

func cmdMerge(args []string) {
	fs := flag.NewFlagSet("campaign merge", flag.ExitOnError)
	storeDir := fs.String("store", "", "persistent result store directory (created if missing)")
	fs.Parse(args)
	paths := fs.Args()
	if *storeDir == "" || len(paths) == 0 {
		fatal(fmt.Errorf("merge needs -store and at least one shard file"))
	}
	// The store adopts the protocol of the first readable shard; Merge
	// re-verifies every file against it, so mixed-protocol shards are refused.
	var params campaign.Params
	adopted := false
	for _, p := range paths {
		sf, err := campaign.ReadShard(p)
		if err == nil {
			params, adopted = sf.Params, true
			break
		}
	}
	if !adopted {
		fatal(fmt.Errorf("none of the %d shard files are readable", len(paths)))
	}
	st, err := campaign.Open(*storeDir, params)
	if err != nil {
		fatal(err)
	}
	n, skipped, err := campaign.Merge(st, paths)
	for _, sk := range skipped {
		fmt.Fprintf(os.Stderr, "campaign: skipped unreadable shard %s: %v\n", sk.Path, sk.Err)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("campaign: merged %d cells from %d shard files into %s (%d skipped)\n",
		n, len(paths), *storeDir, len(skipped))
	if len(skipped) > 0 {
		fmt.Fprintf(os.Stderr, "campaign: merge is incomplete; re-run the skipped shards and merge again\n")
		os.Exit(1)
	}
}

// cmdRender renders one experiment's tables and additionally writes each as
// a CSV artifact, by default next to the store (<store>/csv).
func cmdRender(args []string) {
	fs := flag.NewFlagSet("campaign render", flag.ExitOnError)
	var (
		exp          = fs.String("exp", "", "experiment key (tab1,fig2,... — see EXPERIMENTS.md)")
		storeDir     = fs.String("store", "", "persistent result store directory")
		csvDir       = fs.String("csv", "", "CSV artifact directory (default <store>/csv)")
		requireStore = fs.Bool("require-store", false, "fail if any cell had to be simulated instead of loaded from the store")
		sflags       = addSuiteFlags(fs)
	)
	fs.Parse(args)

	spec, err := experiments.SpecByKey(*exp)
	if err != nil {
		fatal(err)
	}
	if *csvDir == "" {
		if *storeDir == "" {
			fatal(fmt.Errorf("render needs -csv DIR (or -store DIR to default to <store>/csv)"))
		}
		*csvDir = filepath.Join(*storeDir, "csv")
	}
	s := sflags.suite()
	if *storeDir != "" {
		st, err := campaign.Open(*storeDir, s.StoreParams())
		if err != nil {
			fatal(err)
		}
		s.Store = st
	}
	flush := sflags.instrument(s)
	renderExperiment(spec, s, *csvDir, *requireStore)
	flush()
}

// cmdGC prunes store cells whose keys no longer appear in any registered
// sweep — orphans left behind by spec changes.
func cmdGC(args []string) {
	fs := flag.NewFlagSet("campaign gc", flag.ExitOnError)
	var (
		storeDir = fs.String("store", "", "persistent result store directory")
		dryRun   = fs.Bool("dry-run", false, "report stale cells without deleting them")
	)
	fs.Parse(args)
	if *storeDir == "" {
		fatal(fmt.Errorf("gc needs -store"))
	}
	st, err := campaign.OpenExisting(*storeDir)
	if err != nil {
		fatal(err)
	}
	keep := make(map[string]bool)
	// Adaptive-sampled cells carry their schedule in the content key; the
	// schedule derives from the store's own measurement protocol.
	adaptive := sample.DeriveAdaptive(st.Params().Warmup, st.Params().Measure).Config()
	for _, sp := range experiments.Specs() {
		sweep := sp.Sweep()
		for _, c := range sweep.Cells {
			keep[c.Key()] = true
		}
		// Sampled campaigns store cells under their own keys; keep those too
		// (fixed protocol and this store's adaptive variant).
		for _, c := range experiments.ApplyMode(sweep, campaign.ModeSampled).Cells {
			keep[c.Key()] = true
		}
		for _, c := range experiments.ApplyModeSampling(sweep, campaign.ModeSampled, adaptive).Cells {
			keep[c.Key()] = true
		}
	}
	removed, err := st.GC(keep, *dryRun)
	if err != nil {
		fatal(err)
	}
	verb := "deleted"
	if *dryRun {
		verb = "would delete"
	}
	for _, key := range removed {
		fmt.Printf("campaign: %s stale cell %s\n", verb, key)
	}
	fmt.Printf("campaign: %s %d stale cells (%d keys live across %d experiments)\n",
		verb, len(removed), len(keep), len(experiments.Specs()))
}

func cmdStatus(args []string) {
	fs := flag.NewFlagSet("campaign status", flag.ExitOnError)
	var (
		exp         = fs.String("exp", "", "experiment key")
		storeDir    = fs.String("store", "", "persistent result store directory")
		coordinator = fs.String("coordinator", "", "live coordinator URL to query instead of a store")
		sampled     = fs.Bool("sampled", false, "count the sampled variant of the sweep")
		adaptive    = fs.Bool("adaptive", false, "count the adaptive-sampled variant (schedule derived from the store's protocol)")
	)
	fs.Parse(args)
	if *coordinator != "" {
		coordinatorStatus(*coordinator)
		return
	}
	spec, err := experiments.SpecByKey(*exp)
	if err != nil {
		fatal(err)
	}
	if *storeDir == "" {
		fatal(fmt.Errorf("status needs -store or -coordinator"))
	}
	st, err := campaign.OpenExisting(*storeDir)
	if err != nil {
		fatal(err)
	}
	sweep := spec.Sweep()
	switch {
	case *adaptive:
		sc := sample.DeriveAdaptive(st.Params().Warmup, st.Params().Measure).Config()
		sweep = experiments.ApplyModeSampling(sweep, campaign.ModeSampled, sc)
	case *sampled:
		sweep = experiments.ApplyMode(sweep, campaign.ModeSampled)
	}
	present, missing := st.Count(sweep)
	p := st.Params()
	fmt.Printf("campaign: %s (sweep %s, warmup %d, measure %d): %d/%d cells in %s\n",
		spec.Key, sweep.Hash(), p.Warmup, p.Measure, present, present+len(missing), *storeDir)
	if n, err := st.CorruptCount(); err == nil && n > 0 {
		fmt.Printf("  %d corrupt cell files quarantined (*.corrupt under %s)\n", n, *storeDir)
	}
	for i, c := range missing {
		if i == 10 {
			fmt.Printf("  ... and %d more missing\n", len(missing)-10)
			break
		}
		fmt.Printf("  missing %s\n", c)
	}
	if len(missing) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "campaign:", err)
	os.Exit(1)
}
