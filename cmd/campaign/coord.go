// The coordinated campaign subcommands: `coordinate` serves leases over
// HTTP and renders when the store is complete; `work` pulls leases,
// simulates cells and streams results home.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"dcra/internal/campaign"
	"dcra/internal/coord"
	"dcra/internal/coord/faults"
	"dcra/internal/experiments"
	"dcra/internal/obs"
)

// writeTrace flushes a recorded span trace to disk; nil means -trace was not
// given and nothing was recorded.
func writeTrace(tr *obs.Tracer, path string) {
	if tr == nil {
		return
	}
	if err := tr.WriteFile(path); err != nil {
		fmt.Fprintln(os.Stderr, "coordinate: writing trace:", err)
		return
	}
	fmt.Printf("campaign: wrote trace %s (%d events)\n", path, tr.Len())
}

func cmdCoordinate(args []string) {
	fs := flag.NewFlagSet("campaign coordinate", flag.ExitOnError)
	var (
		addr       = fs.String("addr", ":8123", "HTTP listen address")
		exp        = fs.String("exp", "", "experiment key (tab1,fig2,... — see EXPERIMENTS.md)")
		storeDir   = fs.String("store", "", "persistent result store directory")
		csvDir     = fs.String("csv", "", "CSV artifact directory (default <store>/csv)")
		rangeSize  = fs.Int("range", 0, "cells per lease (0 = default)")
		ttl        = fs.Duration("ttl", 0, "lease TTL; a lease with no heartbeat for this long is reclaimed (0 = default)")
		retries    = fs.Int("retries", 0, "per-cell retry budget before a cell is declared missing (0 = default)")
		backoff    = fs.Duration("backoff", 0, "base retry backoff, doubled per attempt (0 = default)")
		backoffMax = fs.Duration("backoff-max", 0, "retry backoff cap (0 = default)")
		speculate  = fs.Duration("speculate", 0, "re-dispatch a straggling lease to a second worker after this long (0 = default)")
		deadline   = fs.Duration("deadline", 0, "campaign deadline; on expiry drain leases and render what completed (0 = none)")
		grace      = fs.Duration("grace", 30*time.Second, "drain grace: how long to wait for in-flight leases on deadline/SIGTERM")
		checkpoint  = fs.String("checkpoint", "", "coordinator checkpoint file (default <store>/coordinator.json)")
		seed        = fs.Uint64("seed", 1, "backoff jitter seed")
		healthEvery = fs.Duration("health-every", 2*time.Second, "health ring tick interval (windowed rates for /status and `campaign top`)")
		sloP        = fs.Float64("cell-slo-p", 0.99, "cell-latency SLO quantile")
		sloMs       = fs.Int64("cell-slo-ms", 0, "cell-latency SLO target in ms; 0 disables the objective")
		sloWindow   = fs.Int("cell-slo-window", 30, "cell-latency SLO sliding window, in health intervals")
		sflags      = addSuiteFlags(fs)
	)
	fs.Parse(args)

	spec, err := experiments.SpecByKey(*exp)
	if err != nil {
		fatal(err)
	}
	if *storeDir == "" {
		fatal(fmt.Errorf("coordinate needs -store (the rendered campaign must survive the process)"))
	}
	if *csvDir == "" {
		*csvDir = filepath.Join(*storeDir, "csv")
	}
	if *checkpoint == "" {
		*checkpoint = filepath.Join(*storeDir, "coordinator.json")
	}
	s := sflags.suite()
	st, err := campaign.Open(*storeDir, s.StoreParams())
	if err != nil {
		fatal(err)
	}
	s.Store = st
	sweep := experiments.ApplyModeSampling(spec.Sweep(), s.Mode, s.Sampling)

	// The coordinator always carries a metrics registry so /metrics serves a
	// live snapshot; the span tracer (lease lifecycles, worker cell
	// execution, the final render's engine lanes) only exists under -trace.
	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if *sflags.trace != "" {
		tracer = obs.NewTracer()
	}
	s.Instrument(reg, tracer)

	// The flight recorder is always on: recording is a mutex and a slot
	// write, and the ring only reaches disk when the campaign aborts.
	flight := obs.NewFlightRecorder(512)
	flightPath := filepath.Join(*storeDir, "flightrec.json")
	dumpFlight := func(reason string) {
		if err := flight.WriteFile(flightPath, reason); err != nil {
			fmt.Fprintln(os.Stderr, "coordinate: writing flight record:", err)
			return
		}
		fmt.Fprintf(os.Stderr, "coordinate: wrote flight record %s (%d events, reason: %s)\n",
			flightPath, flight.Len(), reason)
	}

	logger := log.New(os.Stderr, "coordinate: ", log.LstdFlags)
	co, err := coord.New(spec.Key, sweep, st, coord.Options{
		RangeSize:      *rangeSize,
		LeaseTTL:       *ttl,
		RetryBudget:    *retries,
		BackoffBase:    *backoff,
		BackoffMax:     *backoffMax,
		SpeculateAfter: *speculate,
		Seed:           *seed,
		Checkpoint:     *checkpoint,
		Logf:           logger.Printf,
		Obs:            reg,
		Tracer:         tracer,
		Flight:         flight,
		CellSLO:        coord.CellSLO{Quantile: *sloP, TargetMs: *sloMs, Window: *sloWindow},
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: coord.NewHTTPHandler(co)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	status := co.Status()
	logger.Printf("serving %s on %s: %d/%d cells already in store",
		spec.Key, ln.Addr(), status.Done, status.Total)

	// Wait for completion, the deadline, or a shutdown signal. On deadline
	// or signal the coordinator degrades gracefully: stop issuing leases,
	// give in-flight leases a grace period to stream home, then render
	// whatever subset completed and report the missing cells explicitly.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	var timeout <-chan time.Time
	if *deadline > 0 {
		timeout = time.After(*deadline)
	}
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	co.HealthTick() // the zero baseline; windowed rates measure from here
	healthTick := time.NewTicker(*healthEvery)
	defer healthTick.Stop()
	drained := false
	aborted := ""
wait:
	for {
		select {
		case <-tick.C:
			if co.Status().Complete() {
				break wait
			}
		case <-healthTick.C:
			co.HealthTick()
		case <-timeout:
			logger.Printf("deadline reached, draining (grace %s)", *grace)
			drained, aborted = true, "campaign deadline reached"
			co.Drain()
			co.WaitIdle(*grace)
			break wait
		case s := <-sig:
			logger.Printf("%s received, draining (grace %s)", s, *grace)
			drained, aborted = true, s.String()+" received"
			co.Drain()
			co.WaitIdle(*grace)
			break wait
		case err := <-serveErr:
			dumpFlight("coordinator HTTP server died: " + err.Error())
			fatal(fmt.Errorf("coordinator HTTP server: %w", err))
		}
	}
	co.HealthTick() // close the final interval before reporting
	// Let workers see StateDone/Cancel before the listener goes away, then
	// stop accepting. Lingering workers just observe a dead coordinator and
	// retry into their retry window — the campaign state is already safe.
	if !drained {
		co.Drain()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	srv.Shutdown(shutdownCtx)

	status = co.Status()
	missing := co.Missing()
	logger.Printf("campaign %s: %d/%d cells complete, %d missing, %d retries",
		spec.Key, status.Done, status.Total, len(missing), status.Retries)
	if drained && len(missing) == 0 {
		// Aborted but nothing lost: the flight record still documents how
		// the campaign wound down.
		dumpFlight(aborted + " (all cells complete)")
	}
	if len(missing) > 0 {
		for _, c := range missing {
			fmt.Fprintf(os.Stderr, "coordinate: missing %s (out of retry budget or deadline)\n", c)
		}
		// Keep the partial trace and the flight record: the lease spans and
		// last control-plane events of a campaign that ran out of budget are
		// exactly what a post-mortem wants to look at.
		writeTrace(tracer, *sflags.trace)
		reason := fmt.Sprintf("%d of %d cells missing", len(missing), status.Total)
		if aborted != "" {
			reason += " after " + aborted
		}
		dumpFlight(reason)
		fatal(fmt.Errorf("%d of %d cells missing; store %s holds the completed subset (re-run to resume)",
			len(missing), status.Total, *storeDir))
	}

	// Every cell is home: render strictly from the store. RequireStore turns
	// any hole (a cell raced out from under us, a quarantined corrupt file)
	// into a hard error instead of a silent local resimulation.
	s.RequireStore = true
	tables, err := spec.Render(s)
	if err != nil {
		if errors.Is(err, experiments.ErrMissingCell) {
			fatal(fmt.Errorf("store lost cells between completion and render: %w", err))
		}
		fatal(err)
	}
	for _, rt := range tables {
		rt.Table.Render(os.Stdout)
	}
	paths, err := experiments.WriteCSVs(*csvDir, tables)
	if err != nil {
		fatal(err)
	}
	for _, p := range paths {
		fmt.Printf("campaign: wrote %s\n", p)
	}
	fmt.Printf("campaign: %s: %d cells rendered from store (%d retries during campaign)\n",
		spec.Key, status.Total, status.Retries)
	writeTrace(tracer, *sflags.trace)
}

// coordinatorStatus queries a live coordinator and renders its progress
// report; `campaign status -coordinator URL`. Exits 1 while the campaign is
// incomplete, so scripts can poll it.
func coordinatorStatus(url string) {
	t := &coord.HTTPTransport{Base: url}
	s, err := t.Status()
	if err != nil {
		fatal(fmt.Errorf("querying coordinator %s: %w", url, err))
	}
	fmt.Printf("campaign: %s (sweep %s, warmup %d, measure %d): %d/%d cells done, %d leased, %d pending, %d exhausted, %d retries\n",
		s.Campaign, s.SweepHash, s.Params.Warmup, s.Params.Measure,
		s.Done, s.Total, s.Leased, s.Pending, s.Exhausted, s.Retries)
	if s.Quarantined > 0 {
		fmt.Printf("  %d corrupt cell files quarantined by the coordinator's store this run\n", s.Quarantined)
	}
	if h := s.Health; h != nil {
		fmt.Printf("  health: %.2f cells/s over %.1fs window (%d done, %d leases granted, %d expired, %d failed)\n",
			h.CellsPerSec, float64(h.WindowMs)/1e3, h.CellsDone, h.LeasesGranted, h.LeasesExpired, h.LeasesFailed)
		if h.SLO != nil {
			state := "met"
			if !h.SLO.Met {
				state = "BREACHED"
			}
			fmt.Printf("  cell SLO p%g <= %dus: %s (attained %.4f over %d cells, burn %.2fx)\n",
				h.SLO.Quantile*100, h.SLO.Target, state, h.SLO.Attained, h.SLO.Observations, h.SLO.Burn)
		}
	}
	if s.Draining {
		fmt.Println("  coordinator is draining: no new leases")
	}
	for _, l := range s.Leases {
		fmt.Printf("  lease %s -> %s cells [%d,%d) age %dms expires %dms\n",
			l.LeaseID, l.Worker, l.Range[0], l.Range[1], l.AgeMs, l.ExpireMs)
	}
	for _, key := range s.MissingKeys {
		fmt.Printf("  exhausted %s\n", key)
	}
	if !s.Complete() {
		os.Exit(1)
	}
}

func cmdWork(args []string) {
	fs := flag.NewFlagSet("campaign work", flag.ExitOnError)
	var (
		coordinator = fs.String("coordinator", "", "coordinator base URL, e.g. http://host:8123")
		id          = fs.String("id", "", "worker name (default host:pid)")
		faultSpec   = fs.String("fault", "", "fault to self-inject, for chaos drills: kind[:after=N][:delay=D] (kinds: "+faults.KindList()+")")
		retryWindow = fs.Duration("retry-window", 0, "keep retrying an unreachable coordinator this long before giving up (0 = default)")
		flightPath  = fs.String("flightrec", "", "dump the worker's flight record here on failure (empty = disabled)")
	)
	fs.Parse(args)
	if *coordinator == "" {
		fatal(fmt.Errorf("work needs -coordinator URL"))
	}
	if *id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*id = fmt.Sprintf("%s:%d", host, os.Getpid())
	}

	w := &coord.Worker{
		ID:        *id,
		Transport: &coord.HTTPTransport{Base: *coordinator},
		// The grant carries the campaign's measurement protocol, so workers
		// need no -quick/-warmup/-measure flags: they adopt whatever the
		// coordinator's store was opened with. Cells carry their own
		// execution mode, so sampled campaigns need no worker flag either.
		NewRunner: func(p campaign.Params) (campaign.Runner, error) {
			s := experiments.NewSuite()
			s.Runner.Warmup = p.Warmup
			s.Runner.Measure = p.Measure
			s.Runner.Seed = p.Seed
			return s, nil
		},
		RetryWindow: *retryWindow,
	}
	if *flightPath != "" {
		w.Flight = obs.NewFlightRecorder(256)
	}
	dumpWorkerFlight := func(reason string) {
		if *flightPath == "" {
			return
		}
		if err := w.Flight.WriteFile(*flightPath, reason); err != nil {
			fmt.Fprintln(os.Stderr, "work: writing flight record:", err)
			return
		}
		fmt.Fprintf(os.Stderr, "work: %s: wrote flight record %s (%d events)\n", *id, *flightPath, w.Flight.Len())
	}
	if *faultSpec != "" {
		f, err := faults.Parse(*faultSpec)
		if err != nil {
			fatal(err)
		}
		in := faults.NewInjector(f, nil)
		w.Hooks = in.Hooks()
		w.Transport = in.Wrap(w.Transport)
		fmt.Fprintf(os.Stderr, "work: %s: injecting fault %s\n", *id, f)
	}

	err := w.Run()
	fmt.Fprintf(os.Stderr, "work: %s: %d cells computed, %d reported missing by coordinator\n",
		*id, w.Cells, w.Missing)
	if errors.Is(err, coord.ErrKilled) {
		// The injected crash: die abruptly, mid-lease, without a Fail call —
		// exactly what a SIGKILLed or OOM-killed worker looks like.
		fmt.Fprintf(os.Stderr, "work: %s: killed by injected fault\n", *id)
		dumpWorkerFlight("killed by injected fault")
		os.Exit(137)
	}
	if err != nil {
		dumpWorkerFlight("worker failed: " + err.Error())
		fatal(err)
	}
	if w.Missing > 0 {
		os.Exit(1)
	}
}
