// `campaign top`: a refreshing terminal view of a live coordinated
// campaign, assembled from the coordinator's /v1/status report and /metrics
// snapshot — per-worker lease throughput, retry/quarantine counts, straggler
// age and SLO burn, the fleet-health layer's answer to watching a campaign
// without tailing coordinator logs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"dcra/internal/coord"
	"dcra/internal/obs"
)

func cmdTop(args []string) {
	fs := flag.NewFlagSet("campaign top", flag.ExitOnError)
	var (
		coordinator = fs.String("coordinator", "", "coordinator base URL, e.g. http://host:8123")
		interval    = fs.Duration("interval", 2*time.Second, "refresh interval")
		iters       = fs.Int("n", 0, "refresh this many times then exit (0 = until the campaign completes)")
	)
	fs.Parse(args)
	if *coordinator == "" {
		fatal(fmt.Errorf("top needs -coordinator URL"))
	}

	t := &coord.HTTPTransport{Base: *coordinator}
	for i := 0; ; i++ {
		status, err := t.Status()
		if err != nil {
			fatal(fmt.Errorf("querying coordinator %s: %w", *coordinator, err))
		}
		snap, err := fetchMetrics(*coordinator)
		if err != nil {
			fatal(fmt.Errorf("querying coordinator %s: %w", *coordinator, err))
		}
		view := topView(status, snap)
		if *iters != 1 {
			// Home the cursor and clear to the end so the view refreshes in
			// place; a single-shot run prints plainly (scripts, CI).
			fmt.Print("\033[H\033[2J")
		}
		fmt.Print(view)
		if status.Complete() {
			fmt.Println("campaign complete")
			return
		}
		if *iters > 0 && i+1 >= *iters {
			return
		}
		time.Sleep(*interval)
	}
}

// fetchMetrics pulls the coordinator's JSON metrics snapshot.
func fetchMetrics(base string) (obs.Snapshot, error) {
	var snap obs.Snapshot
	resp, err := http.Get(strings.TrimSuffix(base, "/") + "/metrics")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("/metrics: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, fmt.Errorf("decoding /metrics: %w", err)
	}
	return snap, nil
}

// topView renders one frame of the fleet view from a status report and a
// metrics snapshot. Pure, so tests can drive it with fixtures.
func topView(s coord.StatusResponse, snap obs.Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %s (sweep %s)  %s\n", s.Campaign, s.SweepHash, time.Now().Format("15:04:05"))
	fmt.Fprintf(&b, "%s %d/%d done  %d leased  %d pending  %d exhausted  %d retries",
		progressBar(s.Done, s.Total, 30), s.Done, s.Total, s.Leased, s.Pending, s.Exhausted, s.Retries)
	if s.Quarantined > 0 {
		fmt.Fprintf(&b, "  %d quarantined", s.Quarantined)
	}
	if s.Draining {
		b.WriteString("  DRAINING")
	}
	b.WriteByte('\n')

	if h := s.Health; h != nil {
		fmt.Fprintf(&b, "window %.0fs: %.2f cells/s  +%d cells  +%d leases  %d expired  %d failed  %d speculated\n",
			float64(h.WindowMs)/1e3, h.CellsPerSec, h.CellsDone,
			h.LeasesGranted, h.LeasesExpired, h.LeasesFailed, h.Speculated)
		if slo := h.SLO; slo != nil {
			state := "met"
			if !slo.Met {
				state = "BREACHED"
			}
			fmt.Fprintf(&b, "cell SLO p%g <= %dus: %s  attained %.4f (%d cells)  burn %.2fx\n",
				slo.Quantile*100, slo.Target, state, slo.Attained, slo.Observations, slo.Burn)
		}
	}

	// Per-worker cell throughput from the cumulative counters; workers are
	// listed busiest first.
	type workerRow struct {
		name  string
		cells int64
	}
	var workers []workerRow
	for name, v := range snap.Counters {
		if n, ok := strings.CutPrefix(name, "coord.worker.cells."); ok {
			workers = append(workers, workerRow{n, v})
		}
	}
	sort.Slice(workers, func(i, j int) bool {
		if workers[i].cells != workers[j].cells {
			return workers[i].cells > workers[j].cells
		}
		return workers[i].name < workers[j].name
	})
	if len(workers) > 0 {
		b.WriteString("\nWORKER            CELLS  LEASE                AGE      EXPIRES\n")
	}
	leaseByWorker := make(map[string]coord.LeaseInfo)
	for _, l := range s.Leases {
		// Keep the oldest lease per worker: that is the straggler candidate.
		if cur, ok := leaseByWorker[l.Worker]; !ok || l.AgeMs > cur.AgeMs {
			leaseByWorker[l.Worker] = l
		}
	}
	for _, w := range workers {
		if l, ok := leaseByWorker[w.name]; ok {
			fmt.Fprintf(&b, "%-16s %6d  %-20s %-8s %s\n", w.name, w.cells,
				fmt.Sprintf("%s [%d,%d)", l.LeaseID, l.Range[0], l.Range[1]),
				fmtMs(l.AgeMs), fmtMs(l.ExpireMs))
			delete(leaseByWorker, w.name)
			continue
		}
		fmt.Fprintf(&b, "%-16s %6d  %-20s\n", w.name, w.cells, "idle")
	}
	// Leases held by workers that have not completed a cell yet.
	var rest []coord.LeaseInfo
	for _, l := range leaseByWorker {
		rest = append(rest, l)
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].Worker < rest[j].Worker })
	for _, l := range rest {
		fmt.Fprintf(&b, "%-16s %6d  %-20s %-8s %s\n", l.Worker, 0,
			fmt.Sprintf("%s [%d,%d)", l.LeaseID, l.Range[0], l.Range[1]),
			fmtMs(l.AgeMs), fmtMs(l.ExpireMs))
	}

	// The straggler line: the oldest outstanding lease fleet-wide.
	var oldest *coord.LeaseInfo
	for i := range s.Leases {
		if oldest == nil || s.Leases[i].AgeMs > oldest.AgeMs {
			oldest = &s.Leases[i]
		}
	}
	if oldest != nil {
		fmt.Fprintf(&b, "\noldest lease: %s on %s, out %s (expires %s)\n",
			oldest.LeaseID, oldest.Worker, fmtMs(oldest.AgeMs), fmtMs(oldest.ExpireMs))
	}
	if n := len(s.MissingKeys); n > 0 {
		fmt.Fprintf(&b, "exhausted cells: %d listed (see campaign status)\n", n)
	}
	return b.String()
}

// progressBar renders done/total as a fixed-width bar.
func progressBar(done, total, width int) string {
	if total <= 0 {
		return "[" + strings.Repeat(" ", width) + "]"
	}
	fill := done * width / total
	if fill > width {
		fill = width
	}
	return "[" + strings.Repeat("#", fill) + strings.Repeat(".", width-fill) + "]"
}

// fmtMs renders a millisecond count the way a human scans it.
func fmtMs(ms int64) string {
	d := time.Duration(ms) * time.Millisecond
	switch {
	case d < 0:
		return "overdue"
	case d < 10*time.Second:
		return d.Round(10 * time.Millisecond).String()
	default:
		return d.Round(time.Second).String()
	}
}
