package main

import (
	"strings"
	"testing"

	"dcra/internal/coord"
	"dcra/internal/obs"
)

func TestTopView(t *testing.T) {
	slo := &obs.SLOStatus{
		SLO:          obs.SLO{Metric: "coord.cell.us", Quantile: 0.99, Target: 500_000, Window: 30},
		Observations: 40,
		Attained:     0.975,
		Burn:         2.5,
		Met:          false,
	}
	s := coord.StatusResponse{
		Campaign:  "fig5",
		SweepHash: "abc123",
		Total:     100,
		Done:      60,
		Leased:    8,
		Pending:   30,
		Exhausted: 2,
		Retries:   5,
		Leases: []coord.LeaseInfo{
			{LeaseID: "w1-7", Worker: "w1", Range: [2]int{64, 72}, AgeMs: 125_000, ExpireMs: 4_000},
			{LeaseID: "w2-9", Worker: "w2", Range: [2]int{72, 80}, AgeMs: 1_500, ExpireMs: -200},
		},
		Quarantined: 1,
		MissingKeys: []string{"k1", "k2"},
		Health: &coord.HealthInfo{
			Intervals:     12,
			WindowMs:      24_000,
			CellsDone:     18,
			CellsPerSec:   0.75,
			LeasesGranted: 3,
			LeasesExpired: 1,
			SLO:           slo,
		},
	}
	snap := obs.Snapshot{Counters: map[string]int64{
		"coord.worker.cells.w1": 35,
		"coord.worker.cells.w2": 25,
		"coord.cells.done":      60,
	}}

	out := topView(s, snap)
	for _, want := range []string{
		"campaign fig5 (sweep abc123)",
		"60/100 done",
		"8 leased  30 pending  2 exhausted  5 retries  1 quarantined",
		"window 24s: 0.75 cells/s",
		"cell SLO p99 <= 500000us: BREACHED",
		"burn 2.50x",
		"w1                   35",
		"w2                   25",
		"w1-7 [64,72)",
		"oldest lease: w1-7 on w1, out 2m5s",
		"exhausted cells: 2 listed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("top view missing %q:\n%s", want, out)
		}
	}
	// The busiest worker sorts first.
	if strings.Index(out, "w1 ") > strings.Index(out, "w2 ") {
		t.Errorf("workers not sorted busiest-first:\n%s", out)
	}
	// Overdue leases render as overdue, not negative durations.
	if !strings.Contains(out, "overdue") || strings.Contains(out, "-200") {
		t.Errorf("overdue lease not flagged:\n%s", out)
	}

	// A worker holding a lease but with no completed cells still shows up.
	s.Leases = append(s.Leases, coord.LeaseInfo{LeaseID: "w3-1", Worker: "w3", Range: [2]int{80, 88}, AgeMs: 100, ExpireMs: 900})
	out = topView(s, snap)
	if !strings.Contains(out, "w3-1 [80,88)") {
		t.Errorf("leased-but-idle worker missing:\n%s", out)
	}

	// Degenerate inputs must not panic or divide by zero.
	empty := topView(coord.StatusResponse{}, obs.Snapshot{})
	if !strings.Contains(empty, "0/0 done") {
		t.Errorf("empty view: %q", empty)
	}
}

func TestProgressBar(t *testing.T) {
	if got := progressBar(5, 10, 10); got != "[#####.....]" {
		t.Errorf("progressBar(5,10,10) = %q", got)
	}
	if got := progressBar(0, 0, 4); got != "[    ]" {
		t.Errorf("progressBar(0,0,4) = %q", got)
	}
	if got := progressBar(20, 10, 4); got != "[####]" {
		t.Errorf("overfull bar = %q", got)
	}
}
