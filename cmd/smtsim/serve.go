package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dcra"
	"dcra/internal/obs"
	"dcra/internal/sched"
)

// serveMain runs the open-system mode: a seeded stream of jobs arrives, a
// co-schedule picker places them onto free hardware contexts, and the run
// reports throughput, turnaround percentiles and fairness (see SCHEDULER.md).
func serveMain(args []string) {
	fs := flag.NewFlagSet("smtsim serve", flag.ExitOnError)
	var (
		contexts  = fs.Int("contexts", 4, "hardware contexts serving the job stream")
		arrivals  = fs.String("arrivals", "open", "arrival process: batch, open or burst")
		gap       = fs.Uint64("gap", 3_000, "mean interarrival gap in cycles (open/burst)")
		burst     = fs.Int("burst", 4, "jobs per burst (burst arrivals)")
		jobs      = fs.Int("jobs", 16, "number of jobs offered")
		budget    = fs.Uint64("budget", 24_000, "mean committed-uop budget per job (drawn from [b/2, 3b/2])")
		benchPool = fs.String("benches", "gzip,mcf,eon,art,gcc,swim,bzip2,equake",
			"comma-separated bench pool jobs draw from")
		pickerName = fs.String("picker", "FCFS", "co-schedule policy: "+strings.Join(sched.PickerNames(), ", "))
		polName    = fs.String("policy", "DCRA", "allocation/fetch policy: "+strings.Join(dcra.PolicyNames(), ", "))
		seed       = fs.Uint64("seed", 0x5eeddc2a, "trial seed (arrivals, bench picks, streams)")
		maxCycles  = fs.Uint64("max-cycles", 5_000_000, "cycle horizon; unfinished jobs count as incomplete")
		memLatency = fs.Int("mem-latency", 0, "override main-memory latency (pairs L2 with 10/20/25)")
		showLog    = fs.Bool("log", false, "print the job event log")
		jsonOut    = fs.Bool("json", false, "emit machine-readable JSON instead of text")
		ffDrain    = fs.Bool("ff-drain", false,
			"fast-forward the tail: once all jobs arrived and none queue, drain the last co-schedule functionally (event-log digest is mode-dependent)")
		traceOut = fs.String("trace", "",
			"write a Chrome trace-event JSON file: one lane per hardware context, one span per job, in the cycle domain")
		sloP99 = fs.Uint64("slo-p99", 0,
			"declare a turnaround SLO: p99 of all jobs <= this many cycles, tracked over the health ring (0 = none)")
		healthEvery = fs.Uint64("health-every", 0,
			"health ring tick interval in cycles (0 = MaxCycles/128 when an SLO is declared)")
		httpAddr = fs.String("http", "",
			"after the trial, serve /metrics (JSON), /metrics.prom (Prometheus text) and /status (the run document) on this address")
		linger = fs.Duration("linger", 0,
			"with -http: exit after serving this long (0 = until SIGINT/SIGTERM)")
	)
	fs.Parse(args)

	cfg := baselineWithMemLatency(*memLatency)
	picker, err := sched.PickerByName(*pickerName)
	if err != nil {
		fatal(err)
	}
	var benches []string
	for _, n := range strings.Split(*benchPool, ",") {
		benches = append(benches, strings.TrimSpace(n))
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}
	// The registry backs /metrics when -http is given; telemetry never
	// perturbs the trial (the sched bit-identity guard), so it is always on.
	reg := obs.NewRegistry()
	var slos []sched.SLOSpec
	if *sloP99 > 0 {
		slos = []sched.SLOSpec{{Class: sched.ClassAll, Quantile: 0.99, Target: *sloP99}}
	}

	trial, err := sched.Run(sched.Config{
		Machine:  cfg,
		Contexts: *contexts,
		Alloc: func() dcra.Policy {
			pol, err := dcra.NewPolicy(dcra.PolicyName(*polName), cfg)
			if err != nil {
				fatal(err)
			}
			return pol
		},
		Picker:    picker,
		Arrivals:  sched.Arrivals{Kind: sched.ArrivalKind(*arrivals), Jobs: *jobs, Gap: *gap, Burst: *burst},
		Benches:   benches,
		Budget:    *budget,
		Seed:      *seed,
		MaxCycles:   *maxCycles,
		FFDrain:     *ffDrain,
		Obs:         reg,
		Tracer:      tracer,
		SLOs:        slos,
		HealthEvery: *healthEvery,
	})
	if err != nil {
		fatal(err)
	}
	flushTrace(tracer, *traceOut)

	if *jsonOut {
		emitJSON(trial.RunStats())
	} else {
		if *showLog {
			fmt.Print(trial.EventLogText())
		}
		s := trial.Summary()
		fmt.Println(trial)
		fmt.Printf("turnaround cycles: p50 %.0f | p99 %.0f | mean %.0f; uops/cycle %.3f; event log sha %s\n",
			s.P50Turnaround, s.P99Turnaround, s.MeanTurnaround, s.UopsPerCycle, s.EventLogSHA)
		printHealth(trial.Health)
	}
	if *httpAddr != "" {
		serveTrialHTTP(*httpAddr, *linger, reg, trial.RunStats())
	}
}

// printHealth summarizes the SLO layer's verdict in the text output.
func printHealth(h *sched.HealthReport) {
	if h == nil {
		return
	}
	fmt.Printf("health: %d intervals every %d cycles", h.Intervals, h.EveryCycles)
	if h.DroppedIntervals > 0 {
		fmt.Printf(" (%d oldest dropped)", h.DroppedIntervals)
	}
	fmt.Println()
	for _, r := range h.SLOs {
		state := "met"
		if !r.Met {
			state = "BREACHED"
		}
		fmt.Printf("  SLO p%g(%s) <= %d cycles: %s (attained %.4f over %d jobs, p%g = %.0f cycles, burn %.2fx, %d breach intervals)\n",
			r.Quantile*100, r.Class, r.TargetCycles, state,
			r.Attained, r.Observations, r.Quantile*100, r.QuantileCycles, r.Burn, r.BreachIntervals)
	}
}

// serveTrialHTTP exposes the finished trial's telemetry the same way the
// campaign coordinator does: /metrics (deterministic JSON snapshot),
// /metrics.prom (Prometheus text exposition 0.0.4) and /status (the
// machine-readable run document, health included). Scrapers and `curl` see
// the exact numbers the trial printed.
func serveTrialHTTP(addr string, linger time.Duration, reg *obs.Registry, stats sched.RunStats) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("GET /metrics.prom", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.PromContentType)
		reg.Snapshot().WriteProm(w)
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(stats)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "smtsim: serving /metrics, /metrics.prom, /status on %s\n", ln.Addr())
	srv := &http.Server{Handler: mux}
	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		if linger > 0 {
			select {
			case <-sig:
			case <-time.After(linger):
			}
		} else {
			<-sig
		}
		ln.Close()
		close(done)
	}()
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		select {
		case <-done: // expected: the linger/signal path closed the listener
		default:
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smtsim:", err)
	os.Exit(1)
}
