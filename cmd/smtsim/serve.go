package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dcra"
	"dcra/internal/obs"
	"dcra/internal/sched"
)

// serveMain runs the open-system mode: a seeded stream of jobs arrives, a
// co-schedule picker places them onto free hardware contexts, and the run
// reports throughput, turnaround percentiles and fairness (see SCHEDULER.md).
func serveMain(args []string) {
	fs := flag.NewFlagSet("smtsim serve", flag.ExitOnError)
	var (
		contexts  = fs.Int("contexts", 4, "hardware contexts serving the job stream")
		arrivals  = fs.String("arrivals", "open", "arrival process: batch, open or burst")
		gap       = fs.Uint64("gap", 3_000, "mean interarrival gap in cycles (open/burst)")
		burst     = fs.Int("burst", 4, "jobs per burst (burst arrivals)")
		jobs      = fs.Int("jobs", 16, "number of jobs offered")
		budget    = fs.Uint64("budget", 24_000, "mean committed-uop budget per job (drawn from [b/2, 3b/2])")
		benchPool = fs.String("benches", "gzip,mcf,eon,art,gcc,swim,bzip2,equake",
			"comma-separated bench pool jobs draw from")
		pickerName = fs.String("picker", "FCFS", "co-schedule policy: "+strings.Join(sched.PickerNames(), ", "))
		polName    = fs.String("policy", "DCRA", "allocation/fetch policy: "+strings.Join(dcra.PolicyNames(), ", "))
		seed       = fs.Uint64("seed", 0x5eeddc2a, "trial seed (arrivals, bench picks, streams)")
		maxCycles  = fs.Uint64("max-cycles", 5_000_000, "cycle horizon; unfinished jobs count as incomplete")
		memLatency = fs.Int("mem-latency", 0, "override main-memory latency (pairs L2 with 10/20/25)")
		showLog    = fs.Bool("log", false, "print the job event log")
		jsonOut    = fs.Bool("json", false, "emit machine-readable JSON instead of text")
		ffDrain    = fs.Bool("ff-drain", false,
			"fast-forward the tail: once all jobs arrived and none queue, drain the last co-schedule functionally (event-log digest is mode-dependent)")
		traceOut = fs.String("trace", "",
			"write a Chrome trace-event JSON file: one lane per hardware context, one span per job, in the cycle domain")
	)
	fs.Parse(args)

	cfg := baselineWithMemLatency(*memLatency)
	picker, err := sched.PickerByName(*pickerName)
	if err != nil {
		fatal(err)
	}
	var benches []string
	for _, n := range strings.Split(*benchPool, ",") {
		benches = append(benches, strings.TrimSpace(n))
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}

	trial, err := sched.Run(sched.Config{
		Machine:  cfg,
		Contexts: *contexts,
		Alloc: func() dcra.Policy {
			pol, err := dcra.NewPolicy(dcra.PolicyName(*polName), cfg)
			if err != nil {
				fatal(err)
			}
			return pol
		},
		Picker:    picker,
		Arrivals:  sched.Arrivals{Kind: sched.ArrivalKind(*arrivals), Jobs: *jobs, Gap: *gap, Burst: *burst},
		Benches:   benches,
		Budget:    *budget,
		Seed:      *seed,
		MaxCycles: *maxCycles,
		FFDrain:   *ffDrain,
		Tracer:    tracer,
	})
	if err != nil {
		fatal(err)
	}
	flushTrace(tracer, *traceOut)

	if *jsonOut {
		emitJSON(trial.RunStats())
		return
	}
	if *showLog {
		fmt.Print(trial.EventLogText())
	}
	s := trial.Summary()
	fmt.Println(trial)
	fmt.Printf("turnaround cycles: p50 %.0f | p99 %.0f | mean %.0f; uops/cycle %.3f; event log sha %s\n",
		s.P50Turnaround, s.P99Turnaround, s.MeanTurnaround, s.UopsPerCycle, s.EventLogSHA)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smtsim:", err)
	os.Exit(1)
}
