// Command smtsim runs the simulated SMT processor: either one fixed
// multiprogrammed workload for a fixed window (the default, closed-system
// mode) or an open stream of arriving jobs served by a scheduler (`smtsim
// serve`; see SCHEDULER.md). Both modes share the -json output schema.
//
// Usage:
//
//	smtsim -bench mcf,gzip -policy DCRA -warmup 50000 -cycles 300000
//	smtsim -workload MEM2.1 -policy FLUSH++ -mem-latency 500
//	smtsim -bench gzip -json
//	smtsim serve -arrivals open -gap 3000 -jobs 16 -picker SYMB -policy DCRA
//	smtsim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dcra"
	"dcra/internal/obs"
	"dcra/internal/sample"
	"dcra/internal/sched"
	"dcra/internal/sim"
	"dcra/internal/workload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serveMain(os.Args[2:])
		return
	}
	var (
		benchList  = flag.String("bench", "", "comma-separated benchmark names (see -list)")
		wlName     = flag.String("workload", "", "paper Table 4 workload, e.g. MEM2.1 (kind+threads.group)")
		polName    = flag.String("policy", "DCRA", "policy: "+strings.Join(dcra.PolicyNames(), ", "))
		warmup     = flag.Uint64("warmup", 50_000, "warmup cycles before statistics reset")
		cycles     = flag.Uint64("cycles", 300_000, "measured cycles")
		seed       = flag.Uint64("seed", 0x5eeddc2a, "workload generator seed")
		memLatency = flag.Int("mem-latency", 0, "override main-memory latency (pairs L2 with 10/20/25)")
		physRegs   = flag.Int("regs", 0, "override physical register file size per class")
		list       = flag.Bool("list", false, "list benchmarks and workloads, then exit")
		jsonOut    = flag.Bool("json", false, "emit machine-readable JSON instead of text")
		sampled    = flag.Bool("sampled", false, "SMARTS-style sampled run (schedule derived from -warmup/-cycles)")
		adaptive   = flag.Bool("adaptive", false, "variance-driven sampled run: adaptive window count, drift-sized skip, warm-tail gaps (implies -sampled)")
		minWin     = flag.Int("sample-minwin", 0, "adaptive: override minimum window count")
		maxWin     = flag.Int("sample-maxwin", 0, "adaptive: override maximum window count")
		relCI      = flag.Int64("sample-relci", 0, "adaptive: override stopping target, relative 99.7% CI half-width in ppm of the mean")
		warmTail   = flag.Uint64("sample-warmtail", 0, "sampled: override warm-tail uops per thread per gap (0 keeps the protocol default)")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON file of the run (load in Perfetto / chrome://tracing)")
		probe      = flag.Uint64("probe", 0, "sample per-thread IPC and ROB occupancy every N measured cycles (exact mode only)")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:")
		for _, n := range dcra.BenchmarkNames() {
			p := dcra.MustProfile(n)
			fmt.Printf("  %-8s %s (paper L2 miss rate %.1f%%)\n", n, p.Type(), p.PaperL2MissRate)
		}
		fmt.Println("workloads (paper Table 4):")
		for _, w := range dcra.AllWorkloads() {
			fmt.Printf("  %-8s %v\n", w.ID(), w.Names)
		}
		return
	}

	cfg := baselineWithMemLatency(*memLatency)
	if *physRegs > 0 {
		cfg = cfg.WithPhysRegs(*physRegs)
	}

	profiles, names, err := resolveThreads(*benchList, *wlName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smtsim:", err)
		os.Exit(1)
	}

	pol, err := dcra.NewPolicy(dcra.PolicyName(*polName), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smtsim:", err)
		os.Exit(1)
	}

	m, err := dcra.NewMachine(cfg, profiles, pol, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smtsim:", err)
		os.Exit(1)
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}

	if *sampled || *adaptive {
		p := sample.Derive(*warmup, *cycles)
		if *adaptive {
			p = sample.DeriveAdaptive(*warmup, *cycles)
			if *minWin > 0 {
				p.MinWindows = *minWin
			}
			if *maxWin > 0 {
				p.Windows = *maxWin
			}
			if *relCI > 0 {
				p.TargetRelCIPpm = *relCI
			}
		}
		if *warmTail > 0 {
			p.WarmTail = *warmTail
		}
		sum, agg, err := sample.RunObserved(m, p, nil, tracer)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smtsim:", err)
			os.Exit(1)
		}
		flushTrace(tracer, *traceOut)
		if *jsonOut {
			rs := sched.StaticRunStats(pol.Name(), names, agg)
			rs.Throughput = sum.Throughput // window mean, not the aggregate
			rs.Sampled = sum
			emitJSON(rs)
			return
		}
		windows := len(sum.WindowThroughput)
		fmt.Printf("policy=%s threads=%v sampled: %d windows x (warmup=%d, measure=%d cycles), gaps ff=%d cycles\n",
			pol.Name(), names, windows, p.Warmup, p.Measure, p.FFCycles)
		if p.Adaptive() {
			fmt.Printf("adaptive: stopped at %d of [%d,%d] windows (target %d ppm), warm-tail %d uops\n",
				windows, p.MinWindows, p.Windows, p.TargetRelCIPpm, p.WarmTail)
		}
		fmt.Printf("throughput %.4f +/- %.4f (99.7%% CI), %d uops fast-forwarded, %d cycles measured (%d detailed, %d overhead)\n",
			sum.Throughput, sum.ThroughputCI, sum.FastForwarded, sum.MeasuredCycles, sum.DetailedCycles, sum.OverheadCycles)
		fmt.Print(agg)
		return
	}

	m.Run(*warmup)
	m.ResetStats()
	var series *obs.ProbeSeries
	if *probe > 0 {
		series = sim.ProbeRun(m, *cycles, *probe)
	} else {
		m.Run(*cycles)
	}
	if tracer != nil {
		// One lane in the cycle domain: simulation cycles read as µs in the
		// viewer, so the same seed always yields the same trace.
		tracer.Process(0, "smtsim (cycle domain)")
		tracer.Lane(0, 0, "run")
		tracer.CompleteAt(0, 0, "warmup", "phase", 0, float64(*warmup))
		tracer.CompleteAt(0, 0, "measure", "phase", float64(*warmup), float64(*cycles))
		flushTrace(tracer, *traceOut)
	}

	st := m.Stats()
	if *jsonOut {
		rs := sched.StaticRunStats(pol.Name(), names, st)
		rs.Probe = series
		emitJSON(rs)
		return
	}
	fmt.Printf("policy=%s threads=%v warmup=%d measured=%d\n", pol.Name(), names, *warmup, *cycles)
	fmt.Print(st)
	if series != nil {
		fmt.Printf("probe every %d cycles (%d samples):\n", series.Interval, len(series.Samples))
		for _, sm := range series.Samples {
			fmt.Printf("  @%-8d ipc %v rob %v\n", sm.Cycle, formatIPCs(sm.IPC), sm.ROBOcc)
		}
	}
	h := m.Hierarchy()
	fmt.Printf("caches: L1I %.2f%% | L1D %.2f%% | L2 %.2f%% miss; %d memory fills; TLB %.2f%% miss\n",
		h.L1I.MissRate(), h.L1D.MissRate(), h.L2.MissRate(), h.MemMisses, h.TLB.MissRate())
}

// baselineWithMemLatency returns the baseline configuration, optionally
// re-latencied: a -mem-latency override pairs the L2 latency per the paper's
// Section 5.3 points (100/10, 300/20, 500/25), keeping the baseline L2
// latency for other values. Shared by the static and serve modes so both
// build the same machine for the same flag.
func baselineWithMemLatency(memLatency int) dcra.Config {
	cfg := dcra.BaselineConfig()
	if memLatency <= 0 {
		return cfg
	}
	l2 := map[int]int{100: 10, 300: 20, 500: 25}[memLatency]
	if l2 == 0 {
		l2 = cfg.L2.Latency
	}
	return cfg.WithMemLatency(memLatency, l2)
}

// flushTrace writes a recorded span trace; nil tracer means -trace was not
// given. The confirmation goes to stderr so -json stdout stays parseable.
func flushTrace(tr *obs.Tracer, path string) {
	if tr == nil {
		return
	}
	if err := tr.WriteFile(path); err != nil {
		fmt.Fprintln(os.Stderr, "smtsim: writing trace:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "smtsim: wrote trace %s (%d events)\n", path, tr.Len())
}

// formatIPCs renders a probe sample's per-thread IPCs compactly.
func formatIPCs(ipcs []float64) string {
	parts := make([]string, len(ipcs))
	for i, v := range ipcs {
		parts[i] = strconv.FormatFloat(v, 'f', 3, 64)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// emitJSON writes the shared RunStats schema to stdout.
func emitJSON(rs sched.RunStats) {
	data, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "smtsim:", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(data, '\n'))
}

// resolveThreads turns either -bench or -workload into profiles.
func resolveThreads(benchList, wlName string) ([]dcra.Profile, []string, error) {
	switch {
	case benchList != "" && wlName != "":
		return nil, nil, fmt.Errorf("use either -bench or -workload, not both")
	case benchList != "":
		names := strings.Split(benchList, ",")
		profiles := make([]dcra.Profile, 0, len(names))
		for _, n := range names {
			n = strings.TrimSpace(n)
			p, ok := dcra.Benchmarks()[n]
			if !ok {
				return nil, nil, fmt.Errorf("unknown benchmark %q (try -list)", n)
			}
			profiles = append(profiles, p)
		}
		return profiles, names, nil
	case wlName != "":
		w, err := parseWorkload(wlName)
		if err != nil {
			return nil, nil, err
		}
		return w.Profiles(), w.Names, nil
	default:
		return nil, nil, fmt.Errorf("specify -bench or -workload (try -list)")
	}
}

// parseWorkload parses "MEM2.1" style names: kind, thread count, group.
func parseWorkload(s string) (dcra.Workload, error) {
	var kind workload.Kind
	var rest string
	switch {
	case strings.HasPrefix(s, "ILP"):
		kind, rest = workload.ILP, s[3:]
	case strings.HasPrefix(s, "MIX"):
		kind, rest = workload.MIX, s[3:]
	case strings.HasPrefix(s, "MEM"):
		kind, rest = workload.MEM, s[3:]
	default:
		return dcra.Workload{}, fmt.Errorf("workload %q: want e.g. MEM2.1", s)
	}
	parts := strings.SplitN(rest, ".", 2)
	threads, err := strconv.Atoi(parts[0])
	if err != nil {
		return dcra.Workload{}, fmt.Errorf("workload %q: bad thread count", s)
	}
	group := 1
	if len(parts) == 2 {
		if group, err = strconv.Atoi(strings.TrimPrefix(parts[1], "g")); err != nil {
			return dcra.Workload{}, fmt.Errorf("workload %q: bad group", s)
		}
	}
	return dcra.GetWorkload(threads, kind, group)
}
