package dcra

import (
	"fmt"
	"sort"

	"dcra/internal/core"
	"dcra/internal/policy"
)

// PolicyName identifies a policy for NewPolicy.
type PolicyName string

// Available policies.
const (
	PolicyRoundRobin PolicyName = "RR"
	PolicyICount     PolicyName = "ICOUNT"
	PolicyStall      PolicyName = "STALL"
	PolicyFlush      PolicyName = "FLUSH"
	PolicyFlushPP    PolicyName = "FLUSH++"
	PolicyDG         PolicyName = "DG"
	PolicyPDG        PolicyName = "PDG"
	PolicySRA        PolicyName = "SRA"
	PolicyDCRA       PolicyName = "DCRA"
)

// NewPolicy constructs a fresh policy by name. DCRA uses the latency-tuned
// options for cfg's memory latency (paper Section 5.3). Policies carry
// per-run state: construct a new instance per machine.
func NewPolicy(name PolicyName, cfg Config) (Policy, error) {
	switch name {
	case PolicyRoundRobin:
		return policy.NewRoundRobin(), nil
	case PolicyICount:
		return policy.NewICount(), nil
	case PolicyStall:
		return policy.NewStall(), nil
	case PolicyFlush:
		return policy.NewFlush(), nil
	case PolicyFlushPP:
		return policy.NewFlushPP(), nil
	case PolicyDG:
		return policy.NewDG(), nil
	case PolicyPDG:
		return policy.NewPDG(), nil
	case PolicySRA:
		return policy.NewSRA(), nil
	case PolicyDCRA:
		return core.New(core.OptionsForLatency(cfg.MemLatency)), nil
	}
	return nil, fmt.Errorf("dcra: unknown policy %q (have %v)", name, PolicyNames())
}

// PolicyNames lists every policy NewPolicy accepts, sorted.
func PolicyNames() []string {
	names := []string{
		string(PolicyRoundRobin), string(PolicyICount), string(PolicyStall),
		string(PolicyFlush), string(PolicyFlushPP), string(PolicyDG),
		string(PolicyPDG), string(PolicySRA), string(PolicyDCRA),
	}
	sort.Strings(names)
	return names
}
