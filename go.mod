module dcra

go 1.24
