// Package dcra is a cycle-level SMT processor simulation library built to
// reproduce "Dynamically Controlled Resource Allocation in SMT Processors"
// (Cazorla, Ramirez, Valero, Fernández — MICRO-37, 2004).
//
// The library bundles:
//
//   - a simulated 8-wide, 12-stage out-of-order SMT core with three shared
//     issue queues, shared physical register files, a reorder buffer, a
//     gshare/BTB/RAS front end and a two-level cache hierarchy;
//   - synthetic SPEC2000-like workloads (statistical instruction streams
//     calibrated against the paper's Table 3);
//   - the DCRA resource allocation policy plus every fetch policy the paper
//     compares against (ICOUNT, STALL, FLUSH, FLUSH++, DG, PDG, SRA);
//   - an experiment harness regenerating every table and figure of the
//     paper's evaluation;
//   - an open-system mode (internal/sched, `smtsim serve`, the "sched"
//     campaign experiment) in which the core serves a seeded stream of
//     arriving jobs — co-scheduled onto hardware contexts via
//     Machine.RebindThread — and the metrics become job throughput,
//     turnaround percentiles and fairness under load; see SCHEDULER.md.
//
// # Quick start
//
//	cfg := dcra.BaselineConfig()
//	m, err := dcra.NewMachine(cfg, []dcra.Profile{
//	    dcra.MustProfile("mcf"), dcra.MustProfile("gzip"),
//	}, dcra.NewDCRA(), 42)
//	if err != nil { ... }
//	m.Run(100_000)
//	fmt.Println(m.Stats())
//
// See examples/ for runnable programs and EXPERIMENTS.md for the
// paper-vs-measured record.
package dcra

import (
	"dcra/internal/config"
	"dcra/internal/core"
	"dcra/internal/cpu"
	"dcra/internal/sim"
	"dcra/internal/stats"
	"dcra/internal/trace"
	"dcra/internal/workload"
)

// Config is the simulated processor configuration (paper Table 2).
type Config = config.Config

// BaselineConfig returns the paper's Table 2 baseline.
func BaselineConfig() Config { return config.Baseline() }

// Profile is the statistical model of one benchmark program.
type Profile = trace.Profile

// Benchmarks returns the synthetic SPEC2000 suite keyed by name.
func Benchmarks() map[string]Profile { return trace.Benchmarks() }

// MustProfile returns the named benchmark profile or panics.
func MustProfile(name string) Profile { return trace.MustProfile(name) }

// BenchmarkNames lists the suite in the paper's Table 3 order.
func BenchmarkNames() []string { return trace.Names() }

// Machine is a simulated SMT processor running a fixed set of threads.
type Machine = cpu.Machine

// Policy decides fetch priority, fetch gating and (for allocation policies)
// per-thread resource bounds. See NewDCRA and NewPolicy.
type Policy = cpu.Policy

// Resource enumerates the shared resources allocation policies control.
type Resource = cpu.Resource

// Shared resources (see cpu.Resource).
const (
	IntIQ   = cpu.RIntIQ
	FPIQ    = cpu.RFPIQ
	LSIQ    = cpu.RLSIQ
	IntRegs = cpu.RIntRegs
	FPRegs  = cpu.RFPRegs
	ROB     = cpu.RROB
)

// Stats aggregates one run's statistics.
type Stats = stats.Stats

// NewMachine builds a machine running one synthetic thread per profile
// under the given policy, deterministically seeded.
func NewMachine(cfg Config, profiles []Profile, pol Policy, seed uint64) (*Machine, error) {
	return cpu.New(cfg, profiles, pol, seed)
}

// DCRAOptions configure the DCRA policy (sharing factors, activity
// threshold, ablation switches).
type DCRAOptions = core.Options

// DefaultDCRAOptions returns the paper's baseline DCRA configuration.
func DefaultDCRAOptions() DCRAOptions { return core.DefaultOptions() }

// DCRAOptionsForLatency returns the paper's latency-tuned sharing factors.
func DCRAOptionsForLatency(memLatency int) DCRAOptions {
	return core.OptionsForLatency(memLatency)
}

// NewDCRA returns the paper's Dynamically Controlled Resource Allocation
// policy with baseline options.
func NewDCRA() *core.DCRA { return core.Default() }

// NewDCRAWithOptions returns DCRA with explicit options.
func NewDCRAWithOptions(o DCRAOptions) *core.DCRA { return core.New(o) }

// Eslow computes the DCRA sharing-model bound (paper equation 3 / Table 1):
// the entries of an R-entry resource each slow-active thread may hold given
// fa fast-active and sa slow-active competitors on a t-context processor.
func Eslow(r, t, fa, sa int, factor core.SharingFactor) int {
	return core.Eslow(r, t, fa, sa, factor)
}

// Workload is one multiprogrammed benchmark combination (paper Table 4).
type Workload = workload.Workload

// WorkloadKind is the paper's workload taxonomy (ILP / MIX / MEM).
type WorkloadKind = workload.Kind

// Workload kinds.
const (
	ILP = workload.ILP
	MIX = workload.MIX
	MEM = workload.MEM
)

// AllWorkloads returns the paper's 36 Table 4 workloads.
func AllWorkloads() []Workload { return workload.All() }

// GetWorkload returns the Table 4 workload for (threads, kind, group 1-4).
func GetWorkload(threads int, kind WorkloadKind, group int) (Workload, error) {
	return workload.Get(threads, kind, group)
}

// Runner executes warmup+measure simulations and caches single-thread
// baselines for the Hmean metric.
type Runner = sim.Runner

// Result summarises one workload run (per-thread IPCs, throughput, Hmean).
type Result = sim.Result

// NewRunner returns a Runner with the default measurement windows.
func NewRunner() *Runner { return sim.NewRunner() }
