// Quickstart: simulate a memory-bound thread (mcf) next to a high-ILP
// thread (gzip) under DCRA and print what each thread achieved.
package main

import (
	"fmt"
	"log"

	"dcra"
)

func main() {
	cfg := dcra.BaselineConfig()

	m, err := dcra.NewMachine(cfg, []dcra.Profile{
		dcra.MustProfile("mcf"),
		dcra.MustProfile("gzip"),
	}, dcra.NewDCRA(), 42)
	if err != nil {
		log.Fatal(err)
	}

	m.Run(50_000) // warm caches and predictors
	m.ResetStats()
	m.Run(200_000)

	st := m.Stats()
	fmt.Printf("DCRA on mcf+gzip over %d cycles:\n", st.Cycles)
	fmt.Printf("  throughput: %.3f IPC\n", st.Throughput())
	fmt.Printf("  mcf : %.3f IPC (%d L2 misses, avg memory parallelism %.2f)\n",
		st.Threads[0].IPC(st.Cycles), st.Threads[0].L2DMisses, st.AvgMLP())
	fmt.Printf("  gzip: %.3f IPC (%.1f%% branch mispredicts)\n",
		st.Threads[1].IPC(st.Cycles), st.Threads[1].MispredictRate())
}
