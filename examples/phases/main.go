// Phases: watch DCRA's thread classification and sharing-model bounds move
// as a mixed workload runs — the mechanism behind the paper's Table 5.
package main

import (
	"fmt"
	"log"

	"dcra"
)

func main() {
	cfg := dcra.BaselineConfig()
	pol := dcra.NewDCRA()

	m, err := dcra.NewMachine(cfg, []dcra.Profile{
		dcra.MustProfile("art"),  // memory-bound FP
		dcra.MustProfile("gzip"), // high-ILP integer
	}, pol, 7)
	if err != nil {
		log.Fatal(err)
	}

	m.Run(30_000) // warm up

	fmt.Println("cycle   art    gzip   | intIQ-lim intRegs-lim fpIQ-lim | art-fpIQ-active gzip-fpIQ-active")
	for i := 0; i < 20; i++ {
		m.Run(2_000)
		lim := pol.Limits()
		fmt.Printf("%6d  %-5s  %-5s  | %9d %11d %7d | %15v %16v\n",
			m.Cycle(), phase(pol.IsSlow(0)), phase(pol.IsSlow(1)),
			lim[dcra.IntIQ], lim[dcra.IntRegs], lim[dcra.FPIQ],
			pol.IsActive(0, dcra.FPIQ), pol.IsActive(1, dcra.FPIQ))
	}

	st := m.Stats()
	c := st.PhasePairCycles
	total := float64(c[0] + c[1] + c[2])
	fmt.Printf("\nphase pair distribution (paper Table 5 for one MEM+ILP pair):\n")
	fmt.Printf("  fast-fast %.1f%%   mixed %.1f%%   slow-slow %.1f%%\n",
		100*float64(c[0])/total, 100*float64(c[1])/total, 100*float64(c[2])/total)
	fmt.Printf("gzip, an integer program, should be inactive for FP resources,\n")
	fmt.Printf("donating its FP share: gzip fpIQ active = %v\n", pol.IsActive(1, dcra.FPIQ))
}

func phase(slow bool) string {
	if slow {
		return "SLOW"
	}
	return "fast"
}
