// Policycompare: run one paper workload under every policy and compare
// throughput and the Hmean throughput-fairness metric — a miniature of the
// paper's Figure 5.
package main

import (
	"fmt"
	"log"
	"os"

	"dcra"
	"dcra/internal/report"
)

func main() {
	cfg := dcra.BaselineConfig()
	w, err := dcra.GetWorkload(4, dcra.MIX, 1) // gzip+twolf+bzip2+mcf
	if err != nil {
		log.Fatal(err)
	}

	r := dcra.NewRunner()
	t := report.NewTable(fmt.Sprintf("Policy comparison on %s %v", w.ID(), w.Names),
		"policy", "throughput", "hmean", "per-thread IPCs")
	for _, name := range dcra.PolicyNames() {
		pn := dcra.PolicyName(name)
		res, err := r.RunWorkload(cfg, w, func() dcra.Policy {
			p, err := dcra.NewPolicy(pn, cfg)
			if err != nil {
				log.Fatal(err)
			}
			return p
		})
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(name, res.Throughput, res.Hmean, fmt.Sprintf("%.2f", res.IPCs))
	}
	t.AddNote("hmean is the harmonic mean of per-thread relative IPCs (Luo et al.)")
	t.Render(os.Stdout)
}
