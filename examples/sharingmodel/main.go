// Sharingmodel: explore DCRA's resource-sharing arithmetic (the paper's
// equation 3 and Table 1) without running a simulation.
package main

import (
	"fmt"

	"dcra"
	"dcra/internal/core"
)

func main() {
	fmt.Println("Paper Table 1: E_slow for a 32-entry resource, 4 threads, C = 1/(FA+SA)")
	fmt.Println("entry  FA  SA  E_slow")
	entry := 0
	for total := 1; total <= 4; total++ {
		for fa := total - 1; fa >= 0; fa-- {
			entry++
			sa := total - fa
			fmt.Printf("%5d  %2d  %2d  %6d\n", entry, fa, sa,
				dcra.Eslow(32, 4, fa, sa, core.CActive))
		}
	}

	fmt.Println("\nLatency-tuned sharing factors (paper §5.3), 80-entry IQ, 4 threads, FA=2 SA=1:")
	for _, tc := range []struct {
		name   string
		factor core.SharingFactor
	}{
		{"C = 1/T      (100-cycle memory)", core.CThreads},
		{"C = 1/(T+4)  (300-cycle memory)", core.CThreadsPlus4},
		{"C = 0        (500-cycle memory, IQs)", core.CZero},
	} {
		fmt.Printf("  %-38s E_slow = %d\n", tc.name, dcra.Eslow(80, 4, 2, 1, tc.factor))
	}

	fmt.Println("\nHow a slow thread's bound scales with competing fast threads (R=80, C=1/(T+4)):")
	for fa := 0; fa <= 3; fa++ {
		fmt.Printf("  FA=%d SA=1: the slow thread may hold %d of 80 entries\n",
			fa, dcra.Eslow(80, 4, fa, 1, core.CThreadsPlus4))
	}
}
