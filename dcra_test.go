package dcra_test

import (
	"testing"

	"dcra"
)

func TestPublicQuickstart(t *testing.T) {
	cfg := dcra.BaselineConfig()
	m, err := dcra.NewMachine(cfg, []dcra.Profile{
		dcra.MustProfile("mcf"), dcra.MustProfile("gzip"),
	}, dcra.NewDCRA(), 42)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(30_000)
	st := m.Stats()
	if st.TotalCommitted() == 0 {
		t.Fatal("quickstart committed nothing")
	}
	if st.Throughput() <= 0 || st.Throughput() > float64(cfg.IssueWidth) {
		t.Fatalf("implausible throughput %.3f", st.Throughput())
	}
}

func TestNewPolicyAllNames(t *testing.T) {
	cfg := dcra.BaselineConfig()
	for _, name := range dcra.PolicyNames() {
		p, err := dcra.NewPolicy(dcra.PolicyName(name), cfg)
		if err != nil {
			t.Errorf("NewPolicy(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("NewPolicy(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := dcra.NewPolicy("NOPE", cfg); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestWorkloadsExposed(t *testing.T) {
	if got := len(dcra.AllWorkloads()); got != 36 {
		t.Fatalf("AllWorkloads = %d, want 36", got)
	}
	w, err := dcra.GetWorkload(2, dcra.MEM, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Names[0] != "mcf" {
		t.Fatalf("MEM2.g1 = %v", w.Names)
	}
}

func TestEslowExposed(t *testing.T) {
	// Spot-check the paper's Table 1 through the public API.
	if got := dcra.Eslow(32, 4, 3, 1, 0 /* core.CActive */); got != 14 {
		t.Fatalf("Eslow(32,4,3,1) = %d, want 14", got)
	}
}

func TestRunnerThroughPublicAPI(t *testing.T) {
	r := dcra.NewRunner()
	r.Warmup, r.Measure = 10_000, 30_000
	w, _ := dcra.GetWorkload(2, dcra.MIX, 1)
	cfg := dcra.BaselineConfig()
	res, err := r.RunWorkload(cfg, w, func() dcra.Policy {
		return dcra.NewDCRA()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hmean <= 0 || res.Throughput <= 0 {
		t.Fatalf("bad result %+v", res)
	}
}
