// Benchmarks regenerating the paper's tables and figures (EXPERIMENTS.md).
// Each BenchmarkFigureN/BenchmarkTableN runs a reduced-window version of
// the corresponding experiment and reports the paper's headline statistics
// as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// doubles as the reproduction harness. cmd/experiments runs the same
// experiments with full windows and prints the complete tables.
package dcra_test

import (
	"testing"

	"dcra"
	"dcra/internal/cpu"
	"dcra/internal/experiments"
	"dcra/internal/obs"
	"dcra/internal/sim"
)

// quickSuite builds a reduced-window suite per benchmark iteration set.
func quickSuite() *experiments.Suite {
	s := experiments.NewQuickSuite()
	s.Runner.Warmup = 15_000
	s.Runner.Measure = 60_000
	return s
}

// BenchmarkTable1 regenerates the sharing-model table (pure arithmetic).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) != 10 {
			b.Fatal("table 1 wrong size")
		}
	}
}

// BenchmarkFigure2 runs the resource-restriction curves on a benchmark
// subset (one integer, one FP; full sweep in cmd/experiments).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		res, err := experiments.Figure2(s, []string{"gzip", "swim"})
		if err != nil {
			b.Fatal(err)
		}
		curve := res.PercentOfFull[cpu.RIntIQ]
		b.ReportMetric(curve[2]*100, "%full@37.5%intIQ")
	}
}

// BenchmarkTable3 measures the single-thread cache-behaviour table on the
// MEM suite (the calibration-sensitive half).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		rows, err := experiments.Table3(s,
			[]string{"mcf", "art", "swim", "twolf"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].L2MissRate, "mcf-l2miss%")
	}
}

// BenchmarkTable5 measures the 2-thread phase-pair distribution.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		rows, err := experiments.Table5(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Kind == "MIX" {
				b.ReportMetric(r.Mixed, "MIX-split-phase-%")
			}
		}
	}
}

// BenchmarkFigure4 measures DCRA-vs-SRA improvements (paper: +7% tp, +8% hmean).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		f4, err := experiments.Figure4(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f4.AvgThroughput, "tp-improvement-%")
		b.ReportMetric(f4.AvgHmean, "hmean-improvement-%")
	}
}

// BenchmarkFigure5 measures DCRA against ICOUNT/DG/FLUSH++ (paper Hmean
// averages: +18%, +41%, +4%).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		f5, err := experiments.Figure5(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f5.AvgHmeanImprovement[experiments.PolICount], "vsICOUNT-%")
		b.ReportMetric(f5.AvgHmeanImprovement[experiments.PolDG], "vsDG-%")
		b.ReportMetric(f5.AvgHmeanImprovement[experiments.PolFlushPP], "vsFLUSH++-%")
	}
}

// BenchmarkFigure6 sweeps the register-file size (paper: DCRA's edge over
// SRA/ICOUNT shrinks, over DG/FLUSH++ grows).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		f6, err := experiments.Figure6(s)
		if err != nil {
			b.Fatal(err)
		}
		sra := f6.Improvement[experiments.PolSRA]
		b.ReportMetric(sra[0]-sra[len(sra)-1], "SRA-gap-shrink-%")
	}
}

// BenchmarkFigure7 sweeps memory latency (paper: ICOUNT degrades hardest).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		f7, err := experiments.Figure7(s)
		if err != nil {
			b.Fatal(err)
		}
		ic := f7.Improvement[experiments.PolICount]
		b.ReportMetric(ic[len(ic)-1]-ic[0], "ICOUNT-gap-growth-%")
	}
}

// BenchmarkFrontEndActivity measures FLUSH++'s extra fetch work (paper:
// +108% at 300-cycle latency).
func BenchmarkFrontEndActivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		r, err := experiments.FrontEndActivity(s, 300)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ExtraFetchPct, "extra-fetch-%")
	}
}

// BenchmarkMemoryParallelism measures DCRA's MLP gain over FLUSH++
// (paper: +18% average).
func BenchmarkMemoryParallelism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		rows, err := experiments.MemoryParallelism(s)
		if err != nil {
			b.Fatal(err)
		}
		var avg float64
		for _, r := range rows {
			avg += r.IncreasePct
		}
		b.ReportMetric(avg/float64(len(rows)), "mlp-increase-%")
	}
}

// BenchmarkMachineSetup measures the per-cell machine acquisition cost the
// lifecycle overhaul targets: "fresh" pays full construction per cell (the
// pre-PR4 behaviour), "pooled" draws a recycled machine and Reinit-s it in
// place. allocs/op is the headline number — pooling must cut it by >= 50%.
func BenchmarkMachineSetup(b *testing.B) {
	cfg := dcra.BaselineConfig()
	profiles := []dcra.Profile{
		dcra.MustProfile("gzip"), dcra.MustProfile("mcf"),
		dcra.MustProfile("art"), dcra.MustProfile("eon"),
	}
	const warm = 200 // touch the machine like a real cell would
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := dcra.NewMachine(cfg, profiles, dcra.NewDCRA(), 1)
			if err != nil {
				b.Fatal(err)
			}
			m.Run(warm)
		}
	})
	b.Run("pooled", func(b *testing.B) {
		pool := sim.NewMachinePool()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := pool.Get(cfg, profiles, dcra.NewDCRA(), 1)
			if err != nil {
				b.Fatal(err)
			}
			m.Run(warm)
			pool.Put(m)
		}
	})
}

// benchMachine builds the 4-thread DCRA machine the simulator-speed
// benchmarks share, warmed past its cold caches.
func benchMachine(b *testing.B) *cpu.Machine {
	b.Helper()
	m, err := dcra.NewMachine(dcra.BaselineConfig(), []dcra.Profile{
		dcra.MustProfile("gzip"), dcra.MustProfile("mcf"),
		dcra.MustProfile("art"), dcra.MustProfile("eon"),
	}, dcra.NewDCRA(), 1)
	if err != nil {
		b.Fatal(err)
	}
	m.Run(5_000)
	return m
}

// BenchmarkSimulatorSpeed measures raw simulation throughput (cycles/op).
func BenchmarkSimulatorSpeed(b *testing.B) {
	m := benchMachine(b)
	b.ResetTimer()
	m.Run(uint64(b.N))
}

// BenchmarkFastForward prices functional fast-forward on its own — no
// detailed cycles, only the stream advance plus warming. Each op is one
// committed uop per thread (4 threads), driven in gap-sized budgets the way
// the sampled runner issues them. "full" trains caches/TLBs/predictor for
// every skipped uop; "warmtail" skims the gap body with stats-only stream
// advance and trains only the final uops before the would-be window — the
// adaptive protocol's gap mode. The uops/s metric counts all threads.
func BenchmarkFastForward(b *testing.B) {
	run := func(b *testing.B, ff func(m *cpu.Machine, budgets []uint64)) {
		m := benchMachine(b)
		budgets := make([]uint64, m.NumThreads())
		b.ResetTimer()
		const gap = 16_384 // per-thread uops per budget call, ~ a sampling gap
		var done uint64
		for done < uint64(b.N) {
			n := min(gap, uint64(b.N)-done)
			for t := range budgets {
				budgets[t] = n
			}
			ff(m, budgets)
			done += n
		}
		b.ReportMetric(float64(done)*float64(len(budgets))/b.Elapsed().Seconds(), "uops/s")
	}
	b.Run("full", func(b *testing.B) {
		run(b, func(m *cpu.Machine, budgets []uint64) { m.FastForwardBudgets(budgets) })
	})
	b.Run("warmtail", func(b *testing.B) {
		run(b, func(m *cpu.Machine, budgets []uint64) { m.FastForwardBudgetsTail(budgets, 3072) })
	})
}

// BenchmarkDispatchCommit prices the dispatch/issue/commit kernel under a
// load built to keep it the bottleneck: four ILP-class threads whose working
// sets sit in L1 after warmup, so cycles are spent moving uops through
// rename/dispatch, the issue queues and the commit walk rather than waiting
// on memory. Reported uops/cycle confirms the kernel stayed dispatch-bound;
// ns/op is the per-cycle price of the micro-structure.
func BenchmarkDispatchCommit(b *testing.B) {
	m, err := dcra.NewMachine(dcra.BaselineConfig(), []dcra.Profile{
		dcra.MustProfile("gzip"), dcra.MustProfile("eon"),
		dcra.MustProfile("crafty"), dcra.MustProfile("bzip2"),
	}, dcra.NewDCRA(), 1)
	if err != nil {
		b.Fatal(err)
	}
	m.Run(5_000)
	m.ResetStats()
	b.ResetTimer()
	m.Run(uint64(b.N))
	b.StopTimer()
	var committed uint64
	for t := range m.Stats().Threads {
		committed += m.Stats().Threads[t].Committed
	}
	b.ReportMetric(float64(committed)/float64(b.N), "uops/cycle")
}

// BenchmarkSimulatorSpeedTelemetryOff drives the kernel in probe-sized
// chunks with every telemetry hook present but disabled (nil instruments,
// nil tracer): the contract is 0 allocs/op and speed indistinguishable from
// BenchmarkSimulatorSpeed.
func BenchmarkSimulatorSpeedTelemetryOff(b *testing.B) {
	m := benchMachine(b)
	var (
		reg    *obs.Registry // nil: disabled
		tracer *obs.Tracer   // nil: disabled
	)
	cells := reg.Counter("bench.chunks")
	hist := reg.Histogram("bench.chunk.us", obs.DurationBounds)
	b.ReportAllocs()
	b.ResetTimer()
	const chunk = 10_000
	var done uint64
	for done < uint64(b.N) {
		n := min(chunk, uint64(b.N)-done)
		end := tracer.Span(0, 0, "chunk", "bench")
		m.Run(n)
		end()
		cells.Inc()
		hist.Observe(int64(n))
		done += n
	}
}

// BenchmarkSimulatorSpeedTelemetryOn runs the identical chunked loop with
// the always-on layer live — a real registry and a recording tracer, the
// instrumentation the engine and coordinator attach per cell — and must stay
// within 2% of BenchmarkSimulatorSpeed (PERFORMANCE.md, "Telemetry
// overhead"). The per-commit probe is priced separately below: it is an
// explicit opt-in, never attached by default.
func BenchmarkSimulatorSpeedTelemetryOn(b *testing.B) {
	m := benchMachine(b)
	reg := obs.NewRegistry()
	tracer := obs.NewTracer()
	cells := reg.Counter("bench.chunks")
	hist := reg.Histogram("bench.chunk.us", obs.DurationBounds)
	b.ReportAllocs()
	b.ResetTimer()
	const chunk = 10_000
	var done uint64
	for done < uint64(b.N) {
		n := min(chunk, uint64(b.N)-done)
		end := tracer.Span(0, 0, "chunk", "bench")
		m.Run(n)
		end()
		cells.Inc()
		hist.Observe(int64(n))
		done += n
	}
}

// BenchmarkSimulatorSpeedProbed prices the opt-in per-commit probe
// (`smtsim -probe N`, Runner.ProbeInterval): every committed uop crosses the
// CommitObserver seam, so this is the one telemetry path that is NOT free —
// expect tens of percent, which is why probing never rides along silently.
func BenchmarkSimulatorSpeedProbed(b *testing.B) {
	m := benchMachine(b)
	b.ReportAllocs()
	b.ResetTimer()
	sim.ProbeRun(m, uint64(b.N), 10_000)
}
