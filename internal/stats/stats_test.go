package stats

import (
	"strings"
	"testing"
)

func TestThreadDerivedMetrics(t *testing.T) {
	ts := ThreadStats{
		Committed: 1000, Branches: 100, BranchMispred: 5,
		L1DMisses: 50, L2DMisses: 10,
	}
	if got := ts.IPC(2000); got != 0.5 {
		t.Errorf("IPC = %v, want 0.5", got)
	}
	if got := ts.IPC(0); got != 0 {
		t.Errorf("IPC with zero cycles = %v", got)
	}
	if got := ts.L2MissRate(); got != 20 {
		t.Errorf("L2 miss rate = %v, want 20", got)
	}
	if got := ts.MispredictRate(); got != 5 {
		t.Errorf("mispredict rate = %v, want 5", got)
	}
	empty := ThreadStats{}
	if empty.L2MissRate() != 0 || empty.MispredictRate() != 0 {
		t.Error("zero-denominator rates must be 0")
	}
}

func TestAggregates(t *testing.T) {
	s := New(2)
	s.Cycles = 1000
	s.Threads[0].Committed = 500
	s.Threads[1].Committed = 1500
	s.Threads[0].Fetched = 700
	s.Threads[1].Fetched = 1800
	if got := s.TotalCommitted(); got != 2000 {
		t.Errorf("TotalCommitted = %d", got)
	}
	if got := s.Throughput(); got != 2.0 {
		t.Errorf("Throughput = %v", got)
	}
	if got := s.TotalFetched(); got != 2500 {
		t.Errorf("TotalFetched = %d", got)
	}
}

func TestAvgMLP(t *testing.T) {
	s := New(1)
	if s.AvgMLP() != 0 {
		t.Error("empty MLP must be 0")
	}
	s.MLPSum, s.MLPCycles = 30, 10
	if got := s.AvgMLP(); got != 3 {
		t.Errorf("AvgMLP = %v", got)
	}
}

func TestStringContainsPerThread(t *testing.T) {
	s := New(2)
	s.Cycles = 10
	s.Threads[1].Committed = 5
	out := s.String()
	if !strings.Contains(out, "t0:") || !strings.Contains(out, "t1:") {
		t.Fatalf("summary missing threads: %q", out)
	}
}
