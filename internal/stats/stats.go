// Package stats collects simulation statistics.
//
// The pipeline and policies update a Stats value as they run; the experiment
// harness reads derived metrics (IPC, miss rates, MLP, front-end activity)
// after the run. Everything is plain integer counting — no sampling — so two
// identical runs produce identical statistics.
package stats

import "fmt"

// ThreadStats aggregates per-thread counters.
type ThreadStats struct {
	Fetched    uint64 // uops fetched (including wrong-path and re-fetched)
	WrongPath  uint64 // wrong-path uops fetched
	Dispatched uint64
	Issued     uint64
	Committed  uint64
	Squashed   uint64 // uops removed by mispredict or FLUSH squashes

	Branches       uint64 // committed branches
	BranchMispred  uint64 // committed mispredicted branches
	MispredDir     uint64 // fetched branches with wrong predicted direction
	MispredTarget  uint64 // fetched taken branches with unknown/wrong target
	Loads          uint64 // committed loads
	Stores         uint64 // committed stores
	L1DMisses      uint64
	L2DMisses      uint64 // data-side L2 misses (to memory)
	L1IMisses      uint64
	TLBMisses      uint64
	FetchStalled   uint64 // cycles this thread was gated by the policy
	DispatchStalls uint64 // dispatch attempts blocked by resource shortage

	Flushes uint64 // FLUSH-policy squash events

	// FastForwarded counts uops advanced functionally (Machine.FastForward)
	// rather than through the detailed pipeline. They are not Committed:
	// IPC and throughput remain detailed-window quantities.
	FastForwarded uint64
}

// add accumulates o's counters into t (window merging for sampled runs).
func (t *ThreadStats) add(o *ThreadStats) {
	t.Fetched += o.Fetched
	t.WrongPath += o.WrongPath
	t.Dispatched += o.Dispatched
	t.Issued += o.Issued
	t.Committed += o.Committed
	t.Squashed += o.Squashed
	t.Branches += o.Branches
	t.BranchMispred += o.BranchMispred
	t.MispredDir += o.MispredDir
	t.MispredTarget += o.MispredTarget
	t.Loads += o.Loads
	t.Stores += o.Stores
	t.L1DMisses += o.L1DMisses
	t.L2DMisses += o.L2DMisses
	t.L1IMisses += o.L1IMisses
	t.TLBMisses += o.TLBMisses
	t.FetchStalled += o.FetchStalled
	t.DispatchStalls += o.DispatchStalls
	t.Flushes += o.Flushes
	t.FastForwarded += o.FastForwarded
}

// IPC returns committed uops per cycle for this thread.
func (t *ThreadStats) IPC(cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(t.Committed) / float64(cycles)
}

// L2MissRate returns data L2 misses per L2 access (L1D misses), in percent.
// This matches the paper's Table 3 convention.
func (t *ThreadStats) L2MissRate() float64 {
	if t.L1DMisses == 0 {
		return 0
	}
	return 100 * float64(t.L2DMisses) / float64(t.L1DMisses)
}

// MispredictRate returns committed-branch misprediction rate in percent.
func (t *ThreadStats) MispredictRate() float64 {
	if t.Branches == 0 {
		return 0
	}
	return 100 * float64(t.BranchMispred) / float64(t.Branches)
}

// Stats aggregates a whole simulation run.
type Stats struct {
	Cycles  uint64
	Threads []ThreadStats

	// Memory-level-parallelism accounting: each cycle the pipeline adds the
	// number of outstanding L2->memory misses to MLPSum and increments
	// MLPCycles when that number is non-zero. AvgMLP = MLPSum/MLPCycles is
	// the average number of overlapped main-memory accesses, the statistic
	// behind the paper's "18% more overlapping L2 misses" claim.
	MLPSum    uint64
	MLPCycles uint64

	// Phase occupancy for Table 5: for 2-thread runs the harness classifies
	// the pair each cycle. Indexed by the number of slow threads (0..2).
	PhasePairCycles [3]uint64
}

// New returns a Stats sized for the given number of threads.
func New(threads int) *Stats {
	return &Stats{Threads: make([]ThreadStats, threads)}
}

// Accumulate adds o's counters into s — used by the sampling controller to
// merge the K measured windows of a run into one aggregate Stats. Thread
// counts must match (both come from the same machine).
func (s *Stats) Accumulate(o *Stats) {
	s.Cycles += o.Cycles
	s.MLPSum += o.MLPSum
	s.MLPCycles += o.MLPCycles
	for i := range s.PhasePairCycles {
		s.PhasePairCycles[i] += o.PhasePairCycles[i]
	}
	for i := range s.Threads {
		s.Threads[i].add(&o.Threads[i])
	}
}

// TotalCommitted returns the sum of committed uops over all threads.
func (s *Stats) TotalCommitted() uint64 {
	var n uint64
	for i := range s.Threads {
		n += s.Threads[i].Committed
	}
	return n
}

// Throughput returns total IPC (sum of per-thread IPCs).
func (s *Stats) Throughput() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.TotalCommitted()) / float64(s.Cycles)
}

// TotalFetched returns the sum of fetched uops (front-end activity,
// including wrong-path and FLUSH re-fetch work).
func (s *Stats) TotalFetched() uint64 {
	var n uint64
	for i := range s.Threads {
		n += s.Threads[i].Fetched
	}
	return n
}

// AvgMLP returns the average number of overlapped outstanding memory
// accesses over cycles that had at least one outstanding.
func (s *Stats) AvgMLP() float64 {
	if s.MLPCycles == 0 {
		return 0
	}
	return float64(s.MLPSum) / float64(s.MLPCycles)
}

// String renders a compact human-readable summary.
func (s *Stats) String() string {
	out := fmt.Sprintf("cycles=%d throughput=%.3f mlp=%.2f\n", s.Cycles, s.Throughput(), s.AvgMLP())
	for i := range s.Threads {
		t := &s.Threads[i]
		out += fmt.Sprintf("  t%d: ipc=%.3f commit=%d fetch=%d squash=%d l1d=%d l2d=%d bmr=%.1f%%\n",
			i, t.IPC(s.Cycles), t.Committed, t.Fetched, t.Squashed,
			t.L1DMisses, t.L2DMisses, t.MispredictRate())
	}
	return out
}
