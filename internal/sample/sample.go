// Package sample implements SMARTS-style statistical sampling over the
// detailed simulator: a deterministic schedule of measurement windows
// (detailed warmup with statistics frozen → detailed measurement) separated
// by functional fast-forward gaps, reporting per-metric means with standard
// errors and 99.7% confidence intervals (the SMARTS paper's convention —
// with K around 8 windows a 95% interval would be missed by the expected 5%
// of cells for purely statistical reasons, which is useless as a parity
// contract; the 99.7% Student-t interval is wide enough that a miss means a
// real bias, not bad luck).
//
// The simulated process is not stationary — the branch predictor trains and
// prewarmed caches decay toward steady state over tens of thousands of
// cycles — so the schedule is cycle-aligned: gaps are expressed in
// cycle-equivalents and each thread fast-forwards round(its measured IPC ×
// gap cycles) uops, spreading the K windows across the same cycle interval
// the exact protocol measures. The exact protocol's warmup region is handled
// the same way: a pilot window at cycle zero (discarded from the estimate)
// measures commit rates, a fast-forward gap skips the rest of the warmup,
// and only then do the K windows begin — without the skip, early windows
// measure a half-trained predictor and bias throughput low. The exact kernel
// stays the verifier: the Figure 5 parity harness (internal/experiments)
// asserts every workload's sampled throughput lands within the reported
// confidence interval of its exact run.
//
// Sampled runs are bit-reproducible like everything else in the repo: the
// schedule is a pure function of (Params, measured statistics), fast-forward
// consumes the canonical uop stream, and the summary statistics are computed
// in a fixed order.
package sample

import (
	"fmt"
	"math"

	"dcra/internal/config"
	"dcra/internal/cpu"
	"dcra/internal/obs"
	"dcra/internal/stats"
)

// Params is the resolved sampling schedule of one run: Windows repetitions
// of (Warmup frozen cycles, Measure measured cycles), separated by
// fast-forward gaps. Exactly one gap form may be set: FFCycles
// (rate-proportional: thread t skips round(ipc_t × FFCycles) uops, keeping
// window positions cycle-aligned) or FFUops (fixed uops per thread). Both
// zero means contiguous windows.
//
// A non-zero SkipCycles prepends a pilot: one extra (Warmup, Measure)
// detailed window at cycle zero, discarded from the estimate, whose commit
// rates size a rate-proportional fast-forward through the remainder of the
// first SkipCycles cycle-equivalents. This aligns the measured windows with
// an exact protocol's post-warmup interval.
// The adaptive extension (MinWindows > 0) turns Windows into a hard cap:
// after MinWindows windows, more are added only while the 99.7% t-interval
// half-width of the running throughput estimate exceeds TargetRelCIPpm
// parts-per-million of its mean. The adaptive pilot is also cheaper: it
// runs at half scale, measures its commit rates in two halves, and sizes
// the exact-warmup skip from the observed drift between them (bounded
// linear extrapolation) instead of a flat rate multiple. WarmTail > 0
// fast-forwards each gap body with stream-only draws, applying full
// cache/TLB/predictor warming only to the last WarmTail uops per thread.
type Params struct {
	SkipCycles uint64 // initial region to skip via pilot + fast-forward
	FFCycles   uint64 // rate-proportional gap, in cycle-equivalents
	FFUops     uint64 // fixed gap, in committed uops per thread
	Warmup     uint64 // detailed warmup cycles per window (stats frozen)
	Measure    uint64 // detailed measured cycles per window
	Windows    int    // number of windows (the hard cap when adaptive)

	MinWindows     int    // adaptive floor; 0 = fixed protocol
	TargetRelCIPpm int64  // stopping target: rel. CI half-width, ppm of mean
	WarmTail       uint64 // per-thread warm uops at each gap's end; 0 = full warming
}

// Adaptive reports whether the sequential stopping rule is enabled.
func (p Params) Adaptive() bool { return p.MinWindows > 0 }

// Validate checks the schedule is runnable.
func (p Params) Validate() error {
	if p.Measure == 0 || p.Windows <= 0 {
		return fmt.Errorf("sample: schedule needs a measure window and >= 1 windows, got %+v", p)
	}
	if p.FFCycles > 0 && p.FFUops > 0 {
		return fmt.Errorf("sample: gaps are either rate-proportional (FFCycles) or fixed (FFUops), not both: %+v", p)
	}
	if p.MinWindows < 0 || p.MinWindows > p.Windows {
		return fmt.Errorf("sample: MinWindows must be in [0, Windows], got %+v", p)
	}
	if p.MinWindows > 0 && p.TargetRelCIPpm <= 0 {
		return fmt.Errorf("sample: adaptive schedule needs a positive TargetRelCIPpm: %+v", p)
	}
	return nil
}

// DetailedCycles returns the detailed-simulation cost of the schedule,
// including the pilot window a SkipCycles schedule runs.
func (p Params) DetailedCycles() uint64 {
	n := uint64(p.Windows)
	if p.SkipCycles > 0 {
		n++
	}
	return n * (p.Warmup + p.Measure)
}

// SpannedCycles returns the cycle-equivalents the schedule covers (skipped
// region, detailed windows, and rate-proportional gaps).
func (p Params) SpannedCycles() uint64 {
	if p.Windows <= 0 {
		return 0
	}
	return p.SkipCycles + uint64(p.Windows)*(p.Warmup+p.Measure) + uint64(p.Windows-1)*p.FFCycles
}

// FromConfig converts an explicit config.SamplingConfig into Params.
func FromConfig(sc config.SamplingConfig) Params {
	return Params{SkipCycles: sc.SkipCycles, FFCycles: sc.FFCycles, FFUops: sc.FFUops,
		Warmup: sc.Warmup, Measure: sc.Measure, Windows: sc.Windows,
		MinWindows: sc.MinWindows, TargetRelCIPpm: sc.TargetRelCIPpm, WarmTail: sc.WarmTail}
}

// Config converts Params back into the config block form, for stamping onto
// campaign cells: the sampling knobs become part of the cell's content key,
// so results from different protocols can never collide in a store.
func (p Params) Config() config.SamplingConfig {
	return config.SamplingConfig{SkipCycles: p.SkipCycles, FFCycles: p.FFCycles, FFUops: p.FFUops,
		Warmup: p.Warmup, Measure: p.Measure, Windows: p.Windows,
		MinWindows: p.MinWindows, TargetRelCIPpm: p.TargetRelCIPpm, WarmTail: p.WarmTail}
}

// Derive builds a schedule from an exact protocol's (warmup, measure)
// windows: the warmup region is skipped via pilot + fast-forward, and K
// windows whose detailed cost is roughly a fifth of the measured interval
// are spread across it with rate-proportional gaps, the last window ending
// where the exact measurement ends. (The parity tests check this across all
// Figure 5 cells at multiple scales.)
func Derive(warmup, measure uint64) Params {
	p := Params{Windows: 7, SkipCycles: warmup}
	w := uint64(p.Windows)
	// Tuned against the Figure 5 parity sweep: the per-window warmup must
	// cover the post-fast-forward refill transient — an empty pipeline
	// restarts in a burst until the first load misses clog the ROB again,
	// roughly fill time plus one memory round-trip — or memory-bound cells
	// bias high. 3/5 of the measure window covers it at both protocol scales.
	p.Measure = max(measure/48, 500)
	p.Warmup = max(3*p.Measure/5, 250)
	if det := w * (p.Warmup + p.Measure); measure > det {
		p.FFCycles = (measure - det) / (w - 1)
	}
	return p
}

// Adaptive-protocol defaults (DeriveAdaptive). Tuned against the Figure 5
// parity sweep at both protocol scales. The stopping target looks loose but
// is calibrated to the estimator, not to the error: short windows see large
// phase-to-phase throughput swings (per-window relative std around 25-40%),
// and the floor-count t-quantile (6.4 at four degrees of freedom) multiplies
// that into a floor rel-CI of 50-90% — while the actual sampled-vs-exact
// error the parity sweep observes is an order of magnitude smaller (the
// window mean converges much faster than the naive CI suggests because the
// schedule strides phases deterministically rather than sampling them).
// The target therefore separates cells whose window variance is ordinary
// (stop at the floor) from genuinely erratic ones (keep adding windows up
// to the cap), and the minimum window count plus the parity harness carry
// the accuracy contract.
const (
	adaptiveMinWindows = 4
	adaptiveMaxWindows = 10
	adaptiveTargetPpm  = 1_500_000 // 150% relative CI half-width at 99.7%
	adaptiveWarmTail   = 3072    // uops of full warming per thread per gap
)

// DeriveAdaptive builds a variance-driven schedule from an exact protocol's
// (warmup, measure) windows: window geometry matches Derive, but the gap
// spread anchors to the minimum window count — a run that stops at the floor
// covers the same cycle interval the exact protocol measures, and only
// high-variance cells extend beyond it (the synthetic streams are
// phase-stationary, so later windows estimate the same process). The pilot
// runs at half scale and sizes the warmup skip from its observed commit-rate
// drift, and gaps warm only their WarmTail: see RunObserved.
func DeriveAdaptive(warmup, measure uint64) Params {
	p := Derive(warmup, measure)
	p.MinWindows = adaptiveMinWindows
	p.Windows = adaptiveMaxWindows
	p.TargetRelCIPpm = adaptiveTargetPpm
	p.WarmTail = adaptiveWarmTail
	// Warm-tail gaps keep caches, TLB and predictor trained through the
	// fast-forward, so the per-window warmup only has to cover the pipeline
	// refill transient, not cache re-warming: 2/5 of the measure window
	// suffices where the fixed protocol (cold gaps) needs 3/5.
	p.Warmup = max(2*p.Measure/5, 250)
	w := uint64(p.MinWindows)
	p.FFCycles = 0
	if det := w * (p.Warmup + p.Measure); measure > det {
		p.FFCycles = (measure - det) / (w - 1)
	}
	return p
}

// Summary reports the sampled estimate of one run: per-window throughputs,
// their mean, standard error and 99.7% confidence half-width, and the same
// triple per thread. Window values are retained verbatim — they are the
// determinism contract's observable (same seed ⇒ identical Summary).
type Summary struct {
	Params Params `json:"params"`

	Throughput       float64   `json:"throughput"`        // mean over windows
	ThroughputStdErr float64   `json:"throughput_stderr"` // s/sqrt(K)
	ThroughputCI     float64   `json:"throughput_ci997"`  // t-quantile half-width
	WindowThroughput []float64 `json:"window_throughput"` // raw per-window values

	IPC       []float64 `json:"ipc"` // per-thread means
	IPCStdErr []float64 `json:"ipc_stderr"`
	IPCCI     []float64 `json:"ipc_ci997"`

	// FastForwarded is the total uops skipped functionally (all threads, all
	// gaps); MeasuredCycles the total detailed cycles measured.
	FastForwarded  uint64 `json:"fast_forwarded"`
	MeasuredCycles uint64 `json:"measured_cycles"`

	// DetailedCycles is the detailed cycles actually simulated (pilot,
	// warmups and measured windows); OverheadCycles the share of those that
	// never reached the estimate (pilot + frozen warmups). Under the
	// adaptive protocol these depend on where the stopping rule landed, so
	// they are observed, not derived from Params.
	DetailedCycles uint64 `json:"detailed_cycles"`
	OverheadCycles uint64 `json:"overhead_cycles"`
}

// tQuantile9985 returns the two-sided 99.7% Student-t quantile for df
// degrees of freedom (tabulated for small df, 2.97 asymptotically).
func tQuantile9985(df int) float64 {
	table := [...]float64{
		1:  212.205,
		2:  18.216,
		3:  8.891,
		4:  6.435,
		5:  5.376,
		6:  4.800,
		7:  4.442,
		8:  4.199,
		9:  4.024,
		10: 3.892,
		11: 3.789,
		12: 3.706,
		13: 3.639,
		14: 3.583,
		15: 3.535,
	}
	if df <= 0 {
		return math.Inf(1)
	}
	if df < len(table) {
		return table[df]
	}
	switch {
	case df < 20:
		return 3.40
	case df < 30:
		return 3.24
	case df < 60:
		return 3.10
	default:
		return 2.97
	}
}

// meanStd returns the mean and sample standard deviation of xs, summing in
// slice order (the fixed order is part of bit-reproducibility).
func meanStd(xs []float64) (mean, std float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean = sum / n
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / (n - 1))
}

// SamplePID is the trace pid lane group cycle-domain sampling spans
// live on.
const SamplePID = 2

// Run executes the sampling schedule on m and returns the summary plus the
// aggregate statistics over all measured windows (warmup and fast-forward
// excluded). The machine must be freshly built or Reinit-ed; after Run it
// can be recycled like any other.
func Run(m *cpu.Machine, p Params) (*Summary, *stats.Stats, error) {
	return RunObserved(m, p, nil, nil)
}

// RunObserved is Run with telemetry: reg (if set) accumulates windows
// run, relative CI widths and the detailed-vs-fast-forward split, and
// tr (if set) records cycle-domain spans for the pilot and each
// measured window. Both nil reproduces Run exactly — the schedule and
// results are identical either way.
func RunObserved(m *cpu.Machine, p Params, reg *obs.Registry, tr *obs.Tracer) (*Summary, *stats.Stats, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	span := func(from uint64, format string, args ...any) {
		if tr != nil {
			tr.CompleteAt(SamplePID, 0, fmt.Sprintf(format, args...), "sample",
				float64(from), float64(m.Cycle()-from))
		}
	}
	if tr != nil {
		tr.Process(SamplePID, "sampling schedule (cycle domain)")
	}
	nt := m.NumThreads()
	sum := &Summary{
		Params:           p,
		WindowThroughput: make([]float64, 0, p.Windows),
		IPC:              make([]float64, nt),
		IPCStdErr:        make([]float64, nt),
		IPCCI:            make([]float64, nt),
	}
	perThread := make([][]float64, nt)
	for t := range perThread {
		perThread[t] = make([]float64, 0, p.Windows)
	}
	agg := stats.New(nt)
	ffTotals := make([]uint64, nt)
	budgets := make([]uint64, nt)
	adaptive := p.Adaptive()
	relTarget := float64(p.TargetRelCIPpm) / 1e6
	var detailed, overhead uint64
	ff := func(label string, args ...any) {
		if p.WarmTail > 0 {
			m.FastForwardBudgetsTail(budgets, p.WarmTail)
		} else {
			m.FastForwardBudgets(budgets)
		}
		var skipped uint64
		for t := 0; t < nt; t++ {
			if !m.Parked(t) {
				ffTotals[t] += budgets[t]
				skipped += budgets[t]
			}
		}
		if tr != nil {
			// Fast-forward advances no cycles, so the gap is a zero-width
			// marker carrying its uop count in the name.
			span(m.Cycle(), fmt.Sprintf(label, args...)+fmt.Sprintf(" (%d uops)", skipped))
		}
	}
	if p.SkipCycles > 0 && !adaptive {
		// Pilot window: detailed execution at cycle zero whose commit rates
		// size the fast-forward through the rest of the skipped region. Its
		// statistics never reach the summary — the first measured window's
		// ResetStats discards them.
		pilotFrom := m.Cycle()
		m.Run(p.Warmup)
		span(pilotFrom, "pilot warmup")
		m.ResetStats()
		measureFrom := m.Cycle()
		m.Run(p.Measure)
		span(measureFrom, "pilot")
		detailed += p.Warmup + p.Measure
		overhead += p.Warmup + p.Measure
		if pilot := p.Warmup + p.Measure; p.SkipCycles > pilot {
			st := m.Stats()
			gap := p.SkipCycles - pilot
			for t := 0; t < nt; t++ {
				budgets[t] = (st.Threads[t].Committed*gap + p.Measure/2) / p.Measure
			}
			ff("gap skip")
		}
	}
	if p.SkipCycles > 0 && adaptive {
		// Half-scale pilot with drift-sized skip: settle for half the window
		// warmup, measure commit counts over two half-windows, and size the
		// skip budget from a bounded linear extrapolation of the rate trend
		// between them. The trend carries the information a longer settled
		// pilot would have averaged away — the predictor is still training
		// through the skipped region, so the later rate plus its drift is a
		// better gap-rate estimate than a flat multiple of the pilot mean —
		// which is what lets the pilot run at half the detailed cost.
		// Each half must span at least a couple of main-memory round-trips
		// or memory-bound threads alias their stall bursts into the rate —
		// half the measure window does at both protocol scales, and the
		// pilot still costs ~20% less than the fixed protocol's.
		settle := p.Warmup / 2
		h := max(p.Measure/2, 1)
		pilotFrom := m.Cycle()
		m.Run(settle)
		span(pilotFrom, "pilot warmup")
		m.ResetStats()
		measureFrom := m.Cycle()
		m.Run(h)
		c1 := make([]uint64, nt)
		for t := 0; t < nt; t++ {
			c1[t] = m.Stats().Threads[t].Committed
		}
		m.Run(h)
		span(measureFrom, "pilot")
		detailed += settle + 2*h
		overhead += settle + 2*h
		if pilot := settle + 2*h; p.SkipCycles > pilot {
			st := m.Stats()
			gap := int64(p.SkipCycles - pilot)
			for t := 0; t < nt; t++ {
				c2 := int64(st.Threads[t].Committed - c1[t])
				// Rate at the gap midpoint, extrapolated from the per-half
				// trend and clamped to ±25% of the later half — real warmup
				// drift saturates, it does not stay linear.
				proj := c2 + (c2-int64(c1[t]))*(int64(h)+gap)/(2*int64(h))
				proj = min(max(proj, c2*3/4), c2*5/4)
				budgets[t] = uint64((proj*gap + int64(h)/2) / int64(h))
			}
			ff("gap skip")
		}
	}
	for k := 0; k < p.Windows; k++ {
		warmFrom := m.Cycle()
		m.Run(p.Warmup)
		span(warmFrom, "warmup %d", k)
		m.ResetStats()
		measureFrom := m.Cycle()
		m.Run(p.Measure)
		span(measureFrom, "window %d", k)
		detailed += p.Warmup + p.Measure
		overhead += p.Warmup
		st := m.Stats()
		sum.WindowThroughput = append(sum.WindowThroughput, st.Throughput())
		for t := 0; t < nt; t++ {
			perThread[t] = append(perThread[t], st.Threads[t].IPC(st.Cycles))
		}
		agg.Accumulate(st)
		if k+1 == p.Windows {
			break
		}
		if adaptive && k+1 >= p.MinWindows {
			// Sequential stopping: once the running 99.7% interval is
			// tighter than the per-cell target, further windows only buy
			// precision the parity contract does not need. A pure function
			// of the window values so far, so same-seed runs stop at the
			// same window. Stopping also skips the trailing gap outright.
			kk := k + 1
			mean, std := meanStd(sum.WindowThroughput)
			ci := tQuantile9985(kk-1) * std / math.Sqrt(float64(kk))
			if mean > 0 && ci <= mean*relTarget {
				break
			}
		}
		if p.FFCycles == 0 && p.FFUops == 0 {
			continue
		}
		for t := 0; t < nt; t++ {
			if p.FFCycles > 0 {
				// Rate-proportional: skip what the thread would have
				// committed in FFCycles cycles at its measured rate
				// (integer rounding — determinism needs exact arithmetic).
				budgets[t] = (st.Threads[t].Committed*p.FFCycles + p.Measure/2) / p.Measure
			} else {
				budgets[t] = p.FFUops
			}
		}
		ff("gap %d", k)
	}

	k := len(sum.WindowThroughput)
	tq := tQuantile9985(k - 1)
	sqrtK := math.Sqrt(float64(k))
	mean, std := meanStd(sum.WindowThroughput)
	sum.Throughput = mean
	sum.ThroughputStdErr = std / sqrtK
	sum.ThroughputCI = tq * sum.ThroughputStdErr
	for t := 0; t < nt; t++ {
		mean, std := meanStd(perThread[t])
		sum.IPC[t] = mean
		sum.IPCStdErr[t] = std / sqrtK
		sum.IPCCI[t] = tq * sum.IPCStdErr[t]
	}
	// The per-window ResetStats wipes the live FastForwarded counter, so the
	// aggregate carries the totals tracked alongside the gap budgets.
	for t := 0; t < nt; t++ {
		agg.Threads[t].FastForwarded = ffTotals[t]
		sum.FastForwarded += ffTotals[t]
	}
	sum.MeasuredCycles = agg.Cycles
	sum.DetailedCycles = detailed
	sum.OverheadCycles = overhead
	if reg != nil {
		reg.Counter("sample.runs").Inc()
		reg.Counter("sample.windows").Add(int64(k))
		reg.Counter("sample.cycles.detailed").Add(int64(detailed))
		reg.Counter("sample.cycles.overhead").Add(int64(overhead))
		reg.Counter("sample.uops.fastforwarded").Add(int64(sum.FastForwarded))
		if sum.Throughput > 0 {
			// Relative CI half-width in parts-per-million: a dimensionless
			// integer, so shard merges of the histogram stay exact.
			reg.Histogram("sample.ci.rel.ppm", obs.PPMBounds).
				Observe(int64(sum.ThroughputCI / sum.Throughput * 1e6))
		}
	}
	return sum, agg, nil
}
