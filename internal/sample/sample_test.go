package sample

import (
	"math"
	"reflect"
	"testing"

	"dcra/internal/config"
	"dcra/internal/cpu"
	"dcra/internal/policy"
	"dcra/internal/trace"
)

func testMachine(t *testing.T) *cpu.Machine {
	t.Helper()
	m, err := cpu.New(config.Baseline(), []trace.Profile{
		trace.MustProfile("gzip"), trace.MustProfile("mcf"),
		trace.MustProfile("eon"), trace.MustProfile("art"),
	}, policy.NewICount(), 42)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParamsValidate(t *testing.T) {
	good := Params{SkipCycles: 1000, FFCycles: 500, Warmup: 100, Measure: 400, Windows: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	bad := []Params{
		{Windows: 4},                // no measure window
		{Measure: 100},              // no windows
		{Measure: 100, Windows: -1}, // negative windows
		{Measure: 100, Windows: 2, FFCycles: 1, FFUops: 1}, // both gap kinds
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("schedule %+v accepted, want error", p)
		}
	}
}

// TestDeriveSpansExactProtocol checks the derived schedule skips the exact
// warmup and covers the measured interval: last window ends at most one gap
// rounding short of warmup+measure.
func TestDeriveSpansExactProtocol(t *testing.T) {
	for _, proto := range [][2]uint64{{15_000, 60_000}, {50_000, 300_000}, {5_000, 20_000}} {
		warmup, measure := proto[0], proto[1]
		p := Derive(warmup, measure)
		if err := p.Validate(); err != nil {
			t.Fatalf("Derive(%d, %d) invalid: %v", warmup, measure, err)
		}
		if p.SkipCycles != warmup {
			t.Errorf("Derive(%d, %d): SkipCycles = %d, want the exact warmup", warmup, measure, p.SkipCycles)
		}
		span := p.SpannedCycles()
		if total := warmup + measure; span > total || total-span >= uint64(p.Windows) {
			t.Errorf("Derive(%d, %d): spans %d cycles, want within %d of %d",
				warmup, measure, span, p.Windows, total)
		}
		if p.DetailedCycles() >= measure/2 {
			t.Errorf("Derive(%d, %d): detailed cost %d is no saving over measure %d",
				warmup, measure, p.DetailedCycles(), measure)
		}
	}
}

// TestRunDeterminism runs the same schedule on two identically-seeded
// machines and requires bit-identical summaries, window values included.
func TestRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	p := Derive(5_000, 20_000)
	a, aggA, err := Run(testMachine(t), p)
	if err != nil {
		t.Fatal(err)
	}
	b, aggB, err := Run(testMachine(t), p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed summaries differ:\n%+v\n%+v", a, b)
	}
	if !reflect.DeepEqual(aggA, aggB) {
		t.Fatalf("same-seed aggregate stats differ")
	}
}

// TestAdaptiveStopping drives both edges of the sequential stopping rule.
// The retained window count must be a pure function of observed variance
// versus the target: a target tighter than any real cell's window variance
// can satisfy is the forced-high-variance case — every stopping check sees a
// relative CI far above target — and must run to the hard cap rather than
// extend forever; a target wider than the floor-count CI stops the run at
// MinWindows. Both runs use the same seed, so the divergence is purely the
// stopping rule's.
func TestAdaptiveStopping(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	base := DeriveAdaptive(5_000, 20_000)
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	if !base.Adaptive() || base.MinWindows >= base.Windows {
		t.Fatalf("DeriveAdaptive yielded no adaptive headroom: %+v", base)
	}

	capped := base
	capped.TargetRelCIPpm = 1 // 0.0001% of mean: unreachably tight
	capSum, _, err := Run(testMachine(t), capped)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(capSum.WindowThroughput); got != capped.Windows {
		t.Errorf("unreachable target retained %d windows, want the cap %d", got, capped.Windows)
	}

	floor := base
	floor.TargetRelCIPpm = 100_000_000 // 10000% of mean: met at the first check
	floorSum, _, err := Run(testMachine(t), floor)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(floorSum.WindowThroughput); got != floor.MinWindows {
		t.Errorf("trivial target retained %d windows, want the floor %d", got, floor.MinWindows)
	}
	if floorSum.DetailedCycles >= capSum.DetailedCycles {
		t.Errorf("floor stop spent %d detailed cycles, cap run %d — stopping saved nothing",
			floorSum.DetailedCycles, capSum.DetailedCycles)
	}
	// Early stop skips the trailing gap: the floor run's windows must agree
	// bit-for-bit with the cap run's first MinWindows values (the schedule
	// prefix is identical; only the decision to continue differs).
	for i, w := range floorSum.WindowThroughput {
		if w != capSum.WindowThroughput[i] {
			t.Errorf("window %d: floor run %v != cap run %v", i, w, capSum.WindowThroughput[i])
		}
	}
}

// TestSummaryInvariants checks the summary's internal consistency: the mean
// is the mean of the retained windows, intervals scale from the standard
// error, and the aggregate counts match the schedule.
func TestSummaryInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	p := Derive(5_000, 20_000)
	sum, agg, err := Run(testMachine(t), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.WindowThroughput) != p.Windows {
		t.Fatalf("retained %d windows, want %d", len(sum.WindowThroughput), p.Windows)
	}
	var mean float64
	for _, w := range sum.WindowThroughput {
		mean += w
	}
	mean /= float64(p.Windows)
	if sum.Throughput != mean {
		t.Errorf("Throughput %v != mean of windows %v", sum.Throughput, mean)
	}
	tq := tQuantile9985(p.Windows - 1)
	if got, want := sum.ThroughputCI, tq*sum.ThroughputStdErr; math.Abs(got-want) > 1e-12 {
		t.Errorf("ThroughputCI %v != t-quantile x stderr %v", got, want)
	}
	if sum.MeasuredCycles != uint64(p.Windows)*p.Measure {
		t.Errorf("MeasuredCycles %d, want %d", sum.MeasuredCycles, uint64(p.Windows)*p.Measure)
	}
	if agg.Cycles != sum.MeasuredCycles {
		t.Errorf("aggregate cycles %d != summary MeasuredCycles %d", agg.Cycles, sum.MeasuredCycles)
	}
	if sum.FastForwarded == 0 {
		t.Error("schedule with gaps fast-forwarded no uops")
	}
	var ff uint64
	for _, ts := range agg.Threads {
		ff += ts.FastForwarded
	}
	if ff != sum.FastForwarded {
		t.Errorf("per-thread FastForwarded sums to %d, summary says %d", ff, sum.FastForwarded)
	}
}
