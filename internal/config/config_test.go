package config

import "testing"

func TestBaselineValid(t *testing.T) {
	if err := Baseline().Validate(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
}

func TestBaselineMatchesPaperTable2(t *testing.T) {
	cfg := Baseline()
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"fetch width", cfg.FetchWidth, 8},
		{"issue width", cfg.IssueWidth, 8},
		{"commit width", cfg.CommitWidth, 8},
		{"int queue", cfg.IntQueue, 80},
		{"fp queue", cfg.FPQueue, 80},
		{"ls queue", cfg.LSQueue, 80},
		{"int units", cfg.IntUnits, 6},
		{"fp units", cfg.FPUnits, 3},
		{"ls units", cfg.LSUnits, 4},
		{"phys regs", cfg.PhysRegs, 352},
		{"rob", cfg.ROBSize, 512},
		{"gshare", cfg.GshareEntries, 16384},
		{"btb", cfg.BTBEntries, 256},
		{"ras", cfg.RASEntries, 256},
		{"icache KB", cfg.ICache.SizeBytes, 64 << 10},
		{"dcache assoc", cfg.DCache.Assoc, 2},
		{"dcache banks", cfg.DCache.Banks, 8},
		{"l2 KB", cfg.L2.SizeBytes, 512 << 10},
		{"l2 assoc", cfg.L2.Assoc, 8},
		{"l2 latency", cfg.L2.Latency, 20},
		{"mem latency", cfg.MemLatency, 300},
		{"tlb penalty", cfg.TLBPenalty, 160},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d (paper Table 2)", c.name, c.got, c.want)
		}
	}
}

func TestRenameRegs(t *testing.T) {
	cfg := Baseline()
	for threads, want := range map[int]int{1: 320, 2: 288, 3: 256, 4: 224} {
		if got := cfg.RenameRegs(threads); got != want {
			t.Errorf("RenameRegs(%d) = %d, want %d", threads, got, want)
		}
	}
}

func TestSweepHelpers(t *testing.T) {
	cfg := Baseline().WithMemLatency(500, 25).WithPhysRegs(384)
	if cfg.MemLatency != 500 || cfg.L2.Latency != 25 || cfg.PhysRegs != 384 {
		t.Fatalf("sweep helpers did not apply: %+v", cfg)
	}
	// The original must be unchanged (value semantics).
	if Baseline().MemLatency != 300 {
		t.Fatal("WithMemLatency mutated the baseline")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("swept config invalid: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mods := map[string]func(*Config){
		"zero fetch width":     func(c *Config) { c.FetchWidth = 0 },
		"zero fetch threads":   func(c *Config) { c.FetchMaxTh = 0 },
		"tiny frontend buffer": func(c *Config) { c.FrontEndBuffer = 1 },
		"zero int queue":       func(c *Config) { c.IntQueue = 0 },
		"zero fp units":        func(c *Config) { c.FPUnits = 0 },
		"regs below arch":      func(c *Config) { c.PhysRegs = 16 },
		"zero rob":             func(c *Config) { c.ROBSize = 0 },
		"non-pow2 gshare":      func(c *Config) { c.GshareEntries = 1000 },
		"zero mem latency":     func(c *Config) { c.MemLatency = 0 },
		"non-pow2 page":        func(c *Config) { c.PageBytes = 3000 },
		"bad cache geometry":   func(c *Config) { c.L2.SizeBytes = 100 },
		"zero cache banks":     func(c *Config) { c.DCache.Banks = 0 },
		"zero cache latency":   func(c *Config) { c.ICache.Latency = 0 },
	}
	for name, mod := range mods {
		cfg := Baseline()
		mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad config", name)
		}
	}
}

func TestCacheSets(t *testing.T) {
	cc := CacheConfig{SizeBytes: 64 << 10, Assoc: 2, LineBytes: 64, Banks: 8, Latency: 1}
	if got := cc.Sets(); got != 512 {
		t.Fatalf("Sets() = %d, want 512", got)
	}
}
