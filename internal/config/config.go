// Package config defines the simulated processor configuration.
//
// The zero value is not meaningful; start from Baseline (the paper's Table 2)
// and adjust fields for sweeps (register-file size for Figure 6, memory
// latency for Figure 7, queue scaling for Figure 2).
package config

import "fmt"

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int // total capacity
	Assoc     int // ways per set
	LineBytes int // line size
	Banks     int // number of independently-ported banks
	Latency   int // access latency in cycles (hit)
}

// Sets returns the number of sets implied by the geometry.
func (c CacheConfig) Sets() int {
	return c.SizeBytes / (c.Assoc * c.LineBytes)
}

// Geometry is the allocation-relevant subset of a CacheConfig: two caches
// with equal geometry have identical backing-array shapes and indexing, so
// one's storage can be reused for the other (only latency may differ).
type Geometry struct {
	SizeBytes int
	Assoc     int
	LineBytes int
	Banks     int
}

// Geometry returns the cache's allocation geometry.
func (c CacheConfig) Geometry() Geometry {
	return Geometry{SizeBytes: c.SizeBytes, Assoc: c.Assoc, LineBytes: c.LineBytes, Banks: c.Banks}
}

// Validate checks the geometry is realisable.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.Assoc <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("config: non-positive cache geometry %+v", c)
	}
	if c.SizeBytes%(c.Assoc*c.LineBytes) != 0 {
		return fmt.Errorf("config: cache size %d not divisible by assoc*line %d*%d",
			c.SizeBytes, c.Assoc, c.LineBytes)
	}
	if c.Banks <= 0 {
		return fmt.Errorf("config: cache needs >= 1 bank, got %d", c.Banks)
	}
	if c.Latency < 1 {
		return fmt.Errorf("config: cache latency must be >= 1, got %d", c.Latency)
	}
	return nil
}

// Config is the full processor configuration (paper Table 2 for defaults).
type Config struct {
	// Pipeline widths and depth.
	FetchWidth  int // instructions fetched per cycle (total)
	FetchMaxTh  int // max threads fetched per cycle (ICOUNT2.8 -> 2)
	IssueWidth  int // instructions issued per cycle (total)
	CommitWidth int // instructions committed per cycle (total)
	// FrontEndDepth is the number of cycles between fetch and dispatch
	// (decode+rename stages). With fetch, queue, issue, regread(2), exec, WB
	// and commit it yields the paper's 12-stage depth.
	FrontEndDepth int
	// FrontEndBuffer is the per-thread capacity of the decode/rename pipe.
	FrontEndBuffer int

	// Issue queues (entries shared by all threads unless a policy partitions
	// them): integer, FP, load/store.
	IntQueue int
	FPQueue  int
	LSQueue  int

	// Functional units.
	IntUnits int
	FPUnits  int
	LSUnits  int

	// Execution latencies (cycles) per op class.
	IntALULat int
	IntMulLat int
	FPALULat  int
	FPMulLat  int

	// Register files. PhysRegs is the size of EACH of the integer and FP
	// physical register files (the paper fixes the physical count and
	// derives rename registers as PhysRegs - 32*threads per file).
	PhysRegs     int
	ArchRegs     int // architectural registers per thread per class
	RegReadCycle int // extra register-file access cycles (paper: 2-cycle)

	// Reorder buffer (shared).
	ROBSize int

	// Branch prediction.
	GshareEntries int // PHT entries (paper: 16K)
	BTBEntries    int
	BTBAssoc      int
	RASEntries    int

	// Memory hierarchy.
	ICache      CacheConfig
	DCache      CacheConfig
	L2          CacheConfig
	MemLatency  int // main memory latency in cycles
	TLBEntries  int
	TLBPenalty  int // TLB miss penalty in cycles
	PageBytes   int
	MSHREntries int // outstanding misses supported per level

	// PerfectICache/PerfectDCache force hits (Figure 2 uses a perfect L1D).
	PerfectICache bool
	PerfectDCache bool

	// Sampling, when non-zero, overrides the derived SMARTS-style schedule
	// for sampled runs. The zero value means "derive from the runner's
	// windows" and — via omitzero — leaves the JSON form of every exact
	// configuration unchanged, so exact campaign cells keep their keys.
	Sampling SamplingConfig `json:"Sampling,omitzero"`
}

// SamplingConfig is the SMARTS-style sampled-execution schedule: Windows
// windows of (Warmup detailed cycles with statistics frozen, then Measure
// measured detailed cycles), separated by functional fast-forward gaps. A
// gap is either rate-proportional — FFCycles cycle-equivalents, each thread
// skipping round(its measured IPC x FFCycles) uops, which keeps the sampled
// windows aligned with the exact protocol's cycle interval — or fixed,
// FFUops committed uops per thread. A non-zero SkipCycles fast-forwards
// through the first SkipCycles cycle-equivalents (after a discarded pilot
// window that measures commit rates) before the first measured window,
// mirroring an exact protocol's warmup. All-zero means "not configured":
// sampled runs then derive a schedule from the exact protocol's windows.
//
// The adaptive extension (MinWindows > 0) turns Windows into a hard cap:
// after MinWindows windows the run keeps adding windows only while the
// 99.7% t-interval half-width of the throughput estimate exceeds
// TargetRelCIPpm parts-per-million of the mean. WarmTail > 0 fast-forwards
// each gap's body with stream-only draws and applies full cache/predictor
// warming to the last WarmTail uops per thread before the next window.
// Every adaptive knob is omitempty, so legacy fixed-protocol configurations
// (and exact configurations, via omitzero above) keep their campaign cell
// keys; any knob difference produces a distinct key, so stores never mix
// protocols.
type SamplingConfig struct {
	SkipCycles uint64 `json:"skip_cycles,omitempty"`
	FFCycles   uint64 `json:"ff_cycles,omitempty"`
	FFUops     uint64 `json:"ff_uops,omitempty"`
	Warmup     uint64 `json:"warmup,omitempty"`
	Measure    uint64 `json:"measure,omitempty"`
	Windows    int    `json:"windows,omitempty"`

	// MinWindows enables variance-driven sequential stopping: at least
	// MinWindows windows run, at most Windows. Zero = fixed protocol.
	MinWindows int `json:"min_windows,omitempty"`
	// TargetRelCIPpm is the stopping target: relative 99.7% CI half-width
	// in parts-per-million of the mean (integer, so cell keys stay exact).
	TargetRelCIPpm int64 `json:"target_rel_ci_ppm,omitempty"`
	// WarmTail is the per-thread uop count at the end of each gap that gets
	// full functional warming; the gap body before it advances the stream
	// without touching caches or the predictor. Zero = warm the whole gap.
	WarmTail uint64 `json:"warm_tail,omitempty"`
}

// Enabled reports whether an explicit schedule is configured.
func (s SamplingConfig) Enabled() bool { return s != SamplingConfig{} }

// Validate checks the schedule is runnable (zero value is always valid).
func (s SamplingConfig) Validate() error {
	if !s.Enabled() {
		return nil
	}
	if s.Measure == 0 || s.Windows <= 0 {
		return fmt.Errorf("config: sampling needs a measure window and >= 1 windows, got %+v", s)
	}
	if s.FFCycles > 0 && s.FFUops > 0 {
		return fmt.Errorf("config: sampling gaps are either rate-proportional (ff_cycles) or fixed (ff_uops), not both: %+v", s)
	}
	if s.MinWindows < 0 || s.MinWindows > s.Windows {
		return fmt.Errorf("config: sampling min_windows must be in [0, windows], got %+v", s)
	}
	if s.MinWindows > 0 && s.TargetRelCIPpm <= 0 {
		return fmt.Errorf("config: adaptive sampling (min_windows > 0) needs a positive target_rel_ci_ppm: %+v", s)
	}
	if s.MinWindows == 0 && s.TargetRelCIPpm != 0 {
		return fmt.Errorf("config: target_rel_ci_ppm without min_windows has no effect: %+v", s)
	}
	return nil
}

// Baseline returns the paper's Table 2 configuration.
func Baseline() Config {
	return Config{
		FetchWidth:     8,
		FetchMaxTh:     2,
		IssueWidth:     8,
		CommitWidth:    8,
		FrontEndDepth:  6,
		FrontEndBuffer: 32,

		IntQueue: 80,
		FPQueue:  80,
		LSQueue:  80,

		IntUnits: 6,
		FPUnits:  3,
		LSUnits:  4,

		IntALULat: 1,
		IntMulLat: 3,
		FPALULat:  4,
		FPMulLat:  4,

		PhysRegs:     352,
		ArchRegs:     32,
		RegReadCycle: 2,

		ROBSize: 512,

		GshareEntries: 16384,
		BTBEntries:    256,
		BTBAssoc:      4,
		RASEntries:    256,

		ICache: CacheConfig{SizeBytes: 64 << 10, Assoc: 2, LineBytes: 64, Banks: 8, Latency: 1},
		DCache: CacheConfig{SizeBytes: 64 << 10, Assoc: 2, LineBytes: 64, Banks: 8, Latency: 1},
		L2:     CacheConfig{SizeBytes: 512 << 10, Assoc: 8, LineBytes: 64, Banks: 8, Latency: 20},

		MemLatency:  300,
		TLBEntries:  128,
		TLBPenalty:  160,
		PageBytes:   8 << 10,
		MSHREntries: 32,
	}
}

// RenameRegs returns the number of rename registers available per register
// class when `threads` hardware contexts are active.
func (c Config) RenameRegs(threads int) int {
	return c.PhysRegs - c.ArchRegs*threads
}

// Validate checks internal consistency. It is called by the simulator
// constructor so misconfigured sweeps fail fast.
func (c Config) Validate() error {
	if c.FetchWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0 {
		return fmt.Errorf("config: non-positive pipeline width")
	}
	if c.FetchMaxTh <= 0 {
		return fmt.Errorf("config: FetchMaxTh must be >= 1")
	}
	if c.FrontEndDepth < 1 || c.FrontEndBuffer < c.FetchWidth {
		return fmt.Errorf("config: front end depth %d / buffer %d invalid",
			c.FrontEndDepth, c.FrontEndBuffer)
	}
	if c.IntQueue <= 0 || c.FPQueue <= 0 || c.LSQueue <= 0 {
		return fmt.Errorf("config: non-positive issue queue size")
	}
	if c.IntUnits <= 0 || c.FPUnits <= 0 || c.LSUnits <= 0 {
		return fmt.Errorf("config: non-positive functional unit count")
	}
	if c.PhysRegs <= c.ArchRegs {
		return fmt.Errorf("config: %d physical registers cannot back %d architectural",
			c.PhysRegs, c.ArchRegs)
	}
	if c.ROBSize <= 0 {
		return fmt.Errorf("config: non-positive ROB size")
	}
	if c.GshareEntries&(c.GshareEntries-1) != 0 {
		return fmt.Errorf("config: gshare entries %d not a power of two", c.GshareEntries)
	}
	if c.MemLatency <= 0 || c.MSHREntries <= 0 {
		return fmt.Errorf("config: non-positive memory parameters")
	}
	if c.PageBytes <= 0 || c.PageBytes&(c.PageBytes-1) != 0 {
		return fmt.Errorf("config: page size %d not a power of two", c.PageBytes)
	}
	for _, cc := range []CacheConfig{c.ICache, c.DCache, c.L2} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	return c.Sampling.Validate()
}

// WithSampling returns a copy with an explicit sampled-execution schedule.
func (c Config) WithSampling(s SamplingConfig) Config {
	c.Sampling = s
	return c
}

// WithMemLatency returns a copy with main-memory and L2 latency set, used by
// the Figure 7 sweep (paper pairs 100/300/500 memory with 10/20/25 L2).
func (c Config) WithMemLatency(mem, l2 int) Config {
	c.MemLatency = mem
	c.L2.Latency = l2
	return c
}

// WithPhysRegs returns a copy with the physical register file size set (per
// class), used by the Figure 6 sweep.
func (c Config) WithPhysRegs(n int) Config {
	c.PhysRegs = n
	return c
}
