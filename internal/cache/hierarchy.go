package cache

import (
	"dcra/internal/config"
)

// AccessResult describes the outcome of a data-side access.
type AccessResult struct {
	// DoneAt is the cycle at which the value is available (for loads) or
	// the access retires from the memory system (for stores).
	DoneAt uint64
	// Latency is DoneAt - now, always >= 1.
	Latency int

	L1Miss  bool
	L2Miss  bool // missed L2, went to main memory
	TLBMiss bool
}

// mshr tracks one outstanding fill.
type mshr struct {
	lineAddr uint64
	fillAt   uint64
}

// Hierarchy composes L1I, L1D, a unified L2, a TLB and main memory, with an
// MSHR file bounding and merging outstanding memory misses.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
	TLB *TLB

	cfg config.Config

	// l2mshrs tracks lines in flight from memory (L2 misses). Accesses to a
	// line already in flight merge: they complete at the original fill time.
	l2mshrs []mshr
	// l1mshrs tracks lines in flight from L2 into L1D (L1 misses that hit
	// in L2); merging avoids double-counting short misses.
	l1mshrs []mshr

	// MemMisses counts fills requested from main memory.
	MemMisses uint64
}

// NewHierarchy builds the full memory system for cfg.
func NewHierarchy(cfg config.Config) *Hierarchy {
	return &Hierarchy{
		L1I: NewCache(cfg.ICache),
		L1D: NewCache(cfg.DCache),
		L2:  NewCache(cfg.L2),
		TLB: NewTLB(cfg.TLBEntries, cfg.PageBytes),
		cfg: cfg,
	}
}

// expire drops completed MSHRs. Called on the query paths; MSHR files are
// tiny (tens of entries) so a linear sweep is cheap and allocation-free.
func expire(ms []mshr, now uint64) []mshr {
	out := ms[:0]
	for _, m := range ms {
		if m.fillAt > now {
			out = append(out, m)
		}
	}
	return out
}

func findMSHR(ms []mshr, lineAddr uint64) (uint64, bool) {
	for _, m := range ms {
		if m.lineAddr == lineAddr {
			return m.fillAt, true
		}
	}
	return 0, false
}

// minFill returns the earliest outstanding fill time (0 when empty).
func minFill(ms []mshr) uint64 {
	if len(ms) == 0 {
		return 0
	}
	t := ms[0].fillAt
	for _, m := range ms[1:] {
		if m.fillAt < t {
			t = m.fillAt
		}
	}
	return t
}

// AccessI performs an instruction fetch access for the line containing addr.
// It returns the fetch latency and whether it missed L1I. Instruction misses
// are serviced through L2 (and memory on an L2 miss) but are not tracked in
// the data MSHR statistics.
func (h *Hierarchy) AccessI(addr uint64, now uint64) (lat int, miss bool) {
	if h.cfg.PerfectICache {
		return h.cfg.ICache.Latency, false
	}
	lat, miss = h.L1I.Access(addr, now)
	if !miss {
		return lat, false
	}
	l2lat, l2miss := h.L2.Access(addr, now)
	lat += l2lat
	if l2miss {
		lat += h.cfg.MemLatency
	}
	return lat, true
}

// AccessD performs a data access at cycle now. Store handling is identical
// to loads for occupancy purposes (write-allocate); the pipeline decides
// what to do with the returned latency (loads wait for it, stores retire
// from the LSQ at commit regardless).
func (h *Hierarchy) AccessD(addr uint64, now uint64) AccessResult {
	var res AccessResult
	lat := 0

	if ok := h.TLB.Access(addr); !ok {
		res.TLBMiss = true
		lat += h.cfg.TLBPenalty
	}

	if h.cfg.PerfectDCache {
		res.Latency = lat + h.cfg.DCache.Latency
		res.DoneAt = now + uint64(res.Latency)
		return res
	}

	// Merge with an outstanding fill for the same line *before* the tag
	// lookup: Access allocates tags optimistically on a miss, so without
	// this check a second access to an in-flight line would "hit" and see
	// the data long before the fill actually arrives.
	lineAddr := h.L2.LineAddr(addr)
	h.l2mshrs = expire(h.l2mshrs, now)
	if fillAt, ok := findMSHR(h.l2mshrs, lineAddr); ok {
		h.L1D.Access(addr, now) // keep LRU and statistics honest
		res.L1Miss = true
		res.L2Miss = true // shares the memory access already in flight
		res.DoneAt = fillAt
		if res.DoneAt <= now {
			res.DoneAt = now + 1
		}
		res.Latency = int(res.DoneAt - now)
		return res
	}
	h.l1mshrs = expire(h.l1mshrs, now)
	if fillAt, ok := findMSHR(h.l1mshrs, lineAddr); ok {
		h.L1D.Access(addr, now)
		res.L1Miss = true
		res.DoneAt = fillAt
		if res.DoneAt <= now {
			res.DoneAt = now + 1
		}
		res.Latency = int(res.DoneAt - now)
		return res
	}

	l1lat, l1miss := h.L1D.Access(addr, now)
	lat += l1lat
	if !l1miss {
		res.Latency = lat
		res.DoneAt = now + uint64(res.Latency)
		return res
	}
	res.L1Miss = true

	l2lat, l2miss := h.L2.Access(addr, now)
	lat += l2lat
	if !l2miss {
		h.l1mshrs = append(h.l1mshrs, mshr{lineAddr, now + uint64(lat)})
		res.Latency = lat
		res.DoneAt = now + uint64(res.Latency)
		return res
	}

	res.L2Miss = true
	h.MemMisses++
	fillAt := now + uint64(lat+h.cfg.MemLatency)
	// Beyond the MSHR capacity, fills serialise: a new fill can only start
	// once the oldest outstanding one completes. This bounds the queue
	// growth to one memory latency (unlike tail-chaining, which diverges
	// under sustained miss floods).
	if len(h.l2mshrs) >= h.cfg.MSHREntries {
		if earliest := minFill(h.l2mshrs); earliest+uint64(h.cfg.MemLatency) > fillAt {
			fillAt = earliest + uint64(h.cfg.MemLatency)
		}
	}
	h.l2mshrs = append(h.l2mshrs, mshr{lineAddr, fillAt})
	res.DoneAt = fillAt
	res.Latency = int(fillAt - now)
	return res
}

// TouchI functionally touches the instruction path for addr: L1I tags and
// LRU update as a fetch would, falling through to L2 on a miss. No timing
// state (bank ports, MSHRs) and no statistics change, so a detailed window
// resuming after a fast-forwarded region sees warm contents but idle ports.
func (h *Hierarchy) TouchI(addr uint64) {
	if h.cfg.PerfectICache {
		return
	}
	if !h.L1I.Touch(addr) {
		h.L2.Touch(addr)
	}
}

// TouchD functionally touches the data path for addr: TLB, L1D and (on an
// L1D miss) L2, contents only. The counterpart of AccessD for fast-forward.
func (h *Hierarchy) TouchD(addr uint64) {
	h.TLB.Insert(addr)
	if h.cfg.PerfectDCache {
		return
	}
	if !h.L1D.Touch(addr) {
		h.L2.Touch(addr)
	}
}

// OutstandingMem returns the number of in-flight main-memory fills at cycle
// now — the instantaneous memory-level parallelism used for the paper's
// overlapping-miss statistic. Fills queued behind a full MSHR file are
// serialised, not overlapped, so the result is capped at the MSHR count.
func (h *Hierarchy) OutstandingMem(now uint64) int {
	h.l2mshrs = expire(h.l2mshrs, now)
	if len(h.l2mshrs) > h.cfg.MSHREntries {
		return h.cfg.MSHREntries
	}
	return len(h.l2mshrs)
}

// PrewarmData inserts every line of [base, base+n) into L2 (and into L1D
// when intoL1 is set). The synthetic measurement window stands for a slice
// of a long-running program, whose resident working set would long since be
// cached; without pre-warming, sparse compulsory misses over a large warm
// region masquerade as capacity misses for the whole run.
func (h *Hierarchy) PrewarmData(base uint64, n int, intoL1 bool) {
	step := uint64(h.cfg.L2.LineBytes)
	for a := base; a < base+uint64(n); a += step {
		h.L2.Insert(a)
		if intoL1 {
			h.L1D.Insert(a)
		}
	}
	for a := base; a < base+uint64(n); a += uint64(h.cfg.PageBytes) {
		h.TLB.Insert(a)
	}
}

// PrewarmCode inserts every line of [base, base+n) into L1I and L2.
func (h *Hierarchy) PrewarmCode(base uint64, n int) {
	step := uint64(h.cfg.L2.LineBytes)
	for a := base; a < base+uint64(n); a += step {
		h.L2.Insert(a)
		h.L1I.Insert(a)
	}
}

// ResetStats clears statistics on all levels (after warmup).
func (h *Hierarchy) ResetStats() {
	h.L1I.ResetStats()
	h.L1D.ResetStats()
	h.L2.ResetStats()
	h.MemMisses = 0
	h.TLB.ResetStats()
}

// Reset restores the whole memory system to its post-construction state
// without reallocating: every level invalidated, MSHR files drained,
// statistics zeroed. Callers re-prewarm afterwards, exactly as after
// NewHierarchy.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.TLB.Reset()
	h.drainMSHRs()
}

// drainMSHRs empties both MSHR files and the memory-fill counter.
func (h *Hierarchy) drainMSHRs() {
	h.l2mshrs = h.l2mshrs[:0]
	h.l1mshrs = h.l1mshrs[:0]
	h.MemMisses = 0
}

// Reinit rebinds the hierarchy to cfg, reusing every level's storage. It
// reports false when any level's geometry differs from cfg (the hierarchy is
// then in a partially-reset state and must be rebuilt); latencies, penalties
// and MSHR bounds may differ freely.
func (h *Hierarchy) Reinit(cfg config.Config) bool {
	if !h.L1I.Reinit(cfg.ICache) || !h.L1D.Reinit(cfg.DCache) || !h.L2.Reinit(cfg.L2) ||
		!h.TLB.Reinit(cfg.TLBEntries, cfg.PageBytes) {
		return false
	}
	h.cfg = cfg
	h.drainMSHRs()
	return true
}
