package cache

import (
	"testing"

	"dcra/internal/config"
)

func testHierarchy() *Hierarchy {
	cfg := config.Baseline()
	return NewHierarchy(cfg)
}

func TestDataAccessLevels(t *testing.T) {
	h := testHierarchy()
	addr := uint64(1 << 20)
	h.TLB.Access(addr) // pre-translate so latencies below are pure cache

	res := h.AccessD(addr, 100)
	if !res.L1Miss || !res.L2Miss {
		t.Fatalf("cold access should miss both levels: %+v", res)
	}
	if res.Latency < 300 {
		t.Fatalf("memory access latency %d < memory latency", res.Latency)
	}

	// After the fill time, the line hits L1.
	res2 := h.AccessD(addr, res.DoneAt+10)
	if res2.L1Miss {
		t.Fatalf("post-fill access should hit L1: %+v", res2)
	}
	if res2.Latency > 3 {
		t.Fatalf("L1 hit latency %d too high", res2.Latency)
	}
}

func TestMSHRMerging(t *testing.T) {
	h := testHierarchy()
	addr := uint64(2 << 20)
	h.TLB.Access(addr)
	first := h.AccessD(addr, 100)
	if !first.L2Miss {
		t.Fatal("expected memory miss")
	}
	// A second miss to the same line while in flight completes with the
	// original fill, not a second memory access.
	second := h.AccessD(addr+8, 150)
	if !second.L2Miss {
		t.Fatal("merged access should still classify as L2 miss")
	}
	if second.DoneAt != first.DoneAt {
		t.Fatalf("merged access DoneAt %d, want %d", second.DoneAt, first.DoneAt)
	}
	if h.MemMisses != 1 {
		t.Fatalf("memory fills = %d, want 1 (merged)", h.MemMisses)
	}
}

func TestOutstandingMem(t *testing.T) {
	h := testHierarchy()
	base := uint64(8 << 20)
	for i := uint64(0); i < 5; i++ {
		a := base + i*4096
		h.TLB.Access(a)
		h.AccessD(a, 100)
	}
	if got := h.OutstandingMem(150); got != 5 {
		t.Fatalf("outstanding = %d, want 5", got)
	}
	if got := h.OutstandingMem(100 + 400); got != 0 {
		t.Fatalf("outstanding after fills = %d, want 0", got)
	}
}

func TestOutstandingMemCappedAtMSHRs(t *testing.T) {
	cfg := config.Baseline()
	cfg.MSHREntries = 4
	h := NewHierarchy(cfg)
	base := uint64(16 << 20)
	for i := uint64(0); i < 10; i++ {
		a := base + i*4096
		h.TLB.Access(a)
		h.AccessD(a, 100)
	}
	if got := h.OutstandingMem(150); got != 4 {
		t.Fatalf("outstanding = %d, want MSHR cap 4", got)
	}
}

func TestMSHRSerialisationBounded(t *testing.T) {
	cfg := config.Baseline()
	cfg.MSHREntries = 2
	h := NewHierarchy(cfg)
	base := uint64(32 << 20)
	var last AccessResult
	for i := uint64(0); i < 6; i++ {
		a := base + i*4096
		h.TLB.Access(a)
		last = h.AccessD(a, 100)
	}
	// With serialisation bounded by one memory latency behind the earliest
	// fill, even a burst of misses completes within ~2 memory latencies.
	if last.DoneAt > 100+3*uint64(cfg.MemLatency) {
		t.Fatalf("fill scheduled too far out: DoneAt=%d", last.DoneAt)
	}
}

func TestTLBMissPenalty(t *testing.T) {
	h := testHierarchy()
	addr := uint64(64 << 20)
	res := h.AccessD(addr, 100)
	if !res.TLBMiss {
		t.Fatal("cold page should miss TLB")
	}
	res2 := h.AccessD(addr+64, 1000)
	if res2.TLBMiss {
		t.Fatal("same page should hit TLB")
	}
}

func TestPerfectDCache(t *testing.T) {
	cfg := config.Baseline()
	cfg.PerfectDCache = true
	h := NewHierarchy(cfg)
	a := uint64(128 << 20)
	h.TLB.Access(a)
	res := h.AccessD(a, 10)
	if res.L1Miss || res.L2Miss {
		t.Fatalf("perfect D-cache must not miss: %+v", res)
	}
	if res.Latency != cfg.DCache.Latency {
		t.Fatalf("perfect hit latency %d, want %d", res.Latency, cfg.DCache.Latency)
	}
}

func TestPerfectICache(t *testing.T) {
	cfg := config.Baseline()
	cfg.PerfectICache = true
	h := NewHierarchy(cfg)
	if lat, miss := h.AccessI(1<<30, 10); miss || lat != cfg.ICache.Latency {
		t.Fatalf("perfect I-cache returned lat=%d miss=%v", lat, miss)
	}
}

func TestInstructionMissGoesToL2(t *testing.T) {
	h := testHierarchy()
	addr := uint64(3 << 20)
	lat, miss := h.AccessI(addr, 10)
	if !miss {
		t.Fatal("cold I-access should miss")
	}
	if lat < h.cfg.MemLatency {
		t.Fatalf("cold I-miss latency %d should include memory", lat)
	}
	lat2, miss2 := h.AccessI(addr, 1000)
	if miss2 || lat2 != h.cfg.ICache.Latency {
		t.Fatalf("warmed I-access lat=%d miss=%v", lat2, miss2)
	}
}

func TestPrewarm(t *testing.T) {
	h := testHierarchy()
	h.PrewarmData(1<<22, 8<<10, true)
	h.PrewarmCode(1<<23, 4<<10)
	res := h.AccessD(1<<22, 10)
	if res.L1Miss {
		t.Fatal("prewarmed data line should hit L1D")
	}
	if _, miss := h.AccessI(1<<23, 10); miss {
		t.Fatal("prewarmed code line should hit L1I")
	}
	// Prewarm must not disturb bank scheduling at t=0.
	if res.Latency > h.cfg.DCache.Latency+1 {
		t.Fatalf("prewarm polluted bank state: latency %d", res.Latency)
	}
}

func TestResetStats(t *testing.T) {
	h := testHierarchy()
	h.AccessD(4<<20, 10)
	h.AccessI(5<<20, 10)
	h.ResetStats()
	if h.L1D.Accesses != 0 || h.L1I.Accesses != 0 || h.L2.Accesses != 0 || h.MemMisses != 0 {
		t.Fatal("ResetStats left counters behind")
	}
}

func TestHierarchyResetAndReinit(t *testing.T) {
	h := testHierarchy()
	addr := uint64(9 << 20)
	h.AccessD(addr, 10) // cold: allocates lines, a TLB entry and an MSHR
	h.AccessI(addr, 10)

	h.Reset()
	if h.L1D.Probe(addr) || h.L1I.Probe(addr) || h.L2.Probe(addr) {
		t.Fatal("Reset must invalidate every level")
	}
	if h.L1D.Accesses != 0 || h.MemMisses != 0 {
		t.Fatal("Reset must clear statistics")
	}
	if h.OutstandingMem(0) != 0 {
		t.Fatal("Reset must drain the MSHR files")
	}
	// A post-Reset access behaves exactly like a post-construction one.
	if res := h.AccessD(addr, 10); !res.L1Miss || !res.L2Miss || !res.TLBMiss {
		t.Fatalf("post-Reset access not cold: %+v", res)
	}

	// Reinit adopts latency-only changes and refuses geometry changes.
	cfg := h.cfg
	cfg.MemLatency = 123
	if !h.Reinit(cfg) {
		t.Fatal("Reinit must accept a same-geometry config")
	}
	if h.L1D.Probe(addr) || h.OutstandingMem(0) != 0 {
		t.Fatal("Reinit must invalidate and drain")
	}
	if res := h.AccessD(addr, 10); !res.L2Miss || res.Latency < 123 {
		t.Fatalf("Reinit did not adopt the new memory latency: %+v", res)
	}
	bad := cfg
	bad.L2.Assoc *= 2
	if h.Reinit(bad) {
		t.Fatal("Reinit must refuse a geometry change")
	}
}
