package cache

// TLB is a fully-associative translation lookaside buffer with LRU
// replacement. The simulator runs on synthetic addresses, so "translation"
// is only a presence check: a miss costs the configured penalty.
type TLB struct {
	entries  []line
	pageBits uint
	stamp    uint64

	Accesses uint64
	Misses   uint64
}

// NewTLB builds a TLB with n entries over pages of pageBytes.
func NewTLB(n, pageBytes int) *TLB {
	bits := uint(0)
	for l := pageBytes; l > 1; l >>= 1 {
		bits++
	}
	return &TLB{entries: make([]line, n), pageBits: bits}
}

// Access looks up the page of addr, allocating on miss. It reports a hit.
func (t *TLB) Access(addr uint64) bool {
	t.Accesses++
	t.stamp++
	page := addr >> t.pageBits
	victim := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.tag == page {
			e.lru = t.stamp
			return true
		}
		if !e.valid {
			victim = i
		} else if t.entries[victim].valid && e.lru < t.entries[victim].lru {
			victim = i
		}
	}
	t.Misses++
	t.entries[victim] = line{tag: page, valid: true, lru: t.stamp}
	return false
}

// Insert pre-loads the page of addr without counting statistics (used by
// hierarchy pre-warming).
func (t *TLB) Insert(addr uint64) {
	t.stamp++
	page := addr >> t.pageBits
	victim := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.tag == page {
			e.lru = t.stamp
			return
		}
		if !e.valid {
			victim = i
		} else if t.entries[victim].valid && e.lru < t.entries[victim].lru {
			victim = i
		}
	}
	t.entries[victim] = line{tag: page, valid: true, lru: t.stamp}
}

// MissRate returns misses per access in percent.
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return 100 * float64(t.Misses) / float64(t.Accesses)
}

// ResetStats clears counters but keeps contents.
func (t *TLB) ResetStats() { t.Accesses, t.Misses = 0, 0 }
