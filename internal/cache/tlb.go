package cache

// TLB is a fully-associative translation lookaside buffer with LRU
// replacement. The simulator runs on synthetic addresses, so "translation"
// is only a presence check: a miss costs the configured penalty.
//
// Lookups are O(1): a page->slot index makes the hit path a single map
// probe plus an LRU stamp update. The O(n) victim search runs only on a
// miss with a full TLB, and misses are rare by construction (the TLB covers
// the resident working set after pre-warming). Replacement order is
// identical to the previous linear-scan implementation: invalid slots fill
// top-down first, then the minimum-stamp (LRU) entry is evicted, ties
// resolved toward the lowest slot index.
type TLB struct {
	entries  []line
	index    map[uint64]int32 // page -> slot of a valid entry
	valid    int              // number of valid entries; slots fill top-down
	lastSlot int32            // slot of the last Insert hit, -1 if none
	pageBits uint
	stamp    uint64

	Accesses uint64
	Misses   uint64
}

// NewTLB builds a TLB with n entries over pages of pageBytes.
func NewTLB(n, pageBytes int) *TLB {
	bits := uint(0)
	for l := pageBytes; l > 1; l >>= 1 {
		bits++
	}
	return &TLB{
		entries:  make([]line, n),
		index:    make(map[uint64]int32, n),
		lastSlot: -1,
		pageBits: bits,
	}
}

// Access looks up the page of addr, allocating on miss. It reports a hit.
func (t *TLB) Access(addr uint64) bool {
	t.Accesses++
	t.stamp++
	page := addr >> t.pageBits
	if i, ok := t.index[page]; ok {
		t.entries[i].lru = t.stamp
		return true
	}
	t.Misses++
	t.insertPage(page)
	return false
}

// Insert pre-loads the page of addr without counting statistics (used by
// hierarchy pre-warming and fast-forward warming). The last inserted page is
// short-circuited past the map probe — warming walks are heavily
// page-sequential — with identical contents and LRU order.
func (t *TLB) Insert(addr uint64) {
	t.stamp++
	page := addr >> t.pageBits
	if s := t.lastSlot; s >= 0 && t.entries[s].valid && t.entries[s].tag == page {
		t.entries[s].lru = t.stamp
		return
	}
	if i, ok := t.index[page]; ok {
		t.entries[i].lru = t.stamp
		t.lastSlot = i
		return
	}
	t.insertPage(page)
	t.lastSlot = t.index[page]
}

// insertPage places page into a free slot (top-down fill) or evicts the LRU
// entry.
func (t *TLB) insertPage(page uint64) {
	var victim int32
	if t.valid < len(t.entries) {
		victim = int32(len(t.entries) - 1 - t.valid)
		t.valid++
	} else {
		for i := range t.entries {
			if t.entries[i].lru < t.entries[victim].lru {
				victim = int32(i)
			}
		}
		delete(t.index, t.entries[victim].tag)
	}
	t.entries[victim] = line{tag: page, valid: true, lru: t.stamp}
	t.index[page] = victim
}

// MissRate returns misses per access in percent.
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return 100 * float64(t.Misses) / float64(t.Accesses)
}

// ResetStats clears counters but keeps contents.
func (t *TLB) ResetStats() { t.Accesses, t.Misses = 0, 0 }

// Reset restores the TLB to its post-construction state without
// reallocating: all entries invalid, the page index empty, stamps and
// statistics zeroed.
func (t *TLB) Reset() {
	clear(t.entries)
	clear(t.index)
	t.valid = 0
	t.lastSlot = -1
	t.stamp = 0
	t.ResetStats()
}

// Reinit rebinds the TLB to a new (entries, page size) pair, reusing its
// storage. It reports false — leaving the TLB untouched — on a geometry
// mismatch.
func (t *TLB) Reinit(n, pageBytes int) bool {
	bits := uint(0)
	for l := pageBytes; l > 1; l >>= 1 {
		bits++
	}
	if len(t.entries) != n || t.pageBits != bits {
		return false
	}
	t.Reset()
	return true
}
