// Package cache implements the simulated memory hierarchy: set-associative
// caches with LRU replacement and banking, MSHRs that merge and bound
// outstanding misses, a TLB, and a fixed-latency main memory.
//
// The model is latency-oriented: an access performed at cycle `now` returns
// the cycle at which the data is available plus the miss classification.
// State (tags, LRU, MSHRs) updates immediately, which is the standard
// trace-driven simplification — it keeps the hierarchy deterministic and
// independent of the pipeline's internal scheduling.
package cache

import (
	"fmt"

	"dcra/internal/config"
)

// line is one cache line's bookkeeping.
type line struct {
	tag   uint64
	valid bool
	lru   uint64 // last-touch stamp; larger = more recent
}

// Cache is a single set-associative, banked cache level.
type Cache struct {
	cfg      config.CacheConfig
	sets     []line // sets*assoc, laid out set-major
	assoc    int
	setMask  uint64
	lineBits uint
	stamp    uint64

	// bankBusy[b] is the next cycle at which bank b can accept an access.
	bankBusy []uint64
	bankMask uint64

	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache level from its configuration.
func NewCache(cfg config.CacheConfig) *Cache {
	sets := cfg.Sets()
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
	banks := cfg.Banks
	if banks&(banks-1) != 0 {
		panic(fmt.Sprintf("cache: bank count %d not a power of two", banks))
	}
	c := &Cache{
		cfg:      cfg,
		sets:     make([]line, sets*cfg.Assoc),
		assoc:    cfg.Assoc,
		setMask:  uint64(sets - 1),
		bankBusy: make([]uint64, banks),
		bankMask: uint64(banks - 1),
	}
	for bits, l := uint(0), cfg.LineBytes; l > 1; l >>= 1 {
		bits++
		c.lineBits = bits
	}
	return c
}

// LineAddr returns the line-aligned address for addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineBits }

func (c *Cache) set(lineAddr uint64) []line {
	s := lineAddr & c.setMask
	return c.sets[s*uint64(c.assoc) : (s+1)*uint64(c.assoc)]
}

// Probe reports whether the line containing addr is present, without
// changing any state. Used by tests and by the miss predictor experiments.
func (c *Cache) Probe(addr uint64) bool {
	la := c.LineAddr(addr)
	for i := range c.set(la) {
		w := &c.set(la)[i]
		if w.valid && w.tag == la {
			return true
		}
	}
	return false
}

// Access looks up addr at cycle `now`, allocating on miss (write-allocate
// for stores). It returns the bank-adjusted hit latency and whether the
// access missed. Miss *service* latency is the caller's concern (the
// Hierarchy composes levels and MSHRs).
func (c *Cache) Access(addr uint64, now uint64) (lat int, miss bool) {
	c.Accesses++
	c.stamp++
	la := c.LineAddr(addr)
	set := c.set(la)

	lat = c.cfg.Latency + c.bankDelay(la, now)

	for i := range set {
		if set[i].valid && set[i].tag == la {
			set[i].lru = c.stamp
			return lat, false
		}
	}
	c.Misses++
	// Allocate: prefer an invalid way, otherwise evict the LRU one.
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if victim == -1 || set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = line{tag: la, valid: true, lru: c.stamp}
	return lat, true
}

// Touch performs a functional access: tags and LRU update exactly as Access
// would update them (same victim selection: first invalid way, else LRU),
// but no bank occupancy and no statistics. It reports a hit. Fast-forward
// uses it to keep long-lived cache contents warm across skipped regions
// without perturbing the timing state the next detailed window resumes from.
func (c *Cache) Touch(addr uint64) bool {
	c.stamp++
	la := c.LineAddr(addr)
	set := c.set(la)
	for i := range set {
		if set[i].valid && set[i].tag == la {
			set[i].lru = c.stamp
			return true
		}
	}
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if victim == -1 || set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = line{tag: la, valid: true, lru: c.stamp}
	return false
}

// Insert allocates the line containing addr without modelling access
// latency, bank occupancy or statistics. Used only for pre-warming resident
// working sets before simulation starts.
func (c *Cache) Insert(addr uint64) {
	c.stamp++
	la := c.LineAddr(addr)
	set := c.set(la)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == la {
			set[i].lru = c.stamp
			return
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = line{tag: la, valid: true, lru: c.stamp}
}

// bankDelay models single-ported banks: an access to a busy bank waits.
func (c *Cache) bankDelay(lineAddr, now uint64) int {
	b := lineAddr & c.bankMask
	delay := 0
	if c.bankBusy[b] > now {
		delay = int(c.bankBusy[b] - now)
	}
	c.bankBusy[b] = now + uint64(delay) + 1
	return delay
}

// MissRate returns misses per access in percent.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return 100 * float64(c.Misses) / float64(c.Accesses)
}

// ResetStats clears statistics but keeps cache contents (used after warmup).
func (c *Cache) ResetStats() { c.Accesses, c.Misses = 0, 0 }

// Reset restores the cache to its post-construction state without
// reallocating: every line invalidated, bank ports idle, LRU stamps and
// statistics zeroed. A reset cache behaves bit-identically to a freshly
// built one.
func (c *Cache) Reset() {
	clear(c.sets)
	clear(c.bankBusy)
	c.stamp = 0
	c.ResetStats()
}

// Reinit rebinds the cache to cfg, reusing its storage. It reports false —
// leaving the cache untouched — when cfg's geometry does not match the
// backing arrays; only latency may differ between the old and new config.
func (c *Cache) Reinit(cfg config.CacheConfig) bool {
	if cfg.Geometry() != c.cfg.Geometry() {
		return false
	}
	c.cfg = cfg
	c.Reset()
	return true
}
