package cache

import (
	"testing"
	"testing/quick"

	"dcra/internal/config"
)

func smallCache() *Cache {
	return NewCache(config.CacheConfig{
		SizeBytes: 4 << 10, Assoc: 2, LineBytes: 64, Banks: 1, Latency: 1,
	}) // 32 sets x 2 ways
}

func TestMissThenHit(t *testing.T) {
	c := smallCache()
	if _, miss := c.Access(0x1000, 10); !miss {
		t.Fatal("cold access should miss")
	}
	if _, miss := c.Access(0x1000, 20); miss {
		t.Fatal("second access should hit")
	}
	if _, miss := c.Access(0x1030, 30); miss {
		t.Fatal("same-line access should hit")
	}
	if c.Accesses != 3 || c.Misses != 1 {
		t.Fatalf("stats accesses=%d misses=%d", c.Accesses, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache() // 32 sets: addresses 64*32 apart share a set
	setStride := uint64(64 * 32)
	a, b, d := uint64(0), setStride, 2*setStride
	c.Access(a, 1)
	c.Access(b, 2)
	c.Access(a, 3) // refresh a: b becomes LRU
	c.Access(d, 4) // evicts b
	if !c.Probe(a) {
		t.Fatal("a should survive (recently used)")
	}
	if c.Probe(b) {
		t.Fatal("b should be evicted (LRU)")
	}
	if !c.Probe(d) {
		t.Fatal("d should be present")
	}
}

func TestBankConflictDelay(t *testing.T) {
	c := NewCache(config.CacheConfig{
		SizeBytes: 4 << 10, Assoc: 2, LineBytes: 64, Banks: 2, Latency: 1,
	})
	// Two accesses to the same bank in the same cycle: the second waits.
	lat1, _ := c.Access(0, 100)
	lat2, _ := c.Access(2*64, 100) // lines 0 and 2 -> same bank of 2
	if lat1 != 1 {
		t.Fatalf("first access latency %d, want 1", lat1)
	}
	if lat2 != 2 {
		t.Fatalf("conflicting access latency %d, want 2", lat2)
	}
	// Different bank: no delay.
	lat3, _ := c.Access(1*64, 100)
	if lat3 != 1 {
		t.Fatalf("other-bank access latency %d, want 1", lat3)
	}
}

func TestInsertBypassesStatsAndBanks(t *testing.T) {
	c := smallCache()
	c.Insert(0x40)
	if c.Accesses != 0 || c.Misses != 0 {
		t.Fatal("Insert must not count statistics")
	}
	if lat, miss := c.Access(0x40, 1); miss || lat != 1 {
		t.Fatalf("inserted line should hit with base latency, got lat=%d miss=%v", lat, miss)
	}
}

func TestCacheResetStats(t *testing.T) {
	c := smallCache()
	c.Access(0, 1)
	c.ResetStats()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Fatal("ResetStats must clear statistics")
	}
	if !c.Probe(0) {
		t.Fatal("ResetStats must keep contents")
	}
}

func TestResetInvalidates(t *testing.T) {
	c := smallCache()
	c.Access(0, 1)
	c.Access(0x4000, 5) // occupy a bank port well into the future
	c.Reset()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Fatal("Reset must clear statistics")
	}
	if c.Probe(0) || c.Probe(0x4000) {
		t.Fatal("Reset must invalidate every line")
	}
	// Bank ports must be idle again: a fresh access at cycle 1 sees no delay.
	if lat, _ := c.Access(0, 1); lat != c.cfg.Latency {
		t.Fatalf("bank port still busy after Reset: lat=%d", lat)
	}
}

func TestCacheReinit(t *testing.T) {
	c := smallCache()
	c.Access(0, 1)
	cfg := c.cfg
	cfg.Latency = c.cfg.Latency + 3 // latency may change without rebuilding
	if !c.Reinit(cfg) {
		t.Fatal("Reinit must accept a same-geometry config")
	}
	if c.Probe(0) {
		t.Fatal("Reinit must invalidate contents")
	}
	if lat, _ := c.Access(0, 1); lat != cfg.Latency {
		t.Fatalf("Reinit did not adopt the new latency: lat=%d want %d", lat, cfg.Latency)
	}
	bad := cfg
	bad.SizeBytes *= 2
	if c.Reinit(bad) {
		t.Fatal("Reinit must refuse a geometry change")
	}
}

func TestMissRate(t *testing.T) {
	c := smallCache()
	if c.MissRate() != 0 {
		t.Fatal("empty cache miss rate should be 0")
	}
	c.Access(0, 1)
	c.Access(0, 2)
	if got := c.MissRate(); got != 50 {
		t.Fatalf("miss rate %v, want 50", got)
	}
}

// Property: a set never holds duplicate valid tags.
func TestNoDuplicateTagsProperty(t *testing.T) {
	c := smallCache()
	err := quick.Check(func(addrs []uint16) bool {
		for i, a := range addrs {
			c.Access(uint64(a)*8, uint64(i))
		}
		// Scan all sets for duplicates.
		sets := c.cfg.Sets()
		for s := 0; s < sets; s++ {
			ways := c.sets[s*c.assoc : (s+1)*c.assoc]
			seen := map[uint64]bool{}
			for _, w := range ways {
				if !w.valid {
					continue
				}
				if seen[w.tag] {
					return false
				}
				seen[w.tag] = true
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(4, 8<<10)
	if tlb.Access(0) {
		t.Fatal("cold TLB access should miss")
	}
	if !tlb.Access(100) {
		t.Fatal("same-page access should hit")
	}
	// Fill 4 entries, then a 5th evicts the LRU (page 0).
	for p := uint64(1); p <= 4; p++ {
		tlb.Access(p * 8192)
	}
	if tlb.Access(0) {
		t.Fatal("page 0 should have been evicted")
	}
	if tlb.MissRate() <= 0 {
		t.Fatal("miss rate should be positive")
	}
	tlb.ResetStats()
	if tlb.Accesses != 0 {
		t.Fatal("ResetStats must clear counters")
	}
}
