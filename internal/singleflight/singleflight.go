// Package singleflight provides a generic memoising single-flight map: the
// first caller for a key computes the value while concurrent callers for the
// same key block and share the result. It is the one synchronisation pattern
// behind the experiment suite's cell memo, the simulator's baseline cache and
// the campaign store's in-flight cells.
package singleflight

import (
	"fmt"
	"sync"
)

// call is one in-flight or completed computation.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Memo is a memoising single-flight map from K to V. The zero value is ready
// to use. Values are computed at most once per key and retained; every caller
// for a key observes the identical value and error.
type Memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*call[V]
}

// Do returns the memoised value for key, computing it with fn if this is the
// first request. Concurrent callers for the same key block until the first
// call completes and then share its result.
//
// done must close even if fn panics: concurrent waiters would otherwise block
// forever. The panic is published as the key's error first, so if some outer
// harness recovers the panic the memo holds a failure, not a zero value with
// a nil error.
func (g *Memo[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[K]*call[V])
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &call[V]{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	defer func() {
		if p := recover(); p != nil {
			c.err = fmt.Errorf("singleflight: computing %v panicked: %v", key, p)
			close(c.done)
			panic(p)
		}
		close(c.done)
	}()
	c.val, c.err = fn()
	return c.val, c.err
}

// Len returns the number of memoised (or in-flight) keys.
func (g *Memo[K, V]) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}
