package singleflight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoMemoises(t *testing.T) {
	var g Memo[string, int]
	var calls atomic.Int64
	for i := 0; i < 3; i++ {
		v, err := g.Do("k", func() (int, error) {
			calls.Add(1)
			return 42, nil
		})
		if err != nil || v != 42 {
			t.Fatalf("Do = %d, %v", v, err)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn called %d times, want 1", n)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

func TestDoSharesErrors(t *testing.T) {
	var g Memo[int, string]
	boom := errors.New("boom")
	if _, err := g.Do(1, func() (string, error) { return "", boom }); !errors.Is(err, boom) {
		t.Fatalf("first call err = %v", err)
	}
	// The error is memoised like a value: no retry.
	if _, err := g.Do(1, func() (string, error) { return "ok", nil }); !errors.Is(err, boom) {
		t.Fatalf("second call err = %v, want memoised %v", err, boom)
	}
}

func TestDoSingleFlight(t *testing.T) {
	var g Memo[string, int]
	var calls atomic.Int64
	release := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _ := g.Do("k", func() (int, error) {
				calls.Add(1)
				<-release
				return 7, nil
			})
			results[i] = v
		}(i)
	}
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn called %d times under contention, want 1", n)
	}
	for i, v := range results {
		if v != 7 {
			t.Fatalf("waiter %d saw %d, want 7", i, v)
		}
	}
}

func TestDoPanicPublishesError(t *testing.T) {
	var g Memo[string, int]
	func() {
		defer func() { recover() }()
		g.Do("k", func() (int, error) { panic("kaboom") })
		t.Fatal("Do did not propagate the panic")
	}()
	// A waiter arriving after the panic sees the published error, not a
	// zero value with nil error, and does not block.
	if _, err := g.Do("k", func() (int, error) { return 1, nil }); err == nil {
		t.Fatal("post-panic Do returned nil error")
	}
}
