package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteCSVs renders the static experiments (no simulation needed) and
// checks the CSV artifacts land where `campaign render -csv` promises them.
func TestWriteCSVs(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "csv")
	s := NewQuickSuite()
	var all []RenderedTable
	for _, key := range []string{"tab1", "tab4"} {
		spec, err := SpecByKey(key)
		if err != nil {
			t.Fatal(err)
		}
		tables, err := spec.Render(s)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, tables...)
	}
	paths, err := WriteCSVs(dir, all)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(all) {
		t.Fatalf("wrote %d files for %d tables", len(paths), len(all))
	}
	for i, p := range paths {
		if want := filepath.Join(dir, all[i].Name+".csv"); p != want {
			t.Fatalf("path %q, want %q", p, want)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
		// Comment title, then a header row, then one line per table row.
		if !strings.HasPrefix(lines[0], "# ") {
			t.Fatalf("%s: missing title comment: %q", p, lines[0])
		}
		header := lines[1]
		if got, want := strings.Count(header, ",")+1, len(all[i].Table.Columns); got != want {
			t.Fatalf("%s: header has %d columns, table has %d", p, got, want)
		}
		body := 0
		for _, l := range lines[2:] {
			if !strings.HasPrefix(l, "#") {
				body++
			}
		}
		if body != len(all[i].Table.Rows) {
			t.Fatalf("%s: %d data lines for %d rows", p, body, len(all[i].Table.Rows))
		}
	}
}
