package experiments

import (
	"dcra/internal/campaign"
	"dcra/internal/config"
	"dcra/internal/metrics"
	"dcra/internal/report"
	"dcra/internal/workload"
)

// Table5Row gives, for one 2-thread workload type, the percentage of cycles
// the thread pair spends with both slow, phases split, or both fast.
type Table5Row struct {
	Kind                      workload.Kind
	SlowSlow, Mixed, FastFast float64
	PaperSS, PaperMx, PaperFF float64
}

// paperTable5 holds the paper's Table 5 percentages [SS, mixed, FF].
var paperTable5 = map[workload.Kind][3]float64{
	workload.ILP: {7.8, 41.4, 50.8},
	workload.MIX: {25.6, 63.2, 11.2},
	workload.MEM: {85.0, 14.7, 0.3},
}

// Table5Sweep declares the table's cells: every 2-thread workload under
// DCRA on the baseline configuration.
func Table5Sweep() campaign.Sweep {
	cfg := config.Baseline()
	s := campaign.Sweep{Name: "tab5"}
	for _, kind := range workload.Kinds {
		s.Cells = append(s.Cells, kindCells(cfg, 2, kind, PolDCRA)...)
	}
	return s
}

// Table5 reproduces the paper's Table 5: the distribution of DCRA phase
// pairs for the 2-thread workloads, averaged over the four groups of each
// type. Classification is the DCRA signal itself (pending L1D misses),
// sampled every cycle by the pipeline.
func Table5(s *Suite) ([]Table5Row, error) {
	cfg := config.Baseline()
	if err := s.Prefetch(Table5Sweep().Cells); err != nil {
		return nil, err
	}
	rows := make([]Table5Row, 0, len(workload.Kinds))
	for _, kind := range workload.Kinds {
		var ss, mx, ff []float64
		for _, w := range workload.Groups(2, kind) {
			r, err := s.run(cfg, w, PolDCRA)
			if err != nil {
				return nil, err
			}
			c := r.Stats.PhasePairCycles
			total := float64(c[0] + c[1] + c[2])
			if total == 0 {
				continue
			}
			ff = append(ff, 100*float64(c[0])/total)
			mx = append(mx, 100*float64(c[1])/total)
			ss = append(ss, 100*float64(c[2])/total)
		}
		p := paperTable5[kind]
		rows = append(rows, Table5Row{
			Kind:     kind,
			SlowSlow: metrics.Mean(ss), Mixed: metrics.Mean(mx), FastFast: metrics.Mean(ff),
			PaperSS: p[0], PaperMx: p[1], PaperFF: p[2],
		})
	}
	return rows, nil
}

// Table5Report renders the phase distribution table.
func Table5Report(rows []Table5Row) *report.Table {
	t := report.NewTable("Table 5: phase distribution of 2-thread workloads (% of cycles)",
		"type", "slow-slow", "mixed", "fast-fast", "paper SS", "paper mixed", "paper FF")
	for _, r := range rows {
		t.AddRow(string(r.Kind), r.SlowSlow, r.Mixed, r.FastFast, r.PaperSS, r.PaperMx, r.PaperFF)
	}
	t.AddNote("reproduction target: MIX workloads spend the most time in split phases; MEM mostly slow-slow; ILP mostly fast-fast")
	return t
}
