package experiments

import (
	"testing"

	"dcra/internal/campaign"
	"dcra/internal/config"
	"dcra/internal/sim"
	"dcra/internal/workload"
)

// determinismSuite builds a suite with tiny windows and a fixed worker
// count for the serial-vs-parallel comparison.
func determinismSuite(workers int) *Suite {
	s := NewQuickSuite()
	s.Runner.Warmup, s.Runner.Measure = 5_000, 20_000
	s.Engine = sim.NewEngine(workers)
	return s
}

// determinismCells is a representative slice of the evaluation grid: every
// kind, two thread counts, two groups, and policies covering the plain,
// squashing and partitioning families.
func determinismCells() []campaign.Cell {
	cfg := config.Baseline()
	var cells []campaign.Cell
	for _, n := range []int{2, 4} {
		for _, kind := range workload.Kinds {
			for g := 1; g <= 2; g++ {
				w, err := workload.Get(n, kind, g)
				if err != nil {
					panic(err)
				}
				for _, pn := range []PolicyName{PolICount, PolFlushPP, PolDCRA} {
					cells = append(cells, cellOf(cfg, w, pn))
				}
			}
		}
	}
	return cells
}

// TestSerialParallelDeterminism runs the same cells on a 1-worker engine
// (a plain serial loop) and on a parallel engine, and requires bit-identical
// metrics for every cell. Run under -race this also exercises the memo,
// engine and baseline-cache synchronisation.
func TestSerialParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	cells := determinismCells()

	serial := determinismSuite(1)
	parallel := determinismSuite(8)
	if err := serial.Prefetch(cells); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Prefetch(cells); err != nil {
		t.Fatal(err)
	}

	for _, c := range cells {
		rs, err := serial.RunCell(c)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := parallel.RunCell(c)
		if err != nil {
			t.Fatal(err)
		}
		id := c.WID + "/" + c.Pol
		if rs.Throughput != rp.Throughput {
			t.Errorf("%s: throughput %v (serial) != %v (parallel)", id, rs.Throughput, rp.Throughput)
		}
		if rs.Hmean != rp.Hmean {
			t.Errorf("%s: hmean %v (serial) != %v (parallel)", id, rs.Hmean, rp.Hmean)
		}
		if rs.WSpeedup != rp.WSpeedup {
			t.Errorf("%s: weighted speedup %v != %v", id, rs.WSpeedup, rp.WSpeedup)
		}
		if len(rs.IPCs) != len(rp.IPCs) {
			t.Fatalf("%s: IPC count %d != %d", id, len(rs.IPCs), len(rp.IPCs))
		}
		for i := range rs.IPCs {
			if rs.IPCs[i] != rp.IPCs[i] {
				t.Errorf("%s: thread %d IPC %v != %v", id, i, rs.IPCs[i], rp.IPCs[i])
			}
		}
		if rs.Stats.Cycles != rp.Stats.Cycles {
			t.Errorf("%s: cycles %d != %d", id, rs.Stats.Cycles, rp.Stats.Cycles)
		}
		for i := range rs.Stats.Threads {
			if rs.Stats.Threads[i] != rp.Stats.Threads[i] {
				t.Errorf("%s: thread %d stats differ between serial and parallel", id, i)
			}
		}
	}
}

// TestBaselineDeterminism checks that single-thread baselines computed
// under concurrent demand match a serial computation exactly.
func TestBaselineDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	cfg := config.Baseline()
	names := []string{"gzip", "mcf", "art", "twolf", "swim", "gcc"}

	serial := determinismSuite(1)
	parallel := determinismSuite(8)
	got := make([]float64, len(names))
	parallel.engine().Run(len(names), func(i int) {
		v, err := parallel.Runner.SingleIPC(cfg, names[i])
		if err != nil {
			t.Error(err)
			return
		}
		got[i] = v
	})
	for i, name := range names {
		want, err := serial.Runner.SingleIPC(cfg, name)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Errorf("%s: baseline IPC %v (parallel) != %v (serial)", name, got[i], want)
		}
	}
}
