package experiments

import (
	"fmt"

	"dcra/internal/campaign"
	"dcra/internal/config"
	"dcra/internal/metrics"
	"dcra/internal/report"
	"dcra/internal/workload"
)

// Figure4Cell is DCRA's improvement over SRA for one workload type.
type Figure4Cell struct {
	Threads int
	Kind    workload.Kind

	ThroughputImprovement float64 // percent
	HmeanImprovement      float64 // percent
}

// Figure4Result holds the 9 workload-type cells plus the averages.
type Figure4Result struct {
	Cells         []Figure4Cell
	AvgThroughput float64
	AvgHmean      float64
}

// Figure4Sweep declares the figure's cells: every workload type under DCRA
// and SRA on the baseline configuration.
func Figure4Sweep() campaign.Sweep {
	cfg := config.Baseline()
	s := campaign.Sweep{Name: "fig4"}
	for _, n := range threadCounts {
		for _, kind := range workload.Kinds {
			s.Cells = append(s.Cells, kindCells(cfg, n, kind, PolDCRA, PolSRA)...)
		}
	}
	return s
}

// Figure4 reproduces the paper's Figure 4: throughput and Hmean improvement
// of DCRA over static resource allocation (SRA) per workload type. Paper
// result: DCRA wins everywhere, ~7% throughput and ~8% Hmean on average,
// with the largest gains on MIX workloads.
func Figure4(s *Suite) (Figure4Result, error) {
	cfg := config.Baseline()
	if err := s.Prefetch(Figure4Sweep().Cells); err != nil {
		return Figure4Result{}, err
	}
	var res Figure4Result
	var tps, hms []float64
	for _, n := range threadCounts {
		for _, kind := range workload.Kinds {
			dTP, dHM, err := s.kindAverages(cfg, n, kind, PolDCRA)
			if err != nil {
				return res, err
			}
			sTP, sHM, err := s.kindAverages(cfg, n, kind, PolSRA)
			if err != nil {
				return res, err
			}
			cell := Figure4Cell{
				Threads:               n,
				Kind:                  kind,
				ThroughputImprovement: metrics.Improvement(dTP, sTP),
				HmeanImprovement:      metrics.Improvement(dHM, sHM),
			}
			res.Cells = append(res.Cells, cell)
			tps = append(tps, cell.ThroughputImprovement)
			hms = append(hms, cell.HmeanImprovement)
		}
	}
	res.AvgThroughput = metrics.Mean(tps)
	res.AvgHmean = metrics.Mean(hms)
	return res, nil
}

// Report renders the figure as a table.
func (f Figure4Result) Report() *report.Table {
	t := report.NewTable("Figure 4: DCRA improvement over SRA (%)",
		"workload", "throughput %", "hmean %")
	for _, c := range f.Cells {
		t.AddRow(fmt.Sprintf("%s%d", c.Kind, c.Threads),
			c.ThroughputImprovement, c.HmeanImprovement)
	}
	t.AddRow("avg", f.AvgThroughput, f.AvgHmean)
	t.AddNote("paper: +7%% throughput, +8%% hmean on average; MIX workloads benefit most")
	return t
}
