package experiments

import (
	"path/filepath"
	"strings"
	"testing"

	"dcra/internal/campaign"
)

// sweepSuite builds a suite with very small windows: the sweep tests assert
// enumeration identities and bit-identical recombination, not metric
// quality, so the cells only need to run, not converge.
func sweepSuite() *Suite {
	s := NewQuickSuite()
	s.Runner.Warmup, s.Runner.Measure = 1_000, 4_000
	return s
}

// TestSweepRenderParity: for every experiment, the cells demanded by the
// render path must be exactly the declared sweep's cells — no silent serial
// fallback (a rendered cell missing from the sweep would be computed
// on-demand and escape sharding/prefetch), and no dead sweep points (a
// declared cell no render consumes would burn shard time for nothing).
func TestSweepRenderParity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Key, func(t *testing.T) {
			s := sweepSuite()
			if _, err := spec.Render(s); err != nil {
				t.Fatal(err)
			}
			assertCellParity(t, spec.Sweep(), s)
		})
	}
}

// TestSweepRenderParitySubset: Figure 2 and Table 3 accept benchmark
// subsets; their parameterised sweeps must stay in lockstep with the
// parameterised render.
func TestSweepRenderParitySubset(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	benches := []string{"gzip", "swim"}
	s := sweepSuite()
	if _, err := Figure2(s, benches); err != nil {
		t.Fatal(err)
	}
	assertCellParity(t, Figure2Sweep(benches), s)

	s = sweepSuite()
	if _, err := Table3(s, benches); err != nil {
		t.Fatal(err)
	}
	assertCellParity(t, Table3Sweep(benches), s)
}

func assertCellParity(t *testing.T, sweep campaign.Sweep, s *Suite) {
	t.Helper()
	declared := sweep.CellSet()
	requested := s.RequestedCells()
	for c := range requested {
		if _, ok := declared[c]; !ok {
			t.Errorf("render demanded %s which the sweep does not declare (serial fallback)", c)
		}
	}
	for c := range declared {
		if _, ok := requested[c]; !ok {
			t.Errorf("sweep declares %s which no render consumed", c)
		}
	}
	if t.Failed() {
		t.Logf("sweep %s: %d declared, %d requested", sweep.Name, len(declared), len(requested))
	}
}

// TestShardMergeMatchesUnsharded proves the campaign contract end to end:
// splitting a figure's sweep into shards, running each shard in its own
// suite (as separate hosts would), merging the shard files into a store and
// rendering from it is bit-identical to a single-process run — and the
// store-backed render resimulates nothing.
func TestShardMergeMatchesUnsharded(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	spec, err := SpecByKey("tab5")
	if err != nil {
		t.Fatal(err)
	}
	sweep := spec.Sweep()

	// Single-process reference run.
	ref := sweepSuite()
	refTables, err := spec.Render(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Shard runs: independent suites, nothing shared but the enumeration.
	const shards = 3
	dir := t.TempDir()
	var files []string
	for i := 0; i < shards; i++ {
		part, err := sweep.Shard(i, shards)
		if err != nil {
			t.Fatal(err)
		}
		s := sweepSuite()
		if err := s.Prefetch(part); err != nil {
			t.Fatal(err)
		}
		sf := campaign.ShardFile{
			Campaign: spec.Key, SweepHash: sweep.Hash(),
			Shards: shards, Shard: i, Params: s.StoreParams(),
		}
		for _, c := range part {
			r, err := s.RunCell(c)
			if err != nil {
				t.Fatal(err)
			}
			sf.Cells = append(sf.Cells, campaign.CellResult{Key: c.Key(), Cell: c, Result: r})
		}
		path := filepath.Join(dir, spec.Key+"-"+string(rune('0'+i))+".json")
		if err := campaign.WriteShard(path, sf); err != nil {
			t.Fatal(err)
		}
		files = append(files, path)
	}

	// Merge and render from the store with a fresh suite.
	merged := sweepSuite()
	store, err := campaign.Open(filepath.Join(dir, "store"), merged.StoreParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, skipped, err := campaign.Merge(store, files); err != nil || len(skipped) != 0 {
		t.Fatalf("merge: skipped=%d err=%v", len(skipped), err)
	}
	merged.Store = store
	mergedTables, err := spec.Render(merged)
	if err != nil {
		t.Fatal(err)
	}

	// Per-cell results must be bit-identical to the reference run.
	for _, c := range sweep.Cells {
		want, err := ref.RunCell(c)
		if err != nil {
			t.Fatal(err)
		}
		got, ok, err := store.Get(c)
		if err != nil || !ok {
			t.Fatalf("merged store missing %s (ok %v, err %v)", c, ok, err)
		}
		if got.Throughput != want.Throughput || got.Hmean != want.Hmean {
			t.Errorf("%s: merged (%v, %v) != unsharded (%v, %v)",
				c, got.Throughput, got.Hmean, want.Throughput, want.Hmean)
		}
	}

	// Rendered tables must be byte-identical.
	if len(mergedTables) != len(refTables) {
		t.Fatalf("merged render has %d tables, reference %d", len(mergedTables), len(refTables))
	}
	for i := range refTables {
		want := refTables[i].Table.String()
		got := mergedTables[i].Table.String()
		if got != want {
			t.Errorf("table %s differs between merged-store and single-process render:\n--- merged\n%s--- unsharded\n%s",
				refTables[i].Name, got, want)
		}
	}

	// The store-backed render must not have simulated anything.
	if n := merged.Simulated(); n != 0 {
		t.Errorf("store-backed render simulated %d cells, want 0", n)
	}
	if n := merged.StoreHits(); n != int64(len(sweep.Cells)) {
		t.Errorf("store-backed render hit the store %d times, want %d", n, len(sweep.Cells))
	}

	// A second render on the same suite is served from the memo alone.
	if _, err := spec.Render(merged); err != nil {
		t.Fatal(err)
	}
	if n := merged.Simulated(); n != 0 {
		t.Errorf("re-render simulated %d cells", n)
	}
}

// TestSpecKeysUniqueAndResolvable guards the CLI contract.
func TestSpecKeysUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, spec := range Specs() {
		if spec.Key == "" || spec.Title == "" || spec.Sweep == nil || spec.Render == nil {
			t.Fatalf("spec %+v is incomplete", spec)
		}
		if seen[spec.Key] {
			t.Fatalf("duplicate spec key %q", spec.Key)
		}
		seen[spec.Key] = true
		got, err := SpecByKey(spec.Key)
		if err != nil || got.Key != spec.Key {
			t.Fatalf("SpecByKey(%q) = %v, %v", spec.Key, got.Key, err)
		}
		if spec.Sweep().Name != spec.Key {
			t.Fatalf("spec %q declares sweep named %q", spec.Key, spec.Sweep().Name)
		}
	}
	if _, err := SpecByKey("nope"); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("SpecByKey(nope) = %v", err)
	}
}
