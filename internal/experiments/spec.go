package experiments

import (
	"fmt"
	"strings"

	"dcra/internal/campaign"
	"dcra/internal/report"
	"dcra/internal/trace"
	"dcra/internal/workload"
)

// RenderedTable is one named output table of an experiment; the name keys
// CSV files and artifact paths.
type RenderedTable struct {
	Name  string
	Table *report.Table
}

// Spec describes one experiment of the paper's evaluation: a stable key, a
// declarative sweep enumerating every simulation cell the experiment needs,
// and a render function that consumes exactly those cells from the suite.
// The sweep is the single source of truth — prefetch submission, shard
// partitioning, store status and the render loop all iterate it — so a new
// sweep point cannot silently fall back to serial on-demand execution
// (enforced by the sweep-parity tests).
type Spec struct {
	Key    string // CLI selector, e.g. "fig5"
	Title  string
	Sweep  func() campaign.Sweep
	Render func(s *Suite) ([]RenderedTable, error)
}

// Specs returns every experiment in the paper's presentation order.
func Specs() []Spec {
	return []Spec{
		{
			Key: "tab1", Title: "Table 1: E_slow sharing model",
			Sweep: func() campaign.Sweep { return campaign.Sweep{Name: "tab1"} },
			Render: func(s *Suite) ([]RenderedTable, error) {
				return []RenderedTable{{"table1", Table1Report()}}, nil
			},
		},
		{
			Key: "tab4", Title: "Table 4: workloads",
			Sweep: func() campaign.Sweep { return campaign.Sweep{Name: "tab4"} },
			Render: func(s *Suite) ([]RenderedTable, error) {
				return []RenderedTable{{"table4", Table4Report()}}, nil
			},
		},
		{
			Key: "tab3", Title: "Table 3: benchmark cache behaviour",
			Sweep: func() campaign.Sweep { return Table3Sweep(nil) },
			Render: func(s *Suite) ([]RenderedTable, error) {
				rows, err := Table3(s, nil)
				if err != nil {
					return nil, err
				}
				return []RenderedTable{{"table3", Table3Report(rows)}}, nil
			},
		},
		{
			Key: "fig2", Title: "Figure 2: resource restriction curves",
			Sweep: func() campaign.Sweep { return Figure2Sweep(nil) },
			Render: func(s *Suite) ([]RenderedTable, error) {
				f2, err := Figure2(s, nil)
				if err != nil {
					return nil, err
				}
				return []RenderedTable{{"figure2", f2.Report()}}, nil
			},
		},
		{
			Key: "tab5", Title: "Table 5: DCRA phase distribution",
			Sweep: Table5Sweep,
			Render: func(s *Suite) ([]RenderedTable, error) {
				rows, err := Table5(s)
				if err != nil {
					return nil, err
				}
				return []RenderedTable{{"table5", Table5Report(rows)}}, nil
			},
		},
		{
			Key: "fig4", Title: "Figure 4: DCRA vs SRA",
			Sweep: Figure4Sweep,
			Render: func(s *Suite) ([]RenderedTable, error) {
				f4, err := Figure4(s)
				if err != nil {
					return nil, err
				}
				return []RenderedTable{{"figure4", f4.Report()}}, nil
			},
		},
		{
			Key: "fig5", Title: "Figure 5: throughput and Hmean per policy",
			Sweep: Figure5Sweep,
			Render: func(s *Suite) ([]RenderedTable, error) {
				f5, err := Figure5(s)
				if err != nil {
					return nil, err
				}
				return []RenderedTable{
					{"figure5a", f5.ThroughputReport()},
					{"figure5b", f5.HmeanReport()},
				}, nil
			},
		},
		{
			Key: "fig6", Title: "Figure 6: register-pool sweep",
			Sweep: Figure6Sweep,
			Render: func(s *Suite) ([]RenderedTable, error) {
				f6, err := Figure6(s)
				if err != nil {
					return nil, err
				}
				return []RenderedTable{{"figure6", f6.Report()}}, nil
			},
		},
		{
			Key: "fig7", Title: "Figure 7: memory-latency sweep",
			Sweep: Figure7Sweep,
			Render: func(s *Suite) ([]RenderedTable, error) {
				f7, err := Figure7(s)
				if err != nil {
					return nil, err
				}
				return []RenderedTable{{"figure7", f7.Report()}}, nil
			},
		},
		{
			Key: "activity", Title: "Front-end activity: FLUSH++ re-fetch overhead",
			Sweep: ActivitySweep,
			Render: func(s *Suite) ([]RenderedTable, error) {
				var rows []ActivityResult
				for _, lat := range ActivityLatencies {
					r, err := FrontEndActivity(s, lat)
					if err != nil {
						return nil, err
					}
					rows = append(rows, r)
				}
				return []RenderedTable{{"activity", ActivityReport(rows)}}, nil
			},
		},
		{
			Key: "mlp", Title: "Memory-level parallelism: DCRA vs FLUSH++",
			Sweep: MLPSweep,
			Render: func(s *Suite) ([]RenderedTable, error) {
				rows, err := MemoryParallelism(s)
				if err != nil {
					return nil, err
				}
				return []RenderedTable{{"mlp", MLPReport(rows)}}, nil
			},
		},
		{
			Key: "sched", Title: "Open-system scheduler: throughput, tail latency, fairness",
			Sweep: SchedSweep,
			Render: func(s *Suite) ([]RenderedTable, error) {
				tbl, err := SchedTable(s)
				if err != nil {
					return nil, err
				}
				return []RenderedTable{{"sched", tbl}}, nil
			},
		},
	}
}

// SpecByKey returns the experiment with the given CLI key.
func SpecByKey(key string) (Spec, error) {
	var keys []string
	for _, sp := range Specs() {
		if sp.Key == key {
			return sp, nil
		}
		keys = append(keys, sp.Key)
	}
	return Spec{}, fmt.Errorf("experiments: unknown experiment %q (have %s)", key, strings.Join(keys, ","))
}

// Table4Report renders the encoded workload table (static data).
func Table4Report() *report.Table {
	t := report.NewTable("Table 4: workloads (encoded verbatim from the paper)",
		"id", "benchmarks", "types")
	for _, w := range workload.All() {
		types := make([]string, len(w.Names))
		for i, n := range w.Names {
			types[i] = trace.MustProfile(n).Type()
		}
		t.AddRow(w.ID(), strings.Join(w.Names, "+"), strings.Join(types, "+"))
	}
	return t
}
