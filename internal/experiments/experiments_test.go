package experiments

import (
	"testing"

	"dcra/internal/config"
	"dcra/internal/cpu"
	"dcra/internal/workload"
)

// TestTable1Golden: the regenerated Table 1 must match the paper exactly,
// including enumeration order.
func TestTable1Golden(t *testing.T) {
	rows := Table1()
	if len(rows) != 10 {
		t.Fatalf("Table 1 has 10 entries, got %d", len(rows))
	}
	wantOrder := [][2]int{
		{0, 1}, {1, 1}, {0, 2}, {2, 1}, {1, 2}, {0, 3}, {3, 1}, {2, 2}, {1, 3}, {0, 4},
	}
	for i, r := range rows {
		if r.Entry != i+1 {
			t.Errorf("row %d: entry %d", i, r.Entry)
		}
		if [2]int{r.FA, r.SA} != wantOrder[i] {
			t.Errorf("row %d: (FA,SA)=(%d,%d), want %v", i, r.FA, r.SA, wantOrder[i])
		}
		if want := PaperTable1[[2]int{r.FA, r.SA}]; r.Eslow != want {
			t.Errorf("row %d: E_slow=%d, paper says %d", i, r.Eslow, want)
		}
	}
}

func TestNewPolicyCoversAll(t *testing.T) {
	cfg := config.Baseline()
	for _, pn := range []PolicyName{PolICount, PolStall, PolFlush, PolFlushPP,
		PolDG, PolPDG, PolSRA, PolDCRA} {
		p := newPolicy(pn, cfg)
		if p == nil {
			t.Errorf("%s: nil policy", pn)
		}
	}
}

func TestSuiteMemoisation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	s := NewQuickSuite()
	s.Runner.Warmup, s.Runner.Measure = 5_000, 20_000
	w, _ := workload.Get(2, workload.ILP, 1)
	cfg := config.Baseline()
	a, err := s.run(cfg, w, PolICount)
	if err != nil {
		t.Fatal(err)
	}
	if s.memo.Len() == 0 {
		t.Fatal("suite did not memoise")
	}
	if got := s.Simulated(); got != 1 {
		t.Fatalf("Simulated() = %d after one cell, want 1", got)
	}
	b, err := s.run(cfg, w, PolICount)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput {
		t.Fatal("memoised result differs")
	}
}

// TestFigure2Monotone: more of a resource must never substantially hurt.
// Uses two benchmarks and a reduced runner to stay fast.
func TestFigure2Monotone(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	s := NewQuickSuite()
	s.Runner.Warmup, s.Runner.Measure = 10_000, 40_000
	res, err := Figure2(s, []string{"gzip", "swim"})
	if err != nil {
		t.Fatal(err)
	}
	for _, rc := range Figure2Resources {
		curve := res.PercentOfFull[rc]
		if len(curve) != len(Figure2Fractions) {
			t.Fatalf("%v: curve has %d points", rc, len(curve))
		}
		last := curve[len(curve)-1]
		if last < 0.90 || last > 1.10 {
			t.Errorf("%v: 100%% of resources gives %.3f of full speed, want ~1", rc, last)
		}
		// Check overall upward trend: first point must not exceed the last
		// by more than noise.
		if curve[0] > last*1.08 {
			t.Errorf("%v: restricting the resource sped things up: %.3f @12.5%% vs %.3f @100%%",
				rc, curve[0], last)
		}
	}
}

// TestTable5Shape: MIX 2-thread pairs spend the most time in split phases.
func TestTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	s := NewQuickSuite()
	s.Runner.Warmup, s.Runner.Measure = 10_000, 40_000
	rows, err := Table5(s)
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[workload.Kind]Table5Row{}
	for _, r := range rows {
		byKind[r.Kind] = r
	}
	if byKind[workload.MEM].SlowSlow <= byKind[workload.ILP].SlowSlow {
		t.Errorf("MEM slow-slow (%.1f%%) should exceed ILP slow-slow (%.1f%%)",
			byKind[workload.MEM].SlowSlow, byKind[workload.ILP].SlowSlow)
	}
	if byKind[workload.ILP].FastFast <= byKind[workload.MEM].FastFast {
		t.Errorf("ILP fast-fast (%.1f%%) should exceed MEM fast-fast (%.1f%%)",
			byKind[workload.ILP].FastFast, byKind[workload.MEM].FastFast)
	}
	if byKind[workload.MIX].Mixed <= byKind[workload.MEM].Mixed {
		t.Errorf("MIX split-phase time (%.1f%%) should exceed MEM's (%.1f%%)",
			byKind[workload.MIX].Mixed, byKind[workload.MEM].Mixed)
	}
}

func TestTotalOf(t *testing.T) {
	cfg := config.Baseline()
	if totalOf(cfg, cpu.RIntIQ) != cfg.IntQueue {
		t.Error("intIQ total wrong")
	}
	if totalOf(cfg, cpu.RIntRegs) != cfg.RenameRegs(1) {
		t.Error("intRegs total wrong")
	}
	if totalOf(cfg, cpu.RROB) != cfg.ROBSize {
		t.Error("rob total wrong")
	}
}
