package experiments

import (
	"dcra/internal/config"
	"dcra/internal/report"
	"dcra/internal/sim"
	"dcra/internal/trace"
)

// Table3Row is one benchmark's measured single-thread cache behaviour next
// to the paper's reported value.
type Table3Row struct {
	Name        string
	Suite       string // INTEGER / FP
	Type        string // MEM / ILP
	L2MissRate  float64
	PaperL2Rate float64
	IPC         float64
}

// Table3 reproduces the paper's Table 3: per-benchmark L2 miss rates and
// the MEM/ILP split, measured on single-thread baseline runs. One run per
// benchmark, all independent, executed on the suite's worker pool with each
// task filling its own row.
func Table3(s *Suite, benchmarks []string) ([]Table3Row, error) {
	if benchmarks == nil {
		benchmarks = trace.Names()
	}
	cfg := config.Baseline()
	rows := make([]Table3Row, len(benchmarks))
	errs := make([]error, len(benchmarks))
	s.engine().Run(len(benchmarks), func(i int) {
		name := benchmarks[i]
		p := trace.MustProfile(name)
		m, err := s.Runner.RunMachine(cfg, []trace.Profile{p}, &sim.CapPolicy{})
		if err != nil {
			errs[i] = err
			return
		}
		st := m.Stats()
		suite := "INTEGER"
		if p.FP {
			suite = "FP"
		}
		rows[i] = Table3Row{
			Name:        name,
			Suite:       suite,
			Type:        p.Type(),
			L2MissRate:  st.Threads[0].L2MissRate(),
			PaperL2Rate: p.PaperL2MissRate,
			IPC:         st.Threads[0].IPC(st.Cycles),
		}
	})
	if err := sim.FirstError(errs); err != nil {
		return nil, err
	}
	return rows, nil
}

// Table3Report renders the measured-vs-paper table.
func Table3Report(rows []Table3Row) *report.Table {
	t := report.NewTable("Table 3: cache behaviour of each benchmark (single thread)",
		"benchmark", "suite", "type", "L2 miss rate %", "paper %", "IPC")
	for _, r := range rows {
		t.AddRow(r.Name, r.Suite, r.Type, r.L2MissRate, r.PaperL2Rate, r.IPC)
	}
	t.AddNote("type split: MEM >= 1%% L2 miss rate; the split and ordering are the reproduction targets")
	return t
}
