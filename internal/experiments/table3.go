package experiments

import (
	"dcra/internal/campaign"
	"dcra/internal/config"
	"dcra/internal/report"
	"dcra/internal/trace"
)

// Table3Row is one benchmark's measured single-thread cache behaviour next
// to the paper's reported value.
type Table3Row struct {
	Name        string
	Suite       string // INTEGER / FP
	Type        string // MEM / ILP
	L2MissRate  float64
	PaperL2Rate float64
	IPC         float64
}

// Table3Sweep declares the table's cells: one uncapped single-thread
// measurement run per benchmark on the baseline configuration. nil selects
// the full Table 3 suite.
func Table3Sweep(benchmarks []string) campaign.Sweep {
	if benchmarks == nil {
		benchmarks = trace.Names()
	}
	cfg := config.Baseline()
	s := campaign.Sweep{Name: "tab3"}
	for _, name := range benchmarks {
		s.Cells = append(s.Cells, benchCell(cfg, name, polCap))
	}
	return s
}

// Table3 reproduces the paper's Table 3: per-benchmark L2 miss rates and
// the MEM/ILP split, measured on single-thread baseline runs. The declared
// sweep — one independent run per benchmark — executes on the suite's
// worker pool; each row renders from its cell's stored statistics.
func Table3(s *Suite, benchmarks []string) ([]Table3Row, error) {
	if benchmarks == nil {
		benchmarks = trace.Names()
	}
	cfg := config.Baseline()
	if err := s.Prefetch(Table3Sweep(benchmarks).Cells); err != nil {
		return nil, err
	}
	rows := make([]Table3Row, len(benchmarks))
	for i, name := range benchmarks {
		p := trace.MustProfile(name)
		r, err := s.RunCell(benchCell(cfg, name, polCap))
		if err != nil {
			return nil, err
		}
		suite := "INTEGER"
		if p.FP {
			suite = "FP"
		}
		rows[i] = Table3Row{
			Name:        name,
			Suite:       suite,
			Type:        p.Type(),
			L2MissRate:  r.Stats.Threads[0].L2MissRate(),
			PaperL2Rate: p.PaperL2MissRate,
			IPC:         r.IPCs[0],
		}
	}
	return rows, nil
}

// Table3Report renders the measured-vs-paper table.
func Table3Report(rows []Table3Row) *report.Table {
	t := report.NewTable("Table 3: cache behaviour of each benchmark (single thread)",
		"benchmark", "suite", "type", "L2 miss rate %", "paper %", "IPC")
	for _, r := range rows {
		t.AddRow(r.Name, r.Suite, r.Type, r.L2MissRate, r.PaperL2Rate, r.IPC)
	}
	t.AddNote("type split: MEM >= 1%% L2 miss rate; the split and ordering are the reproduction targets")
	return t
}
