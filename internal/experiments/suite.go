// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §7 for the experiment index). Each Figure*/
// Table* function returns both structured results (asserted by tests and
// benchmarks) and a rendered report.Table.
package experiments

import (
	"fmt"
	"sync"

	"dcra/internal/config"
	"dcra/internal/core"
	"dcra/internal/cpu"
	"dcra/internal/metrics"
	"dcra/internal/policy"
	"dcra/internal/sim"
	"dcra/internal/workload"
)

// PolicyName identifies one of the policies under study.
type PolicyName string

// Policies compared in the paper's evaluation.
const (
	PolICount  PolicyName = "ICOUNT"
	PolStall   PolicyName = "STALL"
	PolFlush   PolicyName = "FLUSH"
	PolFlushPP PolicyName = "FLUSH++"
	PolDG      PolicyName = "DG"
	PolPDG     PolicyName = "PDG"
	PolSRA     PolicyName = "SRA"
	PolDCRA    PolicyName = "DCRA"
)

// newPolicy builds a fresh policy instance. DCRA's sharing factor follows
// the paper's latency tuning (Section 5.3), so it depends on cfg.
func newPolicy(name PolicyName, cfg config.Config) cpu.Policy {
	switch name {
	case PolICount:
		return policy.NewICount()
	case PolStall:
		return policy.NewStall()
	case PolFlush:
		return policy.NewFlush()
	case PolFlushPP:
		return policy.NewFlushPP()
	case PolDG:
		return policy.NewDG()
	case PolPDG:
		return policy.NewPDG()
	case PolSRA:
		return policy.NewSRA()
	case PolDCRA:
		return core.New(core.OptionsForLatency(cfg.MemLatency))
	}
	panic("experiments: unknown policy " + string(name))
}

// Cell identifies one memoisable simulation: a (config, workload, policy)
// triple. config.Config is a struct of scalars, so Cell is comparable and
// serves directly as the memo key — no fmt.Sprintf key building per probe.
type Cell struct {
	Cfg config.Config
	WID string // workload.Workload.ID()
	Pol PolicyName
}

// cellState is a single-flight slot: the first worker to claim a cell
// computes it, concurrent requesters wait on done and share the result.
type cellState struct {
	done chan struct{}
	res  sim.Result
	err  error
}

// Suite runs experiments with result memoisation: the same (workload,
// policy, configuration) run is shared between figures — Figure 5's DCRA
// runs at the baseline are also Figure 4's and Figure 6's middle points.
// The memo is safe for concurrent use; each Figure*/Table* function
// enumerates its cells up front, submits them to the engine's worker pool,
// then renders from the completed results.
type Suite struct {
	Runner *sim.Runner
	Engine *sim.Engine

	mu    sync.Mutex
	cache map[Cell]*cellState
}

// NewSuite builds a Suite with the default measurement windows, running
// cells on a GOMAXPROCS-wide worker pool.
func NewSuite() *Suite {
	return &Suite{
		Runner: sim.NewRunner(),
		Engine: sim.NewEngine(0),
		cache:  make(map[Cell]*cellState),
	}
}

// NewQuickSuite builds a Suite with reduced windows for tests/benchmarks
// (~6x faster, noisier but preserving every qualitative relationship).
func NewQuickSuite() *Suite {
	s := NewSuite()
	s.Runner.Warmup = 20_000
	s.Runner.Measure = 80_000
	return s
}

// run returns the memoised result of one (cfg, workload, policy) cell,
// computing it if no prefetch has. Concurrent callers single-flight.
func (s *Suite) run(cfg config.Config, w workload.Workload, pn PolicyName) (sim.Result, error) {
	key := Cell{Cfg: cfg, WID: w.ID(), Pol: pn}
	s.mu.Lock()
	if s.cache == nil {
		s.cache = make(map[Cell]*cellState)
	}
	if c, ok := s.cache[key]; ok {
		s.mu.Unlock()
		<-c.done
		return c.res, c.err
	}
	c := &cellState{done: make(chan struct{})}
	s.cache[key] = c
	s.mu.Unlock()

	// done must close even if the run panics (e.g. an unknown policy name):
	// concurrent waiters on this cell would otherwise block forever. The
	// panic is published as the cell's error first, so if some outer harness
	// recovers it the memo holds a failure, not a zero result with nil error.
	defer func() {
		if p := recover(); p != nil {
			c.err = fmt.Errorf("experiments: cell %s/%s panicked: %v", w.ID(), pn, p)
			close(c.done)
			panic(p)
		}
		close(c.done)
	}()
	c.res, c.err = s.Runner.RunWorkload(cfg, w, func() cpu.Policy { return newPolicy(pn, cfg) })
	return c.res, c.err
}

// engine returns the suite's engine, defaulting to GOMAXPROCS workers for
// zero-value suites built by tests.
func (s *Suite) engine() *sim.Engine {
	if s.Engine == nil {
		s.Engine = sim.NewEngine(0)
	}
	return s.Engine
}

// workloadCell pairs a resolved workload with its configuration and policy
// so prefetch tasks need no re-lookup.
type workloadCell struct {
	cfg config.Config
	w   workload.Workload
	pn  PolicyName
}

// prefetch computes every cell on the worker pool, filling the memo. Cells
// already computed (or in flight from an earlier figure) cost one memo
// probe. The first error in submission order is returned, matching what a
// serial run would have reported.
func (s *Suite) prefetch(cells []workloadCell) error {
	errs := make([]error, len(cells))
	s.engine().Run(len(cells), func(i int) {
		_, errs[i] = s.run(cells[i].cfg, cells[i].w, cells[i].pn)
	})
	return sim.FirstError(errs)
}

// kindCells enumerates the cells of all four groups of one (threads, kind)
// workload type under each policy.
func kindCells(cfg config.Config, threads int, kind workload.Kind, pns ...PolicyName) []workloadCell {
	var cells []workloadCell
	for _, w := range workload.Groups(threads, kind) {
		for _, pn := range pns {
			cells = append(cells, workloadCell{cfg: cfg, w: w, pn: pn})
		}
	}
	return cells
}

// allWorkloadCells enumerates cells for every Table 4 workload under each
// policy.
func allWorkloadCells(cfg config.Config, pns ...PolicyName) []workloadCell {
	var cells []workloadCell
	for _, w := range workload.All() {
		for _, pn := range pns {
			cells = append(cells, workloadCell{cfg: cfg, w: w, pn: pn})
		}
	}
	return cells
}

// kindAverages runs all four groups of (threads, kind) under pn and returns
// the mean throughput and mean Hmean, the paper's per-workload-type summary.
func (s *Suite) kindAverages(cfg config.Config, threads int, kind workload.Kind, pn PolicyName) (tp, hm float64, err error) {
	var tps, hms []float64
	for _, w := range workload.Groups(threads, kind) {
		r, err := s.run(cfg, w, pn)
		if err != nil {
			return 0, 0, err
		}
		tps = append(tps, r.Throughput)
		hms = append(hms, r.Hmean)
	}
	return metrics.Mean(tps), metrics.Mean(hms), nil
}

// allWorkloadAverages averages throughput/Hmean over all 36 workloads.
func (s *Suite) allWorkloadAverages(cfg config.Config, pn PolicyName) (tp, hm float64, err error) {
	var tps, hms []float64
	for _, w := range workload.All() {
		r, err := s.run(cfg, w, pn)
		if err != nil {
			return 0, 0, err
		}
		tps = append(tps, r.Throughput)
		hms = append(hms, r.Hmean)
	}
	return metrics.Mean(tps), metrics.Mean(hms), nil
}

// threadCounts and kind order used by per-type reports.
var threadCounts = []int{2, 3, 4}
