// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §7 for the experiment index). Each Figure*/
// Table* function returns both structured results (asserted by tests and
// benchmarks) and a rendered report.Table.
package experiments

import (
	"fmt"

	"dcra/internal/config"
	"dcra/internal/core"
	"dcra/internal/cpu"
	"dcra/internal/metrics"
	"dcra/internal/policy"
	"dcra/internal/sim"
	"dcra/internal/workload"
)

// PolicyName identifies one of the policies under study.
type PolicyName string

// Policies compared in the paper's evaluation.
const (
	PolICount  PolicyName = "ICOUNT"
	PolStall   PolicyName = "STALL"
	PolFlush   PolicyName = "FLUSH"
	PolFlushPP PolicyName = "FLUSH++"
	PolDG      PolicyName = "DG"
	PolPDG     PolicyName = "PDG"
	PolSRA     PolicyName = "SRA"
	PolDCRA    PolicyName = "DCRA"
)

// newPolicy builds a fresh policy instance. DCRA's sharing factor follows
// the paper's latency tuning (Section 5.3), so it depends on cfg.
func newPolicy(name PolicyName, cfg config.Config) cpu.Policy {
	switch name {
	case PolICount:
		return policy.NewICount()
	case PolStall:
		return policy.NewStall()
	case PolFlush:
		return policy.NewFlush()
	case PolFlushPP:
		return policy.NewFlushPP()
	case PolDG:
		return policy.NewDG()
	case PolPDG:
		return policy.NewPDG()
	case PolSRA:
		return policy.NewSRA()
	case PolDCRA:
		return core.New(core.OptionsForLatency(cfg.MemLatency))
	}
	panic("experiments: unknown policy " + string(name))
}

// Suite runs experiments with result memoisation: the same (workload,
// policy, configuration) run is shared between figures — Figure 5's DCRA
// runs at the baseline are also Figure 4's and Figure 6's middle points.
type Suite struct {
	Runner *sim.Runner
	cache  map[string]sim.Result
}

// NewSuite builds a Suite with the default measurement windows.
func NewSuite() *Suite {
	return &Suite{Runner: sim.NewRunner(), cache: make(map[string]sim.Result)}
}

// NewQuickSuite builds a Suite with reduced windows for tests/benchmarks
// (~6x faster, noisier but preserving every qualitative relationship).
func NewQuickSuite() *Suite {
	s := NewSuite()
	s.Runner.Warmup = 20_000
	s.Runner.Measure = 80_000
	return s
}

// run returns the memoised result of one (cfg, workload, policy) cell.
func (s *Suite) run(cfg config.Config, w workload.Workload, pn PolicyName) (sim.Result, error) {
	key := fmt.Sprintf("%s|%s|%+v", w.ID(), pn, cfg)
	if r, ok := s.cache[key]; ok {
		return r, nil
	}
	r, err := s.Runner.RunWorkload(cfg, w, func() cpu.Policy { return newPolicy(pn, cfg) })
	if err != nil {
		return sim.Result{}, err
	}
	s.cache[key] = r
	return r, nil
}

// kindAverages runs all four groups of (threads, kind) under pn and returns
// the mean throughput and mean Hmean, the paper's per-workload-type summary.
func (s *Suite) kindAverages(cfg config.Config, threads int, kind workload.Kind, pn PolicyName) (tp, hm float64, err error) {
	var tps, hms []float64
	for _, w := range workload.Groups(threads, kind) {
		r, err := s.run(cfg, w, pn)
		if err != nil {
			return 0, 0, err
		}
		tps = append(tps, r.Throughput)
		hms = append(hms, r.Hmean)
	}
	return metrics.Mean(tps), metrics.Mean(hms), nil
}

// allWorkloadAverages averages throughput/Hmean over all 36 workloads.
func (s *Suite) allWorkloadAverages(cfg config.Config, pn PolicyName) (tp, hm float64, err error) {
	var tps, hms []float64
	for _, w := range workload.All() {
		r, err := s.run(cfg, w, pn)
		if err != nil {
			return 0, 0, err
		}
		tps = append(tps, r.Throughput)
		hms = append(hms, r.Hmean)
	}
	return metrics.Mean(tps), metrics.Mean(hms), nil
}

// threadCounts and kind order used by per-type reports.
var threadCounts = []int{2, 3, 4}
