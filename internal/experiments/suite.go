// Package experiments regenerates every table and figure of the paper's
// evaluation (see EXPERIMENTS.md for the experiment index and the
// paper-vs-measured record). Each Figure*/Table* function declares its sweep
// — the campaign.Sweep enumerating every (config, workload, policy) cell it
// needs — exactly once; prefetch submission, rendering, sharding and the
// persistent result store all iterate that same enumeration.
package experiments

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"dcra/internal/campaign"
	"dcra/internal/config"
	"dcra/internal/core"
	"dcra/internal/cpu"
	"dcra/internal/metrics"
	"dcra/internal/obs"
	"dcra/internal/policy"
	"dcra/internal/sched"
	"dcra/internal/sim"
	"dcra/internal/singleflight"
	"dcra/internal/trace"
	"dcra/internal/workload"
)

// PolicyName identifies one of the policies under study.
type PolicyName string

// Policies compared in the paper's evaluation.
const (
	PolICount  PolicyName = "ICOUNT"
	PolStall   PolicyName = "STALL"
	PolFlush   PolicyName = "FLUSH"
	PolFlushPP PolicyName = "FLUSH++"
	PolDG      PolicyName = "DG"
	PolPDG     PolicyName = "PDG"
	PolSRA     PolicyName = "SRA"
	PolDCRA    PolicyName = "DCRA"
)

// multithreadPolicies lists every policy newPolicy can build.
var multithreadPolicies = map[PolicyName]bool{
	PolICount: true, PolStall: true, PolFlush: true, PolFlushPP: true,
	PolDG: true, PolPDG: true, PolSRA: true, PolDCRA: true,
}

// newPolicy builds a fresh policy instance. DCRA's sharing factor follows
// the paper's latency tuning (Section 5.3), so it depends on cfg.
func newPolicy(name PolicyName, cfg config.Config) cpu.Policy {
	switch name {
	case PolICount:
		return policy.NewICount()
	case PolStall:
		return policy.NewStall()
	case PolFlush:
		return policy.NewFlush()
	case PolFlushPP:
		return policy.NewFlushPP()
	case PolDG:
		return policy.NewDG()
	case PolPDG:
		return policy.NewPDG()
	case PolSRA:
		return policy.NewSRA()
	case PolDCRA:
		return core.New(core.OptionsForLatency(cfg.MemLatency))
	}
	panic("experiments: unknown policy " + string(name))
}

// Single-thread cell vocabulary: campaign cells whose WID is "bench:<name>"
// run one benchmark alone. Pol selects the run protocol:
//
//	BASE               — ICOUNT baseline (the SingleIPC measurement)
//	CAP                — uncapped CapPolicy run (Table 3's measurement)
//	CAP:<res>:<pct>    — CapPolicy with resource <res> capped to <pct> percent
//	                     of the single-thread total (Figure 2's restriction)
const (
	benchPrefix = "bench:"
	polBase     = "BASE"
	polCap      = "CAP"
)

// benchCell builds the cell for one single-benchmark run.
func benchCell(cfg config.Config, name, pol string) campaign.Cell {
	return campaign.Cell{Cfg: cfg, WID: benchPrefix + name, Pol: pol}
}

// capPolName encodes a Figure 2 restriction as a policy string.
func capPolName(rc cpu.Resource, fraction float64) string {
	return fmt.Sprintf("%s:%s:%s", polCap, rc, strconv.FormatFloat(fraction, 'g', -1, 64))
}

// parseCapPol decodes a "CAP:<res>:<pct>" policy string.
func parseCapPol(pol string) (cpu.Resource, float64, error) {
	parts := strings.Split(pol, ":")
	if len(parts) != 3 || parts[0] != polCap {
		return 0, 0, fmt.Errorf("experiments: malformed cap policy %q", pol)
	}
	rc, err := parseResource(parts[1])
	if err != nil {
		return 0, 0, err
	}
	frac, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return 0, 0, fmt.Errorf("experiments: malformed cap fraction in %q: %w", pol, err)
	}
	return rc, frac, nil
}

// parseResource resolves a cpu.Resource display name.
func parseResource(name string) (cpu.Resource, error) {
	for r := cpu.Resource(0); r < cpu.NumResources; r++ {
		if r.String() == name {
			return r, nil
		}
	}
	return 0, fmt.Errorf("experiments: unknown resource %q", name)
}

// ErrMissingCell reports that a RequireStore suite was asked for a cell the
// store does not hold; match with errors.Is.
var ErrMissingCell = errors.New("cell not in store")

// Suite runs experiments with result memoisation: the same (workload,
// policy, configuration) run is shared between figures — Figure 5's DCRA
// runs at the baseline are also Figure 4's and Figure 6's middle points.
// The memo is safe for concurrent use; each Figure*/Table* function
// enumerates its sweep up front, submits it to the engine's worker pool,
// then renders from the completed results.
//
// With Store set, the memo is additionally layered over the persistent
// on-disk campaign store: cell lookups hit disk before simulating, and fresh
// simulations are persisted, so re-runs and figure re-renders across
// processes cost file reads instead of resimulation. The store's Params must
// match the Runner's windows and seed (campaign.Open enforces this).
type Suite struct {
	Runner *sim.Runner
	Engine *sim.Engine
	Store  *campaign.Store // optional persistent result store

	// Mode selects the execution mode cells are demanded in:
	// campaign.ModeExact (default) or campaign.ModeSampled. Sampled mode
	// applies to multiprogrammed workload cells only — "bench:" protocol
	// cells (the baselines other metrics divide by) and "sched:" trials
	// always run exact, so sampled and exact results share reference axes.
	Mode string

	// Sampling, when non-zero, is the explicit sampling schedule stamped
	// onto every sampled cell's config (e.g. sample.DeriveAdaptive's
	// variance-driven protocol). It becomes part of each cell's content
	// key, so stores never mix results from different protocols. Zero
	// leaves cells deriving the fixed schedule from the Runner's windows.
	Sampling config.SamplingConfig

	// SchedFFDrain runs "sched:" trial cells with sched.Config.FFDrain:
	// each trial's tail (all jobs arrived, none queued) fast-forwards
	// functionally instead of simulating in detail. Drained trials report
	// estimated turnarounds and mode-dependent event-log digests, so such
	// cells bypass the persistent store entirely — they neither read the
	// exact results nor pollute the store with estimates.
	SchedFFDrain bool

	// SchedSLOs and SchedHealthEvery attach the fleet-health layer to
	// "sched:" trial cells: declarative turnaround objectives and the
	// health-ring tick interval, forwarded into sched.Config. Health ticks
	// never perturb a trial (TestSchedHealthBitIdentical, and
	// TestSchedExperimentBitIdenticalWithHealth here), and the health
	// report travels outside sim.Result, so neither field joins a cell's
	// content key — store results stay health-agnostic.
	SchedSLOs        []sched.SLOSpec
	SchedHealthEvery uint64

	// RequireStore, with Store set, turns a store miss into ErrMissingCell
	// instead of simulating the cell. Renders that must reflect exactly what
	// a campaign computed — a coordinator's partial render after a deadline,
	// say — use it to fail fast per-experiment rather than quietly spending
	// hours resimulating holes.
	RequireStore bool

	memo singleflight.Memo[campaign.Cell, sim.Result]

	simulated atomic.Int64
	storeHits atomic.Int64

	mu        sync.Mutex
	requested map[campaign.Cell]struct{}
}

// NewSuite builds a Suite with the default measurement windows, running
// cells on a GOMAXPROCS-wide worker pool.
func NewSuite() *Suite {
	return &Suite{
		Runner: sim.NewRunner(),
		Engine: sim.NewEngine(0),
	}
}

// NewQuickSuite builds a Suite with reduced windows for tests/benchmarks
// (~6x faster, noisier but preserving every qualitative relationship).
func NewQuickSuite() *Suite {
	s := NewSuite()
	s.Runner.Warmup = 20_000
	s.Runner.Measure = 80_000
	return s
}

// Instrument attaches a metrics registry and span tracer to every layer the
// suite drives: the engine (per-cell counters and spans), the runner
// (sampled-run and probe telemetry), the machine pool (reuse hit rate) and
// the persistent store, when one is attached (puts, gets, quarantines).
// Either argument may be nil; attach the Store before calling so it is
// covered. Telemetry never alters results — the instrumented paths feed the
// same numbers to the same sinks.
func (s *Suite) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	s.engine().Reg = reg
	s.engine().Tracer = tr
	s.Runner.Obs = reg
	if s.Runner.Pool != nil {
		s.Runner.Pool.SetObs(reg)
	}
	if s.Store != nil {
		s.Store.SetObs(reg)
	}
}

// StoreParams returns the campaign store protocol matching this suite's
// runner, for campaign.Open.
func (s *Suite) StoreParams() campaign.Params {
	return campaign.Params{Warmup: s.Runner.Warmup, Measure: s.Runner.Measure, Seed: s.Runner.Seed}
}

// Simulated returns how many cells this suite actually simulated (memo and
// store hits excluded) — the number a fully-populated store drives to zero.
func (s *Suite) Simulated() int64 { return s.simulated.Load() }

// StoreHits returns how many cell requests were served by the persistent
// store instead of simulation.
func (s *Suite) StoreHits() int64 { return s.storeHits.Load() }

// RunCell returns the memoised result of one campaign cell, computing (or
// loading from the store) on first request. Concurrent callers
// single-flight. RunCell records the cell as demanded by rendering; the
// sweep-parity tests assert that the demanded set of every Figure*/Table* is
// exactly its declared sweep.
func (s *Suite) RunCell(c campaign.Cell) (sim.Result, error) {
	s.mu.Lock()
	if s.requested == nil {
		s.requested = make(map[campaign.Cell]struct{})
	}
	s.requested[c] = struct{}{}
	s.mu.Unlock()
	return s.runCell(c)
}

// runCell is RunCell without demand tracking; Prefetch uses it so that the
// requested set reflects what rendering consumed, not what the sweep
// submitted.
func (s *Suite) runCell(c campaign.Cell) (sim.Result, error) {
	return s.memo.Do(c, func() (sim.Result, error) {
		if s.SchedFFDrain && strings.HasPrefix(c.WID, schedPrefix) {
			// FF-drained trials are estimates: keep them out of the store.
			r, err := s.computeCell(c)
			if err == nil {
				s.simulated.Add(1)
			}
			return r, err
		}
		if s.Store != nil {
			// Renders prefer exact when present: a sampled cell whose exact
			// counterpart is already in the store loads that instead of
			// simulating an approximation of a result we hold exactly.
			if c.Mode == campaign.ModeSampled {
				if r, ok, err := s.Store.Get(c.Exact()); err == nil && ok {
					s.storeHits.Add(1)
					return r, nil
				}
			}
			compute := func() (sim.Result, error) { return s.computeCell(c) }
			if s.RequireStore {
				compute = func() (sim.Result, error) {
					return sim.Result{}, fmt.Errorf("experiments: cell %s: %w", c, ErrMissingCell)
				}
			}
			r, computed, err := s.Store.Do(c, compute)
			if err == nil {
				if computed {
					s.simulated.Add(1)
				} else {
					s.storeHits.Add(1)
				}
			}
			return r, err
		}
		r, err := s.computeCell(c)
		if err == nil {
			s.simulated.Add(1)
		}
		return r, err
	})
}

// RequestedCells returns the set of cells demanded through RunCell (i.e. by
// render loops), for sweep/enumeration parity checks.
func (s *Suite) RequestedCells() map[campaign.Cell]struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := make(map[campaign.Cell]struct{}, len(s.requested))
	for c := range s.requested {
		set[c] = struct{}{}
	}
	return set
}

// computeCell simulates one cell: a multiprogrammed Table 4 workload under a
// named policy, a "bench:" single-thread protocol cell, or a "sched:"
// open-system job-stream trial.
func (s *Suite) computeCell(c campaign.Cell) (sim.Result, error) {
	if name, ok := strings.CutPrefix(c.WID, benchPrefix); ok {
		if c.Mode != campaign.ModeExact {
			return sim.Result{}, fmt.Errorf("experiments: cell %s: bench protocol cells run exact only", c)
		}
		return s.computeBenchCell(c, name)
	}
	if strings.HasPrefix(c.WID, schedPrefix) {
		if c.Mode != campaign.ModeExact {
			return sim.Result{}, fmt.Errorf("experiments: cell %s: sched trials run exact only", c)
		}
		return s.computeSchedCell(c)
	}
	w, err := workload.ByID(c.WID)
	if err != nil {
		return sim.Result{}, err
	}
	pn := PolicyName(c.Pol)
	if !multithreadPolicies[pn] {
		return sim.Result{}, fmt.Errorf("experiments: cell %s: unknown policy %q", c, c.Pol)
	}
	mk := func() cpu.Policy { return newPolicy(pn, c.Cfg) }
	switch c.Mode {
	case campaign.ModeExact:
		return s.Runner.RunWorkload(c.Cfg, w, mk)
	case campaign.ModeSampled:
		return s.Runner.RunWorkloadSampled(c.Cfg, w, mk)
	default:
		return sim.Result{}, fmt.Errorf("experiments: cell %s: unknown mode %q", c, c.Mode)
	}
}

// computeBenchCell runs one benchmark alone under a single-thread protocol
// policy. The result carries the thread's IPC and full statistics; Hmean and
// weighted speedup stay zero (they are relative metrics and need no
// single-thread baseline here — the run IS the baseline).
func (s *Suite) computeBenchCell(c campaign.Cell, name string) (sim.Result, error) {
	prof, err := trace.ProfileByName(name)
	if err != nil {
		return sim.Result{}, err
	}
	var pol cpu.Policy
	switch {
	case c.Pol == polBase:
		pol = policy.NewICount()
	case c.Pol == polCap:
		pol = &sim.CapPolicy{}
	case strings.HasPrefix(c.Pol, polCap+":"):
		rc, frac, err := parseCapPol(c.Pol)
		if err != nil {
			return sim.Result{}, err
		}
		capPol := &sim.CapPolicy{}
		capPol.Caps[rc] = max(1, int(float64(totalOf(c.Cfg, rc))*frac/100))
		pol = capPol
	default:
		return sim.Result{}, fmt.Errorf("experiments: cell %s: unknown single-thread policy %q", c, c.Pol)
	}
	m, err := s.Runner.RunMachine(c.Cfg, []trace.Profile{prof}, pol)
	if err != nil {
		return sim.Result{}, fmt.Errorf("experiments: bench cell %s: %w", c, err)
	}
	st := m.Stats()
	s.Runner.Recycle(m) // st stays valid: reuse abandons, never clears, old stats
	ipc := st.Threads[0].IPC(st.Cycles)
	return sim.Result{
		Workload:   workload.Workload{Threads: 1, Names: []string{name}},
		Policy:     pol.Name(),
		Stats:      st,
		IPCs:       []float64{ipc},
		Throughput: ipc,
	}, nil
}

// run returns the memoised result of one (cfg, workload, policy) cell — the
// workload-cell convenience form of RunCell — in the suite's execution mode.
func (s *Suite) run(cfg config.Config, w workload.Workload, pn PolicyName) (sim.Result, error) {
	return s.RunCell(s.applyCellMode(cellOf(cfg, w, pn)))
}

// engine returns the suite's engine, defaulting to GOMAXPROCS workers for
// zero-value suites built by tests.
func (s *Suite) engine() *sim.Engine {
	if s.Engine == nil {
		s.Engine = sim.NewEngine(0)
	}
	return s.Engine
}

// Prefetch computes every cell of a sweep on the worker pool, filling the
// memo (and the store, if attached). Cells already computed (or in flight
// from an earlier figure) cost one memo probe. The first error in submission
// order is returned, matching what a serial run would have reported.
// Prefetch applies the suite's execution mode to each cell first, exactly as
// the render loops do, so a sampled suite prefetches the sampled sweep.
func (s *Suite) Prefetch(cells []campaign.Cell) error {
	errs := make([]error, len(cells))
	s.engine().RunLabeled(len(cells),
		func(i int) string { return s.applyCellMode(cells[i]).Key() },
		func(i int) { _, errs[i] = s.runCell(s.applyCellMode(cells[i])) })
	return sim.FirstError(errs)
}

// cellOf builds the campaign cell of one (config, workload, policy) run.
func cellOf(cfg config.Config, w workload.Workload, pn PolicyName) campaign.Cell {
	return campaign.Cell{Cfg: cfg, WID: w.ID(), Pol: string(pn)}
}

// kindCells enumerates the cells of all four groups of one (threads, kind)
// workload type under each policy.
func kindCells(cfg config.Config, threads int, kind workload.Kind, pns ...PolicyName) []campaign.Cell {
	var cells []campaign.Cell
	for _, w := range workload.Groups(threads, kind) {
		for _, pn := range pns {
			cells = append(cells, cellOf(cfg, w, pn))
		}
	}
	return cells
}

// allWorkloadCells enumerates cells for every Table 4 workload under each
// policy.
func allWorkloadCells(cfg config.Config, pns ...PolicyName) []campaign.Cell {
	var cells []campaign.Cell
	for _, w := range workload.All() {
		for _, pn := range pns {
			cells = append(cells, cellOf(cfg, w, pn))
		}
	}
	return cells
}

// kindAverages runs all four groups of (threads, kind) under pn and returns
// the mean throughput and mean Hmean, the paper's per-workload-type summary.
func (s *Suite) kindAverages(cfg config.Config, threads int, kind workload.Kind, pn PolicyName) (tp, hm float64, err error) {
	var tps, hms []float64
	for _, w := range workload.Groups(threads, kind) {
		r, err := s.run(cfg, w, pn)
		if err != nil {
			return 0, 0, err
		}
		tps = append(tps, r.Throughput)
		hms = append(hms, r.Hmean)
	}
	return metrics.Mean(tps), metrics.Mean(hms), nil
}

// allWorkloadAverages averages throughput/Hmean over all 36 workloads.
func (s *Suite) allWorkloadAverages(cfg config.Config, pn PolicyName) (tp, hm float64, err error) {
	var tps, hms []float64
	for _, w := range workload.All() {
		r, err := s.run(cfg, w, pn)
		if err != nil {
			return 0, 0, err
		}
		tps = append(tps, r.Throughput)
		hms = append(hms, r.Hmean)
	}
	return metrics.Mean(tps), metrics.Mean(hms), nil
}

// threadCounts and kind order used by per-type reports.
var threadCounts = []int{2, 3, 4}
