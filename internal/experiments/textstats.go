package experiments

import (
	"dcra/internal/campaign"
	"dcra/internal/config"
	"dcra/internal/metrics"
	"dcra/internal/report"
	"dcra/internal/workload"
)

// ActivityResult quantifies front-end work: total fetched uops under
// FLUSH++ relative to DCRA (the paper's "FLUSH++ fetches 108% more
// instructions" measurement at 300-cycle latency, 118% at 500).
type ActivityResult struct {
	MemLatency     int
	ExtraFetchPct  float64 // (fetched(FLUSH++)/fetched(DCRA) - 1) * 100
	FetchedFlushPP uint64
	FetchedDCRA    uint64
}

// activityConfig is the configuration measured at one latency point.
func activityConfig(memLatency int) config.Config {
	l2 := map[int]int{100: 10, 300: 20, 500: 25}[memLatency]
	if l2 == 0 {
		l2 = config.Baseline().L2.Latency
	}
	return config.Baseline().WithMemLatency(memLatency, l2)
}

// ActivityLatencies are the latency points of the paper's front-end
// activity measurement.
var ActivityLatencies = []int{300, 500}

// ActivitySweep declares the measurement's cells: all 36 workloads under
// FLUSH++ and DCRA at each reported latency point.
func ActivitySweep() campaign.Sweep {
	s := campaign.Sweep{Name: "activity"}
	for _, lat := range ActivityLatencies {
		s.Cells = append(s.Cells, allWorkloadCells(activityConfig(lat), PolFlushPP, PolDCRA)...)
	}
	return s
}

// FrontEndActivity measures the re-fetch overhead FLUSH++ pays for its
// squashes, summed over all 36 workloads, at the given memory latency
// (paired with the paper's matching L2 latency).
func FrontEndActivity(s *Suite, memLatency int) (ActivityResult, error) {
	cfg := activityConfig(memLatency)
	if err := s.Prefetch(allWorkloadCells(cfg, PolFlushPP, PolDCRA)); err != nil {
		return ActivityResult{MemLatency: memLatency}, err
	}
	res := ActivityResult{MemLatency: memLatency}
	for _, w := range workload.All() {
		rf, err := s.run(cfg, w, PolFlushPP)
		if err != nil {
			return res, err
		}
		rd, err := s.run(cfg, w, PolDCRA)
		if err != nil {
			return res, err
		}
		res.FetchedFlushPP += rf.Stats.TotalFetched()
		res.FetchedDCRA += rd.Stats.TotalFetched()
	}
	if res.FetchedDCRA > 0 {
		res.ExtraFetchPct = 100 * (float64(res.FetchedFlushPP)/float64(res.FetchedDCRA) - 1)
	}
	return res, nil
}

// ActivityReport renders the front-end activity comparison.
func ActivityReport(results []ActivityResult) *report.Table {
	t := report.NewTable("Front-end activity: extra fetch work of FLUSH++ over DCRA",
		"mem latency", "FLUSH++ fetched", "DCRA fetched", "extra %")
	for _, r := range results {
		t.AddRow(r.MemLatency, r.FetchedFlushPP, r.FetchedDCRA, r.ExtraFetchPct)
	}
	t.AddNote("paper: +108%% at 300 cycles, +118%% at 500 (FLUSH++ redoes squashed work)")
	return t
}

// MLPResult is the average memory-level parallelism (overlapped main-memory
// misses) per workload kind under DCRA and FLUSH++.
type MLPResult struct {
	Kind        workload.Kind
	DCRA        float64
	FlushPP     float64
	IncreasePct float64
}

// MLPSweep declares the measurement's cells: all 36 workloads under DCRA
// and FLUSH++ on the baseline configuration.
func MLPSweep() campaign.Sweep {
	return campaign.Sweep{
		Name:  "mlp",
		Cells: allWorkloadCells(config.Baseline(), PolDCRA, PolFlushPP),
	}
}

// MemoryParallelism reproduces the paper's overlapping-miss measurement:
// DCRA lets missing threads keep issuing loads, raising MLP over FLUSH++
// (paper: +22% ILP, +32% MIX, ~+0.5% MEM; +18% average).
func MemoryParallelism(s *Suite) ([]MLPResult, error) {
	cfg := config.Baseline()
	if err := s.Prefetch(MLPSweep().Cells); err != nil {
		return nil, err
	}
	var out []MLPResult
	for _, kind := range workload.Kinds {
		var dv, fv []float64
		for _, n := range threadCounts {
			for _, w := range workload.Groups(n, kind) {
				rd, err := s.run(cfg, w, PolDCRA)
				if err != nil {
					return nil, err
				}
				rf, err := s.run(cfg, w, PolFlushPP)
				if err != nil {
					return nil, err
				}
				dv = append(dv, rd.Stats.AvgMLP())
				fv = append(fv, rf.Stats.AvgMLP())
			}
		}
		r := MLPResult{Kind: kind, DCRA: metrics.Mean(dv), FlushPP: metrics.Mean(fv)}
		r.IncreasePct = metrics.Improvement(r.DCRA, r.FlushPP)
		out = append(out, r)
	}
	return out, nil
}

// MLPReport renders the MLP comparison.
func MLPReport(rows []MLPResult) *report.Table {
	t := report.NewTable("Memory parallelism: avg overlapped L2 misses",
		"workload kind", "DCRA", "FLUSH++", "increase %")
	for _, r := range rows {
		t.AddRow(string(r.Kind), r.DCRA, r.FlushPP, r.IncreasePct)
	}
	t.AddNote("paper: DCRA overlaps ~18%% more misses on average (+22%% ILP, +32%% MIX, ~0.5%% MEM)")
	return t
}
