package experiments

import (
	"encoding/json"
	"reflect"
	"testing"

	"dcra/internal/campaign"
	"dcra/internal/config"
	"dcra/internal/obs"
	"dcra/internal/sched"
)

// TestFigure5BitIdenticalWithTelemetry is the telemetry layer's
// non-interference contract on the paper's headline experiment: running
// Figure 5 with the full observability stack attached (metrics registry,
// span tracer, engine, pool and sampled-run instrumentation) must produce
// bit-identical results to an uninstrumented run — and the instruments must
// actually have seen the work.
func TestFigure5BitIdenticalWithTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}

	plain := determinismSuite(8)
	ref, err := Figure5(plain)
	if err != nil {
		t.Fatal(err)
	}

	instrumented := determinismSuite(8)
	reg := obs.NewRegistry()
	tracer := obs.NewTracer()
	instrumented.Instrument(reg, tracer)
	// The fleet-health layer samples live registries into time-series rings
	// while work runs; do the same here so the bit-identity contract covers
	// concurrent ring sampling, not just passive instrument attachment.
	ring := obs.NewRing(64)
	stopSampling := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		at := int64(0)
		for {
			select {
			case <-stopSampling:
				return
			default:
				at++
				ring.Record(at, reg.Snapshot())
			}
		}
	}()
	got, err := Figure5(instrumented)
	close(stopSampling)
	<-samplerDone
	ring.Record(1 << 30, reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(ref, got) {
		t.Errorf("Figure 5 diverges under telemetry:\nplain:        %+v\ninstrumented: %+v", ref, got)
	}
	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(refJSON) != string(gotJSON) {
		t.Error("Figure 5 serializes differently under telemetry")
	}

	// The run must also have been observed: cells counted and spanned, the
	// machine pool consulted.
	snap := reg.Snapshot()
	started, done := snap.Counters["engine.cells.started"], snap.Counters["engine.cells.done"]
	if started == 0 || started != done {
		t.Errorf("engine counted %d cells started, %d done; want equal and > 0", started, done)
	}
	if snap.Counters["pool.machine.hits"]+snap.Counters["pool.machine.misses"] == 0 {
		t.Error("machine pool saw no traffic under an instrumented suite")
	}
	if h := snap.Histograms["engine.cell.us"]; h.Count != done {
		t.Errorf("engine.cell.us observed %d durations, want %d", h.Count, done)
	}
	if tracer.Len() == 0 {
		t.Error("tracer recorded no spans for an instrumented Figure 5 run")
	}

	// The ring sampled the run while it was live: its newest cumulative
	// snapshot agrees with the final registry state, and a windowed delta
	// never exceeds the total (the hot sampler overflows the ring, so the
	// window spans oldest-held to newest, not all of history).
	if ring.Len() < 2 {
		t.Fatalf("sampler recorded %d ring intervals, want >= 2", ring.Len())
	}
	iv := ring.Intervals()
	if newest := iv[len(iv)-1].Snap.Counters["engine.cells.done"]; newest != done {
		t.Errorf("ring's newest sample saw %d cells done, registry says %d", newest, done)
	}
	if win, fromAt, toAt, ok := ring.Window(0); !ok {
		t.Error("ring window unavailable after sampling")
	} else if d := win.Counters["engine.cells.done"]; d < 0 || d > done || fromAt >= toAt {
		t.Errorf("ring window delta %d over [%d,%d] inconsistent with %d total cells",
			d, fromAt, toAt, done)
	}
}

// TestSchedExperimentBitIdenticalWithHealth extends the same contract to
// the open-system scheduler experiment: attaching the fleet-health layer
// (turnaround SLOs evaluated over a cycle-domain health ring) to sched
// trial cells must leave every cell's result bit-identical.
func TestSchedExperimentBitIdenticalWithHealth(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}

	plain := determinismSuite(4)
	healthy := determinismSuite(4)
	healthy.SchedSLOs = []sched.SLOSpec{
		{Class: sched.ClassAll, Quantile: 0.99, Target: schedMaxCycles(healthy)},
		{Class: sched.ClassMEM, Quantile: 0.5, Target: 50_000},
	}
	healthy.SchedHealthEvery = 10_000

	cfg := config.Baseline()
	for _, a := range SchedArrivalPoints()[:2] {
		for _, alloc := range SchedAllocs {
			c := campaign.Cell{
				Cfg: cfg,
				WID: schedWID(schedContexts, a, schedBudget),
				Pol: SchedPickers[0] + "+" + string(alloc),
			}
			ref, err := plain.RunCell(c)
			if err != nil {
				t.Fatal(err)
			}
			got, err := healthy.RunCell(c)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("sched cell %s diverges under the health layer:\nplain:   %+v\nhealthy: %+v", c, ref, got)
			}
		}
	}
}
