package experiments

import (
	"encoding/json"
	"reflect"
	"testing"

	"dcra/internal/obs"
)

// TestFigure5BitIdenticalWithTelemetry is the telemetry layer's
// non-interference contract on the paper's headline experiment: running
// Figure 5 with the full observability stack attached (metrics registry,
// span tracer, engine, pool and sampled-run instrumentation) must produce
// bit-identical results to an uninstrumented run — and the instruments must
// actually have seen the work.
func TestFigure5BitIdenticalWithTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}

	plain := determinismSuite(8)
	ref, err := Figure5(plain)
	if err != nil {
		t.Fatal(err)
	}

	instrumented := determinismSuite(8)
	reg := obs.NewRegistry()
	tracer := obs.NewTracer()
	instrumented.Instrument(reg, tracer)
	got, err := Figure5(instrumented)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(ref, got) {
		t.Errorf("Figure 5 diverges under telemetry:\nplain:        %+v\ninstrumented: %+v", ref, got)
	}
	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(refJSON) != string(gotJSON) {
		t.Error("Figure 5 serializes differently under telemetry")
	}

	// The run must also have been observed: cells counted and spanned, the
	// machine pool consulted.
	snap := reg.Snapshot()
	started, done := snap.Counters["engine.cells.started"], snap.Counters["engine.cells.done"]
	if started == 0 || started != done {
		t.Errorf("engine counted %d cells started, %d done; want equal and > 0", started, done)
	}
	if snap.Counters["pool.machine.hits"]+snap.Counters["pool.machine.misses"] == 0 {
		t.Error("machine pool saw no traffic under an instrumented suite")
	}
	if h := snap.Histograms["engine.cell.us"]; h.Count != done {
		t.Errorf("engine.cell.us observed %d durations, want %d", h.Count, done)
	}
	if tracer.Len() == 0 {
		t.Error("tracer recorded no spans for an instrumented Figure 5 run")
	}
}
