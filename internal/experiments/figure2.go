package experiments

import (
	"fmt"

	"dcra/internal/campaign"
	"dcra/internal/config"
	"dcra/internal/cpu"
	"dcra/internal/report"
	"dcra/internal/trace"
)

// Figure2Fractions are the resource fractions swept in the paper (percent).
var Figure2Fractions = []float64{12.5, 25, 37.5, 50, 62.5, 75, 87.5, 100}

// Figure2Resources are the five curves of the figure.
var Figure2Resources = []cpu.Resource{
	cpu.RIntIQ, cpu.RLSIQ, cpu.RFPIQ, cpu.RIntRegs, cpu.RFPRegs,
}

// Figure2Result holds the averaged curves: PercentOfFull[r][i] is the mean
// fraction of full-speed IPC with Figure2Fractions[i] percent of resource r.
type Figure2Result struct {
	PercentOfFull map[cpu.Resource][]float64
}

// figure2Config is the paper's setup for this experiment: 160 rename
// registers, 32-entry issue queues, perfect data L1.
func figure2Config() config.Config {
	cfg := config.Baseline()
	cfg.IntQueue, cfg.FPQueue, cfg.LSQueue = 32, 32, 32
	cfg.PhysRegs = 160 + cfg.ArchRegs // 160 rename registers single-threaded
	cfg.PerfectDCache = true
	return cfg
}

// figure2Run is one point of the restriction grid, tied to its cell.
type figure2Run struct {
	name string
	rc   cpu.Resource
	frac int // index into Figure2Fractions
	cell campaign.Cell
}

// figure2Runs enumerates the restriction grid: per the paper's footnote,
// FP-resource curves average only the FP benchmarks.
func figure2Runs(benchmarks []string) []figure2Run {
	cfg := figure2Config()
	var runs []figure2Run
	for _, name := range benchmarks {
		prof := trace.MustProfile(name)
		for _, rc := range Figure2Resources {
			if rc.IsFP() && !prof.FP {
				continue // FP curves average FP benchmarks only
			}
			for i, frac := range Figure2Fractions {
				runs = append(runs, figure2Run{
					name: name, rc: rc, frac: i,
					cell: benchCell(cfg, name, capPolName(rc, frac)),
				})
			}
		}
	}
	return runs
}

// Figure2Sweep declares the figure's cells: one full-speed ICOUNT baseline
// per benchmark (the restriction ratios divide by it) plus the whole
// (benchmark, resource, fraction) restriction grid. nil selects the full
// Table 3 suite.
func Figure2Sweep(benchmarks []string) campaign.Sweep {
	if benchmarks == nil {
		benchmarks = trace.Names()
	}
	cfg := figure2Config()
	s := campaign.Sweep{Name: "fig2"}
	for _, name := range benchmarks {
		s.Cells = append(s.Cells, benchCell(cfg, name, polBase))
	}
	for _, r := range figure2Runs(benchmarks) {
		s.Cells = append(s.Cells, r.cell)
	}
	return s
}

// Figure2 reproduces the paper's Figure 2: single-thread IPC (relative to
// full speed) as one resource class is restricted, averaged over the
// benchmarks. The `benchmarks` argument subsets the suite (nil = all).
//
// The declared sweep is executed on the suite's worker pool; the render loop
// below consumes exactly the sweep's cells, so accumulation over the
// completed grid is deterministic.
func Figure2(s *Suite, benchmarks []string) (Figure2Result, error) {
	if benchmarks == nil {
		benchmarks = trace.Names()
	}
	cfg := figure2Config()
	res := Figure2Result{PercentOfFull: make(map[cpu.Resource][]float64)}
	if err := s.Prefetch(Figure2Sweep(benchmarks).Cells); err != nil {
		return res, err
	}

	// Full-speed baselines: the restriction ratios divide by them.
	full := make(map[string]float64, len(benchmarks))
	for _, name := range benchmarks {
		r, err := s.RunCell(benchCell(cfg, name, polBase))
		if err != nil {
			return res, err
		}
		if r.IPCs[0] <= 0 {
			return res, fmt.Errorf("experiments: %s has zero full-speed IPC", name)
		}
		full[name] = r.IPCs[0]
	}

	type curveAcc struct {
		sum []float64
		n   int
	}
	acc := make(map[cpu.Resource]*curveAcc)
	for _, rc := range Figure2Resources {
		acc[rc] = &curveAcc{sum: make([]float64, len(Figure2Fractions))}
	}
	type benchResource struct {
		name string
		rc   cpu.Resource
	}
	seen := make(map[benchResource]bool) // (name, resource) pairs counted once
	for _, t := range figure2Runs(benchmarks) {
		r, err := s.RunCell(t.cell)
		if err != nil {
			return res, err
		}
		a := acc[t.rc]
		if k := (benchResource{t.name, t.rc}); !seen[k] {
			seen[k] = true
			a.n++
		}
		a.sum[t.frac] += r.IPCs[0] / full[t.name]
	}
	for _, rc := range Figure2Resources {
		a := acc[rc]
		curve := make([]float64, len(Figure2Fractions))
		for i := range curve {
			if a.n > 0 {
				curve[i] = a.sum[i] / float64(a.n)
			}
		}
		res.PercentOfFull[rc] = curve
	}
	return res, nil
}

// totalOf mirrors Machine.Total for a single-thread configuration without
// building a machine.
func totalOf(cfg config.Config, r cpu.Resource) int {
	switch r {
	case cpu.RIntIQ:
		return cfg.IntQueue
	case cpu.RFPIQ:
		return cfg.FPQueue
	case cpu.RLSIQ:
		return cfg.LSQueue
	case cpu.RIntRegs, cpu.RFPRegs:
		return cfg.RenameRegs(1)
	case cpu.RROB:
		return cfg.ROBSize
	}
	return 0
}

// Report renders the curves.
func (f Figure2Result) Report() *report.Table {
	cols := []string{"% of resource"}
	for _, rc := range Figure2Resources {
		cols = append(cols, rc.String())
	}
	t := report.NewTable("Figure 2: % of full speed vs % of one resource (single thread, perfect L1D)", cols...)
	for i, frac := range Figure2Fractions {
		row := []any{fmt.Sprintf("%.1f", frac)}
		for _, rc := range Figure2Resources {
			row = append(row, fmt.Sprintf("%.3f", f.PercentOfFull[rc][i]))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper shape: ~90%% of full speed at 37.5%% of resources; FP columns average FP benchmarks only")
	return t
}
