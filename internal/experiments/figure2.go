package experiments

import (
	"fmt"

	"dcra/internal/config"
	"dcra/internal/cpu"
	"dcra/internal/report"
	"dcra/internal/sim"
	"dcra/internal/trace"
)

// Figure2Fractions are the resource fractions swept in the paper (percent).
var Figure2Fractions = []float64{12.5, 25, 37.5, 50, 62.5, 75, 87.5, 100}

// Figure2Resources are the five curves of the figure.
var Figure2Resources = []cpu.Resource{
	cpu.RIntIQ, cpu.RLSIQ, cpu.RFPIQ, cpu.RIntRegs, cpu.RFPRegs,
}

// Figure2Result holds the averaged curves: PercentOfFull[r][i] is the mean
// fraction of full-speed IPC with Figure2Fractions[i] percent of resource r.
type Figure2Result struct {
	PercentOfFull map[cpu.Resource][]float64
}

// figure2Config is the paper's setup for this experiment: 160 rename
// registers, 32-entry issue queues, perfect data L1.
func figure2Config() config.Config {
	cfg := config.Baseline()
	cfg.IntQueue, cfg.FPQueue, cfg.LSQueue = 32, 32, 32
	cfg.PhysRegs = 160 + cfg.ArchRegs // 160 rename registers single-threaded
	cfg.PerfectDCache = true
	return cfg
}

// Figure2 reproduces the paper's Figure 2: single-thread IPC (relative to
// full speed) as one resource class is restricted, averaged over the
// benchmarks. Per the paper's footnote, FP-resource curves average only the
// FP benchmarks. The `benchmarks` argument subsets the suite (nil = all).
//
// The (benchmark, resource, fraction) restriction runs are enumerated up
// front and executed on the suite's worker pool; each task writes only its
// own slot, so accumulation over the completed grid is deterministic.
func Figure2(s *Suite, benchmarks []string) (Figure2Result, error) {
	if benchmarks == nil {
		benchmarks = trace.Names()
	}
	r := s.Runner
	cfg := figure2Config()
	res := Figure2Result{PercentOfFull: make(map[cpu.Resource][]float64)}

	// Full-speed baselines first: the restriction tasks divide by them.
	baseErrs := make([]error, len(benchmarks))
	s.engine().Run(len(benchmarks), func(i int) {
		_, baseErrs[i] = r.SingleIPC(cfg, benchmarks[i])
	})
	if err := sim.FirstError(baseErrs); err != nil {
		return res, err
	}

	type capRun struct {
		name string
		rc   cpu.Resource
		frac int     // index into Figure2Fractions
		full float64 // full-speed IPC, validated > 0 during enumeration

		ratio float64 // filled by the worker: capped IPC / full IPC
		err   error
	}
	var runs []capRun
	for _, name := range benchmarks {
		prof := trace.MustProfile(name)
		full, err := r.SingleIPC(cfg, name)
		if err != nil {
			return res, err
		}
		if full <= 0 {
			return res, fmt.Errorf("experiments: %s has zero full-speed IPC", name)
		}
		for _, rc := range Figure2Resources {
			if rc.IsFP() && !prof.FP {
				continue // FP curves average FP benchmarks only
			}
			for i := range Figure2Fractions {
				runs = append(runs, capRun{name: name, rc: rc, frac: i, full: full})
			}
		}
	}
	s.engine().Run(len(runs), func(i int) {
		t := &runs[i]
		capPol := &sim.CapPolicy{}
		capPol.Caps[t.rc] = max(1, int(float64(totalOf(cfg, t.rc))*Figure2Fractions[t.frac]/100))
		m, err := r.RunMachine(cfg, []trace.Profile{trace.MustProfile(t.name)}, capPol)
		if err != nil {
			t.err = err
			return
		}
		st := m.Stats()
		t.ratio = st.Threads[0].IPC(st.Cycles) / t.full
	})

	type curveAcc struct {
		sum []float64
		n   int
	}
	acc := make(map[cpu.Resource]*curveAcc)
	for _, rc := range Figure2Resources {
		acc[rc] = &curveAcc{sum: make([]float64, len(Figure2Fractions))}
	}
	type benchResource struct {
		name string
		rc   cpu.Resource
	}
	seen := make(map[benchResource]bool) // (name, resource) pairs counted once
	for i := range runs {
		t := &runs[i]
		if t.err != nil {
			return res, t.err
		}
		a := acc[t.rc]
		if k := (benchResource{t.name, t.rc}); !seen[k] {
			seen[k] = true
			a.n++
		}
		a.sum[t.frac] += t.ratio
	}
	for _, rc := range Figure2Resources {
		a := acc[rc]
		curve := make([]float64, len(Figure2Fractions))
		for i := range curve {
			if a.n > 0 {
				curve[i] = a.sum[i] / float64(a.n)
			}
		}
		res.PercentOfFull[rc] = curve
	}
	return res, nil
}

// totalOf mirrors Machine.Total for a single-thread configuration without
// building a machine.
func totalOf(cfg config.Config, r cpu.Resource) int {
	switch r {
	case cpu.RIntIQ:
		return cfg.IntQueue
	case cpu.RFPIQ:
		return cfg.FPQueue
	case cpu.RLSIQ:
		return cfg.LSQueue
	case cpu.RIntRegs, cpu.RFPRegs:
		return cfg.RenameRegs(1)
	case cpu.RROB:
		return cfg.ROBSize
	}
	return 0
}

// Figure2Report renders the curves.
func (f Figure2Result) Report() *report.Table {
	cols := []string{"% of resource"}
	for _, rc := range Figure2Resources {
		cols = append(cols, rc.String())
	}
	t := report.NewTable("Figure 2: % of full speed vs % of one resource (single thread, perfect L1D)", cols...)
	for i, frac := range Figure2Fractions {
		row := []any{fmt.Sprintf("%.1f", frac)}
		for _, rc := range Figure2Resources {
			row = append(row, fmt.Sprintf("%.3f", f.PercentOfFull[rc][i]))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper shape: ~90%% of full speed at 37.5%% of resources; FP columns average FP benchmarks only")
	return t
}
