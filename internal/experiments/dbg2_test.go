package experiments

import (
	"fmt"
	"testing"

	"dcra/internal/config"
	"dcra/internal/workload"
)

func TestDebugMEM2(t *testing.T) {
	s := NewQuickSuite()
	cfg := config.Baseline()
	w, _ := workload.Get(2, workload.MEM, 1) // mcf, twolf
	for _, pn := range []PolicyName{PolICount, PolStall, PolFlush, PolFlushPP, PolDCRA} {
		r, err := s.run(cfg, w, pn)
		if err != nil {
			t.Fatal(err)
		}
		st := r.Stats
		fmt.Printf("%-8s tp=%.3f hm=%.3f ipc=[%.3f %.3f] fetchStall=[%d %d] flushes=[%d %d] squash=[%d %d]\n",
			pn, r.Throughput, r.Hmean, r.IPCs[0], r.IPCs[1],
			st.Threads[0].FetchStalled, st.Threads[1].FetchStalled,
			st.Threads[0].Flushes, st.Threads[1].Flushes,
			st.Threads[0].Squashed, st.Threads[1].Squashed)
	}
}
