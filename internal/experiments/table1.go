package experiments

import (
	"dcra/internal/core"
	"dcra/internal/report"
)

// Table1Row is one row of the paper's Table 1: the pre-computed E_slow for
// a 32-entry resource on a 4-thread processor.
type Table1Row struct {
	Entry, FA, SA, Eslow int
}

// Table1 regenerates the paper's Table 1 with the sharing model
// (C = 1/(FA+SA), the dynamic form the table was computed with).
func Table1() []Table1Row {
	const (
		resource = 32
		threads  = 4
	)
	var rows []Table1Row
	entry := 0
	// The paper enumerates all (FA, SA) combinations with SA >= 1 and
	// FA+SA <= threads, ordered by total active count, then descending FA.
	for total := 1; total <= threads; total++ {
		for fa := total - 1; fa >= 0; fa-- {
			sa := total - fa
			entry++
			rows = append(rows, Table1Row{
				Entry: entry,
				FA:    fa,
				SA:    sa,
				Eslow: core.Eslow(resource, threads, fa, sa, core.CActive),
			})
		}
	}
	return rows
}

// PaperTable1 holds the values printed in the paper, keyed by (FA, SA),
// for the golden reproduction test.
var PaperTable1 = map[[2]int]int{
	{0, 1}: 32, {1, 1}: 24, {0, 2}: 16, {2, 1}: 18, {1, 2}: 14,
	{0, 3}: 11, {3, 1}: 14, {2, 2}: 12, {1, 3}: 10, {0, 4}: 8,
}

// Table1Report renders Table 1 next to the paper's values.
func Table1Report() *report.Table {
	t := report.NewTable("Table 1: E_slow for a 32-entry resource, 4 threads",
		"entry", "FA", "SA", "E_slow", "paper")
	for _, r := range Table1() {
		t.AddRow(r.Entry, r.FA, r.SA, r.Eslow, PaperTable1[[2]int{r.FA, r.SA}])
	}
	t.AddNote("sharing factor C = 1/(FA+SA); exact match with the paper is a golden test")
	return t
}
