package experiments

import (
	"reflect"
	"testing"
)

// sampledDeterminismSuite is determinismSuite in sampled execution mode.
func sampledDeterminismSuite(workers int) *Suite {
	s := determinismSuite(workers)
	s.Mode = "sampled"
	return s
}

// TestSampledDeterminism runs the same cells in sampled mode on a serial
// engine, a parallel engine, and a pool-less runner, and requires
// bit-identical results — including every per-window throughput in the
// sampling summary. Run under -race this also exercises the sampled
// baseline cache.
func TestSampledDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	cells := determinismCells()

	serial := sampledDeterminismSuite(1)
	parallel := sampledDeterminismSuite(8)
	fresh := sampledDeterminismSuite(8)
	fresh.Runner.Pool = nil
	for _, s := range []*Suite{serial, parallel, fresh} {
		if err := s.Prefetch(cells); err != nil {
			t.Fatal(err)
		}
	}

	for _, c := range cells {
		c = serial.applyCellMode(c)
		rs, err := serial.RunCell(c)
		if err != nil {
			t.Fatal(err)
		}
		id := c.WID + "/" + c.Pol
		if rs.Sampled == nil {
			t.Fatalf("%s: sampled-mode cell carries no sampling summary", id)
		}
		for name, other := range map[string]*Suite{"parallel": parallel, "pool-less": fresh} {
			ro, err := other.RunCell(c)
			if err != nil {
				t.Fatal(err)
			}
			if rs.Throughput != ro.Throughput {
				t.Errorf("%s: throughput %v (serial) != %v (%s)", id, rs.Throughput, ro.Throughput, name)
			}
			if rs.Hmean != ro.Hmean || rs.WSpeedup != ro.WSpeedup {
				t.Errorf("%s: derived metrics differ from %s run", id, name)
			}
			if !reflect.DeepEqual(rs.Sampled, ro.Sampled) {
				t.Errorf("%s: sampling summaries differ between serial and %s:\n%+v\nvs\n%+v",
					id, name, rs.Sampled, ro.Sampled)
			}
			if !reflect.DeepEqual(rs.Stats, ro.Stats) {
				t.Errorf("%s: aggregate stats differ between serial and %s", id, name)
			}
		}
	}
}

// TestFigure5Parity is the SMARTS accuracy contract at the quick-protocol
// scale benchjson and CI measure: every Figure 5 cell's sampled throughput
// must land within its reported 99.7% confidence interval of the exact
// value. This is the most expensive test in the repo (a full exact plus a
// full sampled quick sweep); -short skips it.
func TestFigure5Parity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	exact := NewQuickSuite()
	exact.Runner.Warmup, exact.Runner.Measure = 15_000, 60_000
	sampled := NewQuickSuite()
	sampled.Runner.Warmup, sampled.Runner.Measure = 15_000, 60_000
	sampled.Mode = "sampled"

	rows, st, err := Figure5Parity(exact, sampled)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != len(rows) || st.Cells == 0 {
		t.Fatalf("parity covered %d cells, rows %d", st.Cells, len(rows))
	}
	for _, r := range rows {
		if !r.Within {
			t.Errorf("%s/%s: sampled %.4f outside exact %.4f +/- %.4f",
				r.Cell.WID, r.Cell.Pol, r.Sampled, r.Exact, r.CI)
		}
	}
	if !st.AllWithin {
		t.Errorf("parity: %d/%d cells within CI", st.WithinCI, st.Cells)
	}
	// Guard against the trivial pass where intervals are uselessly wide or
	// the estimates drift: mean |error| stays well under typical cell
	// throughput even while every cell clears its own interval.
	if st.MeanAbsErr > 0.5 {
		t.Errorf("mean |sampled - exact| = %.4f IPC, want <= 0.5", st.MeanAbsErr)
	}
}
