package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"testing"

	"dcra/internal/campaign"
	"dcra/internal/config"
	"dcra/internal/sample"
	"dcra/internal/sim"
	"dcra/internal/workload"
)

// sampledDeterminismSuite is determinismSuite in sampled execution mode.
func sampledDeterminismSuite(workers int) *Suite {
	s := determinismSuite(workers)
	s.Mode = "sampled"
	return s
}

// adaptiveDeterminismSuite is sampledDeterminismSuite with the variance-
// driven protocol stamped on: cells carry the adaptive schedule in their
// config, exactly as `campaign run -adaptive` produces them.
func adaptiveDeterminismSuite(workers int) *Suite {
	s := sampledDeterminismSuite(workers)
	s.Sampling = sample.DeriveAdaptive(s.Runner.Warmup, s.Runner.Measure).Config()
	return s
}

// TestSampledDeterminism runs the same cells in sampled mode on a serial
// engine, a parallel engine, and a pool-less runner, and requires
// bit-identical results — including every per-window throughput in the
// sampling summary. Run under -race this also exercises the sampled
// baseline cache.
func TestSampledDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	cells := determinismCells()

	serial := sampledDeterminismSuite(1)
	parallel := sampledDeterminismSuite(8)
	fresh := sampledDeterminismSuite(8)
	fresh.Runner.Pool = nil
	for _, s := range []*Suite{serial, parallel, fresh} {
		if err := s.Prefetch(cells); err != nil {
			t.Fatal(err)
		}
	}

	for _, c := range cells {
		c = serial.applyCellMode(c)
		rs, err := serial.RunCell(c)
		if err != nil {
			t.Fatal(err)
		}
		id := c.WID + "/" + c.Pol
		if rs.Sampled == nil {
			t.Fatalf("%s: sampled-mode cell carries no sampling summary", id)
		}
		for name, other := range map[string]*Suite{"parallel": parallel, "pool-less": fresh} {
			ro, err := other.RunCell(c)
			if err != nil {
				t.Fatal(err)
			}
			if rs.Throughput != ro.Throughput {
				t.Errorf("%s: throughput %v (serial) != %v (%s)", id, rs.Throughput, ro.Throughput, name)
			}
			if rs.Hmean != ro.Hmean || rs.WSpeedup != ro.WSpeedup {
				t.Errorf("%s: derived metrics differ from %s run", id, name)
			}
			if !reflect.DeepEqual(rs.Sampled, ro.Sampled) {
				t.Errorf("%s: sampling summaries differ between serial and %s:\n%+v\nvs\n%+v",
					id, name, rs.Sampled, ro.Sampled)
			}
			if !reflect.DeepEqual(rs.Stats, ro.Stats) {
				t.Errorf("%s: aggregate stats differ between serial and %s", id, name)
			}
		}
	}
}

// TestAdaptiveDeterminism is TestSampledDeterminism for the variance-driven
// protocol: the same adaptive cells on a serial engine, a parallel engine
// sharing the machine pool, and a pool-less runner must agree bit-for-bit —
// including where the stopping rule landed (the retained window values ARE
// the observable; a data race or order dependence in the sequential stopping
// path would move it). Run under -race this exercises the shared pool.
func TestAdaptiveDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	cells := determinismCells()

	serial := adaptiveDeterminismSuite(1)
	parallel := adaptiveDeterminismSuite(8)
	fresh := adaptiveDeterminismSuite(8)
	fresh.Runner.Pool = nil
	for _, s := range []*Suite{serial, parallel, fresh} {
		if err := s.Prefetch(cells); err != nil {
			t.Fatal(err)
		}
	}

	for _, c := range cells {
		c = serial.applyCellMode(c)
		rs, err := serial.RunCell(c)
		if err != nil {
			t.Fatal(err)
		}
		id := c.WID + "/" + c.Pol
		if rs.Sampled == nil {
			t.Fatalf("%s: adaptive cell carries no sampling summary", id)
		}
		if !rs.Sampled.Params.Adaptive() {
			t.Fatalf("%s: cell ran the fixed protocol: %+v", id, rs.Sampled.Params)
		}
		if k := len(rs.Sampled.WindowThroughput); k < rs.Sampled.Params.MinWindows || k > rs.Sampled.Params.Windows {
			t.Errorf("%s: retained %d windows, outside [%d, %d]",
				id, k, rs.Sampled.Params.MinWindows, rs.Sampled.Params.Windows)
		}
		for name, other := range map[string]*Suite{"parallel": parallel, "pool-less": fresh} {
			ro, err := other.RunCell(c)
			if err != nil {
				t.Fatal(err)
			}
			if rs.Throughput != ro.Throughput {
				t.Errorf("%s: throughput %v (serial) != %v (%s)", id, rs.Throughput, ro.Throughput, name)
			}
			if !reflect.DeepEqual(rs.Sampled, ro.Sampled) {
				t.Errorf("%s: sampling summaries differ between serial and %s:\n%+v\nvs\n%+v",
					id, name, rs.Sampled, ro.Sampled)
			}
			if !reflect.DeepEqual(rs.Stats, ro.Stats) {
				t.Errorf("%s: aggregate stats differ between serial and %s", id, name)
			}
		}
	}
}

// adaptiveFingerprint runs a small adaptive cell subset and digests the
// exact float bits of every determinism-relevant observable: throughput,
// CI half-width, and each retained window value, per cell key.
func adaptiveFingerprint(t *testing.T) string {
	t.Helper()
	s := adaptiveDeterminismSuite(2)
	cells := determinismCells()[:6]
	h := sha256.New()
	for _, c := range cells {
		c = s.applyCellMode(c)
		r, err := s.RunCell(c)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(h, "%s %x %x %x\n", c.Key(),
			math.Float64bits(r.Throughput),
			math.Float64bits(r.Sampled.ThroughputCI),
			len(r.Sampled.WindowThroughput))
		for _, w := range r.Sampled.WindowThroughput {
			fmt.Fprintf(h, "%x\n", math.Float64bits(w))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestAdaptiveCrossProcessDeterminism re-executes the test binary twice and
// compares adaptive fingerprints across the process boundary: the stopping
// rule must be a pure function of the seeded simulation, with no map-order,
// address or scheduling dependence leaking into where it stops.
func TestAdaptiveCrossProcessDeterminism(t *testing.T) {
	const env = "DCRA_ADAPTIVE_FP_CHILD"
	const marker = "adaptive-fp: "
	if os.Getenv(env) == "1" {
		fmt.Printf("%s%s\n", marker, adaptiveFingerprint(t))
		return
	}
	if testing.Short() {
		t.Skip("simulation test")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	want := adaptiveFingerprint(t)
	for i := 0; i < 2; i++ {
		cmd := exec.Command(exe, "-test.run", "^TestAdaptiveCrossProcessDeterminism$")
		cmd.Env = append(os.Environ(), env+"=1")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("child %d: %v\n%s", i, err, out)
		}
		_, after, found := strings.Cut(string(out), marker)
		if !found {
			t.Fatalf("child %d printed no fingerprint:\n%s", i, out)
		}
		got, _, _ := strings.Cut(after, "\n")
		if got != want {
			t.Errorf("child %d fingerprint %s != in-process %s", i, got, want)
		}
	}
}

// TestAdaptiveStoreSeparation pins the content-key contract that lets exact,
// fixed-sampled and adaptive-sampled results share one store: the three
// variants of a cell have pairwise distinct keys, and writing the sampled
// variants never perturbs the stored exact result. No simulation — the
// results are fabricated; only keying and store round-trips are under test.
func TestAdaptiveStoreSeparation(t *testing.T) {
	cfg := config.Baseline()
	w, err := workload.Get(2, workload.Kinds[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	exact := cellOf(cfg, w, PolDCRA)
	fixed := exact.Sampled()
	adaptive := adaptiveDeterminismSuite(1).applyCellMode(exact)
	if adaptive.Mode != campaign.ModeSampled || !adaptive.Cfg.Sampling.Enabled() {
		t.Fatalf("applyCellMode produced no adaptive cell: %+v", adaptive)
	}
	keys := map[string]string{
		exact.Key():    "exact",
		fixed.Key():    "fixed-sampled",
		adaptive.Key(): "adaptive-sampled",
	}
	if len(keys) != 3 {
		t.Fatalf("cell variants collide on content keys: %v", keys)
	}

	st, err := campaign.Open(t.TempDir(), campaign.Params{Warmup: 5_000, Measure: 20_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	exactResult := sim.Result{Workload: w, Policy: string(PolDCRA), Throughput: 2.5}
	if err := st.Put(exact, exactResult); err != nil {
		t.Fatal(err)
	}
	for _, c := range []campaign.Cell{fixed, adaptive} {
		if st.Has(c) {
			t.Errorf("%s: present in store before being written", c)
		}
		if err := st.Put(c, sim.Result{Workload: w, Policy: string(PolDCRA), Throughput: 9.9}); err != nil {
			t.Fatal(err)
		}
	}
	got, ok, err := st.Get(exact)
	if err != nil || !ok {
		t.Fatalf("exact cell lost after sampled writes: ok=%v err=%v", ok, err)
	}
	if got.Throughput != exactResult.Throughput {
		t.Errorf("exact cell overwritten: throughput %v, want %v", got.Throughput, exactResult.Throughput)
	}
}

// TestFigure5Parity is the SMARTS accuracy contract at the quick-protocol
// scale benchjson and CI measure: every Figure 5 cell's sampled throughput
// must land within its reported 99.7% confidence interval of the exact
// value. This is the most expensive test in the repo (a full exact plus a
// full sampled quick sweep); -short skips it.
func TestFigure5Parity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	exact := NewQuickSuite()
	exact.Runner.Warmup, exact.Runner.Measure = 15_000, 60_000
	sampled := NewQuickSuite()
	sampled.Runner.Warmup, sampled.Runner.Measure = 15_000, 60_000
	sampled.Mode = "sampled"

	rows, st, err := Figure5Parity(exact, sampled)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != len(rows) || st.Cells == 0 {
		t.Fatalf("parity covered %d cells, rows %d", st.Cells, len(rows))
	}
	for _, r := range rows {
		if !r.Within {
			t.Errorf("%s/%s: sampled %.4f outside exact %.4f +/- %.4f",
				r.Cell.WID, r.Cell.Pol, r.Sampled, r.Exact, r.CI)
		}
	}
	if !st.AllWithin {
		t.Errorf("parity: %d/%d cells within CI", st.WithinCI, st.Cells)
	}
	// Guard against the trivial pass where intervals are uselessly wide or
	// the estimates drift: mean |error| stays well under typical cell
	// throughput even while every cell clears its own interval.
	if st.MeanAbsErr > 0.5 {
		t.Errorf("mean |sampled - exact| = %.4f IPC, want <= 0.5", st.MeanAbsErr)
	}
}
