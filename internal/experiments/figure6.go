package experiments

import (
	"fmt"

	"dcra/internal/campaign"
	"dcra/internal/config"
	"dcra/internal/metrics"
	"dcra/internal/report"
)

// Figure6RegSizes are the register-pool sizes swept in the paper.
var Figure6RegSizes = []int{320, 352, 384}

// Figure6Policies are the comparison points of Figures 6 and 7.
var Figure6Policies = []PolicyName{PolICount, PolFlushPP, PolDG, PolSRA}

// Figure6Result maps each comparison policy to DCRA's average Hmean
// improvement (%) at each register-pool size, over all 36 workloads.
type Figure6Result struct {
	Improvement map[PolicyName][]float64 // indexed like Figure6RegSizes
}

// Figure6Sweep declares the figure's cells: all 36 workloads under DCRA and
// each comparison policy, at each register-pool size.
func Figure6Sweep() campaign.Sweep {
	s := campaign.Sweep{Name: "fig6"}
	for _, regs := range Figure6RegSizes {
		cfg := config.Baseline().WithPhysRegs(regs)
		s.Cells = append(s.Cells, allWorkloadCells(cfg,
			append([]PolicyName{PolDCRA}, Figure6Policies...)...)...)
	}
	return s
}

// Figure6 reproduces the paper's Figure 6: DCRA's Hmean advantage as the
// physical register file grows. Paper shape: the advantage over SRA and
// ICOUNT shrinks with more registers (starvation gets rarer), while the
// advantage over DG and FLUSH++ grows (their deallocation/stall become
// needless waste when resources are plentiful).
func Figure6(s *Suite) (Figure6Result, error) {
	if err := s.Prefetch(Figure6Sweep().Cells); err != nil {
		return Figure6Result{}, err
	}
	res := Figure6Result{Improvement: make(map[PolicyName][]float64)}
	for _, regs := range Figure6RegSizes {
		cfg := config.Baseline().WithPhysRegs(regs)
		_, dcraHM, err := s.allWorkloadAverages(cfg, PolDCRA)
		if err != nil {
			return res, err
		}
		for _, pn := range Figure6Policies {
			_, hm, err := s.allWorkloadAverages(cfg, pn)
			if err != nil {
				return res, err
			}
			res.Improvement[pn] = append(res.Improvement[pn],
				metrics.Improvement(dcraHM, hm))
		}
	}
	return res, nil
}

// Report renders the figure.
func (f Figure6Result) Report() *report.Table {
	cols := []string{"vs policy"}
	for _, r := range Figure6RegSizes {
		cols = append(cols, fmt.Sprintf("%d regs", r))
	}
	t := report.NewTable("Figure 6: DCRA Hmean improvement (%) vs register pool size", cols...)
	for _, pn := range Figure6Policies {
		row := []any{string(pn)}
		for _, v := range f.Improvement[pn] {
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	t.AddNote("paper shape: advantage over SRA/ICOUNT shrinks with more registers; over DG/FLUSH++ it grows")
	return t
}
