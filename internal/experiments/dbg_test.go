package experiments

import (
	"fmt"
	"os"
	"testing"
)

func TestDebugFig45(t *testing.T) {
	s := NewQuickSuite()
	f4, err := Figure4(s)
	if err != nil {
		t.Fatal(err)
	}
	f4.Report().Render(os.Stdout)
	f5, err := Figure5(s)
	if err != nil {
		t.Fatal(err)
	}
	f5.ThroughputReport().Render(os.Stdout)
	f5.HmeanReport().Render(os.Stdout)
	fmt.Println("avg TP improvements:", f5.AvgThroughputImprovement)
}
