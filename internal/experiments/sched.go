package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"dcra/internal/campaign"
	"dcra/internal/config"
	"dcra/internal/cpu"
	"dcra/internal/report"
	"dcra/internal/sched"
	"dcra/internal/sim"
)

// Open-system cell vocabulary: campaign cells whose WID starts with "sched:"
// run a job-stream scheduling trial instead of a fixed-window workload. The
// WID encodes the trial shape —
//
//	sched:c<contexts>:<kind>:g<gap>[:k<burst>]:j<jobs>:b<budget>
//
// — and Pol encodes the policy pair "<picker>+<alloc>" (e.g. "SYMB+DCRA").
// Seed and cycle horizon come from the suite's measurement protocol, so the
// store's Params manifest pins them exactly as for closed cells.
const schedPrefix = "sched:"

// SchedServiceMix is the bench pool open-system jobs draw from: four ILP and
// four MEM programs, so the symbiosis picker has a mix to steer.
var SchedServiceMix = []string{"gzip", "mcf", "eon", "art", "gcc", "swim", "bzip2", "equake"}

// Default trial shape of the sched experiment.
const (
	schedContexts = 4
	schedJobs     = 16
	schedBudget   = 24_000
)

// SchedPickers and SchedAllocs span the sched experiment's policy grid.
var (
	SchedPickers = sched.PickerNames()
	SchedAllocs  = []PolicyName{PolICount, PolDCRA}
)

// SchedArrivalPoints returns the load points the sched experiment sweeps:
// an overloaded fixed-rate stream, an underloaded one, and a bursty stream
// at the overloaded long-run rate.
func SchedArrivalPoints() []sched.Arrivals {
	return []sched.Arrivals{
		{Kind: sched.Open, Jobs: schedJobs, Gap: 3_000},
		{Kind: sched.Open, Jobs: schedJobs, Gap: 9_000},
		{Kind: sched.Bursty, Jobs: schedJobs, Gap: 3_000, Burst: 4},
	}
}

// schedWID encodes a trial shape as a cell WID.
func schedWID(contexts int, a sched.Arrivals, budget uint64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%sc%d:%s:g%d", schedPrefix, contexts, a.Kind, a.Gap)
	if a.Kind == sched.Bursty {
		fmt.Fprintf(&sb, ":k%d", a.Burst)
	}
	fmt.Fprintf(&sb, ":j%d:b%d", a.Jobs, budget)
	return sb.String()
}

// parseSchedWID decodes a "sched:" WID back into a trial shape.
func parseSchedWID(wid string) (contexts int, a sched.Arrivals, budget uint64, err error) {
	malformed := func() (int, sched.Arrivals, uint64, error) {
		return 0, sched.Arrivals{}, 0, fmt.Errorf("experiments: malformed sched cell %q", wid)
	}
	body, ok := strings.CutPrefix(wid, schedPrefix)
	if !ok {
		return malformed()
	}
	fields := strings.Split(body, ":")
	if len(fields) < 2 {
		return malformed()
	}
	num := func(f string, tag byte) (uint64, bool) {
		if len(f) < 2 || f[0] != tag {
			return 0, false
		}
		v, err := strconv.ParseUint(f[1:], 10, 64)
		return v, err == nil
	}
	c, ok := num(fields[0], 'c')
	if !ok {
		return malformed()
	}
	contexts = int(c)
	a.Kind = sched.ArrivalKind(fields[1])
	rest := fields[2:]
	take := func(tag byte) (uint64, bool) {
		if len(rest) == 0 {
			return 0, false
		}
		v, ok := num(rest[0], tag)
		if ok {
			rest = rest[1:]
		}
		return v, ok
	}
	if g, ok := take('g'); ok {
		a.Gap = g
	} else {
		return malformed()
	}
	if a.Kind == sched.Bursty {
		k, ok := take('k')
		if !ok {
			return malformed()
		}
		a.Burst = int(k)
	}
	j, ok := take('j')
	if !ok {
		return malformed()
	}
	a.Jobs = int(j)
	b, ok := take('b')
	if !ok || len(rest) != 0 {
		return malformed()
	}
	return contexts, a, b, nil
}

// schedMaxCycles derives the trial horizon from the suite's measurement
// protocol, so quick and full campaigns scale together and the store params
// pin it.
func schedMaxCycles(s *Suite) uint64 {
	return s.Runner.Warmup + 20*s.Runner.Measure
}

// computeSchedCell runs one open-system trial cell.
func (s *Suite) computeSchedCell(c campaign.Cell) (sim.Result, error) {
	contexts, arr, budget, err := parseSchedWID(c.WID)
	if err != nil {
		return sim.Result{}, err
	}
	pickerName, allocName, ok := strings.Cut(c.Pol, "+")
	if !ok {
		return sim.Result{}, fmt.Errorf("experiments: sched cell %s: policy %q is not <picker>+<alloc>", c, c.Pol)
	}
	picker, err := sched.PickerByName(pickerName)
	if err != nil {
		return sim.Result{}, fmt.Errorf("experiments: sched cell %s: %w", c, err)
	}
	pn := PolicyName(allocName)
	if !multithreadPolicies[pn] {
		return sim.Result{}, fmt.Errorf("experiments: sched cell %s: unknown allocation policy %q", c, allocName)
	}
	trial, err := sched.Run(sched.Config{
		Machine:   c.Cfg,
		Contexts:  contexts,
		Alloc:     func() cpu.Policy { return newPolicy(pn, c.Cfg) },
		Picker:    picker,
		Arrivals:  arr,
		Benches:   SchedServiceMix,
		Budget:    budget,
		Seed:      s.Runner.Seed,
		MaxCycles: schedMaxCycles(s),
		Pool:        s.Runner.Pool,
		FFDrain:     s.SchedFFDrain,
		Obs:         s.Runner.Obs,
		SLOs:        s.SchedSLOs,
		HealthEvery: s.SchedHealthEvery,
	})
	if err != nil {
		return sim.Result{}, fmt.Errorf("experiments: sched cell %s: %w", c, err)
	}
	return trial.Result(), nil
}

// SchedSweep declares the open-system experiment's cells: every arrival
// point under every picker × allocation-policy pair on the baseline
// configuration.
func SchedSweep() campaign.Sweep {
	cfg := config.Baseline()
	s := campaign.Sweep{Name: "sched"}
	for _, a := range SchedArrivalPoints() {
		for _, picker := range SchedPickers {
			for _, alloc := range SchedAllocs {
				s.Cells = append(s.Cells, campaign.Cell{
					Cfg: cfg,
					WID: schedWID(schedContexts, a, schedBudget),
					Pol: picker + "+" + string(alloc),
				})
			}
		}
	}
	return s
}

// SchedTable runs the sched sweep and renders the load × picker × alloc
// grid: completed jobs, throughput, turnaround percentiles and fairness.
func SchedTable(s *Suite) (*report.Table, error) {
	if err := s.Prefetch(SchedSweep().Cells); err != nil {
		return nil, err
	}
	cfg := config.Baseline()
	t := report.NewTable("Open-system scheduler: load x co-schedule policy x allocation policy",
		"arrival", "picker", "alloc", "done", "jobs/Mcyc", "uops/cyc", "p50 turn", "p99 turn", "jain")
	for _, a := range SchedArrivalPoints() {
		for _, picker := range SchedPickers {
			for _, alloc := range SchedAllocs {
				c := campaign.Cell{Cfg: cfg, WID: schedWID(schedContexts, a, schedBudget), Pol: picker + "+" + string(alloc)}
				r, err := s.RunCell(c)
				if err != nil {
					return nil, err
				}
				sum := r.Sched
				if sum == nil {
					return nil, fmt.Errorf("experiments: cell %s returned no sched summary", c)
				}
				t.AddRow(a.String(), picker, string(alloc),
					fmt.Sprintf("%d/%d", sum.Completed, sum.Jobs),
					sum.JobsPerMCycle, sum.UopsPerCycle,
					sum.P50Turnaround, sum.P99Turnaround, sum.Jain)
			}
		}
	}
	t.AddNote("jobs draw %d-uop budgets from a %d-bench ILP/MEM mix onto %d contexts; turnarounds in cycles",
		schedBudget, len(SchedServiceMix), schedContexts)
	return t, nil
}
