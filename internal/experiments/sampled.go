package experiments

import (
	"fmt"
	"math"
	"strings"

	"dcra/internal/campaign"
	"dcra/internal/config"
)

// This file owns the sampled-execution-mode surface of the experiment layer:
// how a suite's Mode maps onto campaign cells, how a declared (exact) sweep
// transforms into its sampled counterpart, and the parity harness that keeps
// the exact kernel the verifier of the sampled one.

// sampleableCell reports whether a cell's workload runs in sampled mode:
// multiprogrammed Table 4 workloads do; "bench:" single-thread protocol
// cells (baselines and resource-restriction probes) and "sched:" job-stream
// trials always run exact.
func sampleableCell(c campaign.Cell) bool {
	return !strings.HasPrefix(c.WID, benchPrefix) && !strings.HasPrefix(c.WID, schedPrefix)
}

// applyCellMode stamps the suite's execution mode — and, when the suite
// carries an explicit sampling schedule, that schedule — onto one cell. The
// schedule lands in the cell's config, so it is part of the content key:
// cells run under different sampling protocols (fixed vs adaptive, or
// different adaptive knobs) can never collide in a store.
func (s *Suite) applyCellMode(c campaign.Cell) campaign.Cell {
	if s.Mode == campaign.ModeSampled && sampleableCell(c) {
		c = c.Sampled()
		if s.Sampling.Enabled() {
			c.Cfg.Sampling = s.Sampling
		}
	}
	return c
}

// ApplyMode transforms a declared (exact) sweep into the cell set a suite
// running in the given mode demands: sampleable cells carry the mode, the
// rest stay exact. ModeExact returns the sweep unchanged. The campaign CLI
// and the sweep-parity tests share this transformation with Suite.Prefetch.
func ApplyMode(s campaign.Sweep, mode string) campaign.Sweep {
	return ApplyModeSampling(s, mode, config.SamplingConfig{})
}

// ApplyModeSampling is ApplyMode with an explicit sampling schedule stamped
// onto every sampled cell (the sweep-side counterpart of Suite.Sampling; a
// zero schedule stamps nothing).
func ApplyModeSampling(s campaign.Sweep, mode string, sc config.SamplingConfig) campaign.Sweep {
	if mode == campaign.ModeExact {
		return s
	}
	out := campaign.Sweep{Name: s.Name + "+" + mode, Cells: make([]campaign.Cell, len(s.Cells))}
	for i, c := range s.Cells {
		if mode == campaign.ModeSampled && sampleableCell(c) {
			c = c.Sampled()
			if sc.Enabled() {
				c.Cfg.Sampling = sc
			}
		}
		out.Cells[i] = c
	}
	return out
}

// ParityRow records the exact-vs-sampled comparison of one cell: the
// sampled estimate must land within its own reported 99.7% confidence
// interval of the exact value (SMARTS' accuracy contract, checked per
// Figure 5 workload by the parity tests and by cmd/benchjson).
type ParityRow struct {
	Cell    campaign.Cell `json:"cell"`
	Exact   float64       `json:"exact"`   // exact throughput (aggregate IPC)
	Sampled float64       `json:"sampled"` // sampled window-mean throughput
	CI      float64       `json:"ci997"`   // sampled 99.7% half-width
	AbsErr  float64       `json:"abs_err"`
	Within  bool          `json:"within"`
}

// ParityStats summarises a parity sweep.
type ParityStats struct {
	Cells        int     `json:"cells"`
	WithinCI     int     `json:"within_ci"`
	MaxAbsErr    float64 `json:"max_abs_err"`
	MeanAbsErr   float64 `json:"mean_abs_err"`
	MeanCIHalf   float64 `json:"mean_ci_half_width"`
	MaxRelErrPct float64 `json:"max_rel_err_pct"`
	AllWithin    bool    `json:"all_within"`
}

// Figure5Parity runs every Figure 5 workload cell in both modes on the two
// given suites (exact and sampled, sharing windows and seed) and compares
// throughput. The exact suite verifies the sampled one: a row is within
// parity when |sampled − exact| <= the sampled run's reported CI half-width.
func Figure5Parity(exact, sampled *Suite) ([]ParityRow, ParityStats, error) {
	sweep := Figure5Sweep()
	if err := exact.Prefetch(sweep.Cells); err != nil {
		return nil, ParityStats{}, err
	}
	if err := sampled.Prefetch(sweep.Cells); err != nil {
		return nil, ParityStats{}, err
	}
	rows := make([]ParityRow, 0, len(sweep.Cells))
	stats := ParityStats{AllWithin: true}
	for _, c := range sweep.Cells {
		er, err := exact.RunCell(c)
		if err != nil {
			return nil, ParityStats{}, err
		}
		sc := sampled.applyCellMode(c)
		sr, err := sampled.RunCell(sc)
		if err != nil {
			return nil, ParityStats{}, err
		}
		if sr.Sampled == nil {
			return nil, ParityStats{}, fmt.Errorf("experiments: parity cell %s: no sampling summary", sc)
		}
		row := ParityRow{
			Cell:    sc,
			Exact:   er.Throughput,
			Sampled: sr.Throughput,
			CI:      sr.Sampled.ThroughputCI,
		}
		row.AbsErr = math.Abs(row.Sampled - row.Exact)
		row.Within = row.AbsErr <= row.CI
		rows = append(rows, row)

		stats.Cells++
		if row.Within {
			stats.WithinCI++
		} else {
			stats.AllWithin = false
		}
		if row.AbsErr > stats.MaxAbsErr {
			stats.MaxAbsErr = row.AbsErr
		}
		stats.MeanAbsErr += row.AbsErr
		stats.MeanCIHalf += row.CI
		if row.Exact > 0 {
			if rel := 100 * row.AbsErr / row.Exact; rel > stats.MaxRelErrPct {
				stats.MaxRelErrPct = rel
			}
		}
	}
	if stats.Cells > 0 {
		stats.MeanAbsErr /= float64(stats.Cells)
		stats.MeanCIHalf /= float64(stats.Cells)
	}
	return rows, stats, nil
}
