package experiments

import (
	"fmt"

	"dcra/internal/campaign"
	"dcra/internal/config"
	"dcra/internal/metrics"
	"dcra/internal/report"
)

// Figure7Point is one memory-latency configuration of the paper's sweep
// (main memory / L2 latency pairs).
type Figure7Point struct {
	MemLatency int
	L2Latency  int
}

// Figure7Points are the paper's three latency settings.
var Figure7Points = []Figure7Point{
	{100, 10},
	{300, 20},
	{500, 25},
}

// Figure7Result maps each comparison policy to DCRA's average Hmean
// improvement (%) at each latency point, over all 36 workloads.
type Figure7Result struct {
	Improvement map[PolicyName][]float64 // indexed like Figure7Points
}

// Figure7Sweep declares the figure's cells: all 36 workloads under DCRA and
// each comparison policy, at each latency point.
func Figure7Sweep() campaign.Sweep {
	s := campaign.Sweep{Name: "fig7"}
	for _, pt := range Figure7Points {
		cfg := config.Baseline().WithMemLatency(pt.MemLatency, pt.L2Latency)
		s.Cells = append(s.Cells, allWorkloadCells(cfg,
			append([]PolicyName{PolDCRA}, Figure6Policies...)...)...)
	}
	return s
}

// Figure7 reproduces the paper's Figure 7: DCRA's Hmean advantage as memory
// latency grows. DCRA's sharing factor follows the paper's per-latency
// tuning (core.OptionsForLatency). Paper shape: ICOUNT degrades hard with
// latency (no memory awareness), DG's gap widens, FLUSH++ is the only
// policy that closes on DCRA at 500 cycles (deallocating on a miss pays off
// when misses pin resources for longer).
func Figure7(s *Suite) (Figure7Result, error) {
	if err := s.Prefetch(Figure7Sweep().Cells); err != nil {
		return Figure7Result{}, err
	}
	res := Figure7Result{Improvement: make(map[PolicyName][]float64)}
	for _, pt := range Figure7Points {
		cfg := config.Baseline().WithMemLatency(pt.MemLatency, pt.L2Latency)
		_, dcraHM, err := s.allWorkloadAverages(cfg, PolDCRA)
		if err != nil {
			return res, err
		}
		for _, pn := range Figure6Policies {
			_, hm, err := s.allWorkloadAverages(cfg, pn)
			if err != nil {
				return res, err
			}
			res.Improvement[pn] = append(res.Improvement[pn],
				metrics.Improvement(dcraHM, hm))
		}
	}
	return res, nil
}

// Report renders the figure.
func (f Figure7Result) Report() *report.Table {
	cols := []string{"vs policy"}
	for _, pt := range Figure7Points {
		cols = append(cols, fmt.Sprintf("lat %d/%d", pt.MemLatency, pt.L2Latency))
	}
	t := report.NewTable("Figure 7: DCRA Hmean improvement (%) vs memory latency", cols...)
	for _, pn := range Figure6Policies {
		row := []any{string(pn)}
		for _, v := range f.Improvement[pn] {
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	t.AddNote("paper shape: ICOUNT gap widens sharply with latency; FLUSH++ is the only policy closing on DCRA at 500 cycles")
	return t
}
