package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// WriteCSVs writes each rendered table as <dir>/<name>.csv, creating dir if
// needed, and returns the paths written. The campaign CLI's `render -csv`
// uses it to drop machine-readable artifacts next to the result store.
func WriteCSVs(dir string, tables []RenderedTable) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: creating CSV dir: %w", err)
	}
	paths := make([]string, 0, len(tables))
	for _, rt := range tables {
		var b strings.Builder
		rt.Table.RenderCSV(&b)
		path := filepath.Join(dir, rt.Name+".csv")
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			return paths, fmt.Errorf("experiments: writing %s: %w", path, err)
		}
		paths = append(paths, path)
	}
	return paths, nil
}
