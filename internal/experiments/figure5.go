package experiments

import (
	"fmt"

	"dcra/internal/campaign"
	"dcra/internal/config"
	"dcra/internal/metrics"
	"dcra/internal/report"
	"dcra/internal/workload"
)

// Figure5Policies are the fetch policies compared against DCRA in the
// paper's Figure 5 (STALL/FLUSH/PDG omitted there for brevity, as in the
// paper; they are available through the suite for the extended report).
var Figure5Policies = []PolicyName{PolICount, PolDG, PolFlushPP, PolDCRA}

// Figure5Cell holds per-workload-type results for all Figure 5 policies.
type Figure5Cell struct {
	Threads int
	Kind    workload.Kind

	Throughput map[PolicyName]float64
	Hmean      map[PolicyName]float64
}

// Figure5Result holds the 9 cells plus DCRA's average Hmean improvement
// over each policy (the paper's headline numbers: +18% over ICOUNT, +41%
// over DG, +4% over FLUSH++).
type Figure5Result struct {
	Cells []Figure5Cell

	AvgHmeanImprovement      map[PolicyName]float64
	AvgThroughputImprovement map[PolicyName]float64
}

// Figure5Sweep declares the figure's cells: all 144 (36 workloads x 4
// policies) on the baseline configuration.
func Figure5Sweep() campaign.Sweep {
	cfg := config.Baseline()
	s := campaign.Sweep{Name: "fig5"}
	for _, n := range threadCounts {
		for _, kind := range workload.Kinds {
			s.Cells = append(s.Cells, kindCells(cfg, n, kind, Figure5Policies...)...)
		}
	}
	return s
}

// Figure5 reproduces Figures 5(a) IPC throughput and 5(b) Hmean improvement.
// The declared sweep is run on the suite's worker pool before the per-cell
// averaging below reads the cells back from the memo.
func Figure5(s *Suite) (Figure5Result, error) {
	cfg := config.Baseline()
	if err := s.Prefetch(Figure5Sweep().Cells); err != nil {
		return Figure5Result{}, err
	}
	res := Figure5Result{
		AvgHmeanImprovement:      make(map[PolicyName]float64),
		AvgThroughputImprovement: make(map[PolicyName]float64),
	}
	improvementsHM := make(map[PolicyName][]float64)
	improvementsTP := make(map[PolicyName][]float64)
	for _, n := range threadCounts {
		for _, kind := range workload.Kinds {
			cell := Figure5Cell{
				Threads:    n,
				Kind:       kind,
				Throughput: make(map[PolicyName]float64),
				Hmean:      make(map[PolicyName]float64),
			}
			for _, pn := range Figure5Policies {
				tp, hm, err := s.kindAverages(cfg, n, kind, pn)
				if err != nil {
					return res, err
				}
				cell.Throughput[pn] = tp
				cell.Hmean[pn] = hm
			}
			for _, pn := range Figure5Policies {
				if pn == PolDCRA {
					continue
				}
				improvementsHM[pn] = append(improvementsHM[pn],
					metrics.Improvement(cell.Hmean[PolDCRA], cell.Hmean[pn]))
				improvementsTP[pn] = append(improvementsTP[pn],
					metrics.Improvement(cell.Throughput[PolDCRA], cell.Throughput[pn]))
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	for pn, vals := range improvementsHM {
		res.AvgHmeanImprovement[pn] = metrics.Mean(vals)
	}
	for pn, vals := range improvementsTP {
		res.AvgThroughputImprovement[pn] = metrics.Mean(vals)
	}
	return res, nil
}

// ThroughputReport renders Figure 5(a).
func (f Figure5Result) ThroughputReport() *report.Table {
	cols := []string{"workload"}
	for _, pn := range Figure5Policies {
		cols = append(cols, string(pn))
	}
	t := report.NewTable("Figure 5a: IPC throughput per policy", cols...)
	for _, c := range f.Cells {
		row := []any{fmt.Sprintf("%s%d", c.Kind, c.Threads)}
		for _, pn := range Figure5Policies {
			row = append(row, c.Throughput[pn])
		}
		t.AddRow(row...)
	}
	t.AddNote("paper shape: DCRA highest everywhere except MEM workloads, where FLUSH++ edges it out")
	return t
}

// HmeanReport renders Figure 5(b).
func (f Figure5Result) HmeanReport() *report.Table {
	cols := []string{"workload"}
	for _, pn := range Figure5Policies {
		if pn != PolDCRA {
			cols = append(cols, "vs "+string(pn)+" %")
		}
	}
	t := report.NewTable("Figure 5b: DCRA Hmean improvement over fetch policies", cols...)
	for _, c := range f.Cells {
		row := []any{fmt.Sprintf("%s%d", c.Kind, c.Threads)}
		for _, pn := range Figure5Policies {
			if pn == PolDCRA {
				continue
			}
			row = append(row, metrics.Improvement(c.Hmean[PolDCRA], c.Hmean[pn]))
		}
		t.AddRow(row...)
	}
	row := []any{"avg"}
	for _, pn := range Figure5Policies {
		if pn != PolDCRA {
			row = append(row, f.AvgHmeanImprovement[pn])
		}
	}
	t.AddRow(row...)
	t.AddNote("paper averages: +18%% over ICOUNT, +41%% over DG, +4%% over FLUSH++")
	return t
}
