// Package branch implements the front-end branch prediction machinery of
// the simulated processor: a gshare direction predictor, a set-associative
// branch target buffer, and a per-thread return address stack (paper
// Table 2: 16K-entry gshare, 256-entry 4-way BTB, 256-entry RAS).
//
// The predictor tables are shared between hardware threads (as in SMTSIM);
// global branch history is kept per thread, since interleaving histories
// destroys all correlation.
package branch

import (
	"dcra/internal/config"
	"dcra/internal/isa"
)

// Prediction is the front end's view of a branch before execution.
type Prediction struct {
	Taken  bool
	Target uint64 // meaningful only if Taken
	// TargetKnown reports whether a target was available (BTB or RAS hit).
	// A predicted-taken branch without a target cannot redirect fetch and
	// is handled as a (mis)predicted not-taken by the pipeline.
	TargetKnown bool
}

// Predictor bundles gshare + BTB + RAS.
type Predictor struct {
	pht     []uint8 // 2-bit saturating counters
	phtMask uint64
	history []uint64 // per-thread global history
	btb     *btb
	ras     []*ras

	Lookups    uint64
	Mispredict uint64 // direction or target mispredictions recorded via Update
}

// New builds a predictor for cfg and the given number of threads.
func New(cfg config.Config, threads int) *Predictor {
	p := &Predictor{
		pht:     make([]uint8, cfg.GshareEntries),
		phtMask: uint64(cfg.GshareEntries - 1),
		history: make([]uint64, threads),
		btb:     newBTB(cfg.BTBEntries, cfg.BTBAssoc),
		ras:     make([]*ras, threads),
	}
	for i := range p.pht {
		p.pht[i] = 2 // weakly taken: avoids a cold not-taken bias
	}
	for i := range p.ras {
		p.ras[i] = newRAS(cfg.RASEntries)
	}
	return p
}

// Reset restores the predictor to its post-construction state — weakly-taken
// counters, empty histories, invalid BTB, empty return stacks, zero counters
// — without reallocating any table. A reset predictor behaves bit-identically
// to a freshly built one; the machine-reuse lifecycle depends on this.
func (p *Predictor) Reset() {
	for i := range p.pht {
		p.pht[i] = 2
	}
	clear(p.history)
	clear(p.btb.sets)
	p.btb.stamp = 0
	for _, r := range p.ras {
		r.top = 0
	}
	p.Lookups, p.Mispredict = 0, 0
}

// Shape reports whether the predictor's tables match the geometry cfg and
// thread count ask for, i.e. whether Reset can stand in for reconstruction.
func (p *Predictor) Shape(cfg config.Config, threads int) bool {
	return len(p.pht) == cfg.GshareEntries &&
		len(p.history) == threads &&
		len(p.btb.sets) == cfg.BTBEntries &&
		p.btb.assoc == cfg.BTBAssoc &&
		len(p.ras) == threads &&
		(threads == 0 || p.ras[0].size == cfg.RASEntries)
}

// histBits bounds the global-history contribution to the PHT index. The
// synthetic branch outcomes are per-site Bernoulli draws with no real
// cross-branch correlation, so long histories cannot help prediction — they
// only fragment each site's training across 2^k PHT entries. Eight bits
// keeps the gshare structure (and its aliasing behaviour) while letting
// counters converge to the per-site bias bound, which is what a real
// predictor achieves on real code.
const histBits = 8

func (p *Predictor) index(thread int, pc uint64) uint64 {
	return ((pc >> 2) ^ (p.history[thread] & (1<<histBits - 1))) & p.phtMask
}

// Predict produces the front end's prediction for a branch uop, then
// immediately trains the tables with the canonical outcome and folds the
// true direction into the history. Training at lookup time — with the same
// PHT index the prediction used — is the standard trace-driven idealisation;
// deferring it to resolution would train a *different* index (the history
// has moved on) and the predictor would never learn. The misprediction
// *penalty* is still paid architecturally: the pipeline fetches down the
// wrong path until the branch resolves.
func (p *Predictor) Predict(thread int, u *isa.Uop) Prediction {
	p.Lookups++
	var pr Prediction
	switch u.CallKind {
	case CallReturnKind:
		if t, ok := p.ras[thread].pop(); ok {
			pr = Prediction{Taken: true, Target: t, TargetKnown: true}
		} else {
			pr = Prediction{Taken: true}
		}
	case CallDirectKind:
		p.ras[thread].push(u.PC + 4)
		target, hit := p.btb.lookup(u.PC)
		pr = Prediction{Taken: true, Target: target, TargetKnown: hit}
	default:
		idx := p.index(thread, u.PC)
		ctr := p.pht[idx]
		taken := ctr >= 2
		pr = Prediction{Taken: taken}
		if taken {
			pr.Target, pr.TargetKnown = p.btb.lookup(u.PC)
		}
		// Train with the true outcome at the index just used.
		if u.Taken {
			if ctr < 3 {
				p.pht[idx] = ctr + 1
			}
		} else if ctr > 0 {
			p.pht[idx] = ctr - 1
		}
	}
	p.history[thread] = p.history[thread]<<1 | b2u(u.Taken)
	if u.Taken && u.CallKind != CallReturnKind {
		p.btb.insert(u.PC, u.Target)
	}
	return pr
}

// Update records the resolved outcome for statistics. Table training
// happened at Predict time (see there).
func (p *Predictor) Update(thread int, u *isa.Uop, mispredicted bool) {
	if mispredicted {
		p.Mispredict++
	}
}

// RASTop returns thread t's return-address-stack depth, snapshotted by the
// front end before each fetched uop so squashes can repair the stack.
func (p *Predictor) RASTop(t int) int32 { return int32(p.ras[t].top) }

// SetRASTop restores thread t's RAS depth to a snapshot taken earlier. The
// stack contents below the snapshot are assumed intact (entries above may
// have been clobbered, as in real hardware TOS-pointer recovery).
func (p *Predictor) SetRASTop(t int, top int32) {
	if int(top) <= p.ras[t].size {
		p.ras[t].top = int(top)
	}
}

// FixupHistory repairs a thread's global history after a misprediction by
// flipping the last speculative bit to the true outcome.
func (p *Predictor) FixupHistory(thread int, taken bool) {
	p.history[thread] = p.history[thread] &^ 1
	p.history[thread] |= b2u(taken)
}

// Aliases so this package does not leak isa constants into its API surface.
const (
	CallNoneKind   = isa.CallNone
	CallDirectKind = isa.CallDirect
	CallReturnKind = isa.CallReturn
)

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// ---- BTB ----

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
	lru    uint64
}

type btb struct {
	sets    []btbEntry
	assoc   int
	setMask uint64
	stamp   uint64
}

func newBTB(entries, assoc int) *btb {
	sets := entries / assoc
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("branch: BTB sets must be a positive power of two")
	}
	return &btb{sets: make([]btbEntry, entries), assoc: assoc, setMask: uint64(sets - 1)}
}

func (b *btb) set(pc uint64) []btbEntry {
	s := (pc >> 2) & b.setMask
	return b.sets[s*uint64(b.assoc) : (s+1)*uint64(b.assoc)]
}

func (b *btb) lookup(pc uint64) (uint64, bool) {
	b.stamp++
	set := b.set(pc)
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			set[i].lru = b.stamp
			return set[i].target, true
		}
	}
	return 0, false
}

func (b *btb) insert(pc, target uint64) {
	b.stamp++
	set := b.set(pc)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			set[i].target = target
			set[i].lru = b.stamp
			return
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = btbEntry{tag: pc, target: target, valid: true, lru: b.stamp}
}

// ---- RAS ----

type ras struct {
	stack []uint64
	top   int // number of valid entries (wraps: oldest overwritten)
	size  int
}

func newRAS(n int) *ras { return &ras{stack: make([]uint64, n), size: n} }

func (r *ras) push(addr uint64) {
	if r.top < r.size {
		r.stack[r.top] = addr
		r.top++
		return
	}
	// Full: shift is too costly; overwrite circularly by dropping the oldest.
	copy(r.stack, r.stack[1:])
	r.stack[r.size-1] = addr
}

func (r *ras) pop() (uint64, bool) {
	if r.top == 0 {
		return 0, false
	}
	r.top--
	return r.stack[r.top], true
}
