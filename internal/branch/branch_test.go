package branch

import (
	"testing"

	"dcra/internal/config"
	"dcra/internal/isa"
)

func newPredictor(threads int) *Predictor {
	return New(config.Baseline(), threads)
}

func TestLearnsBiasedBranch(t *testing.T) {
	p := newPredictor(1)
	u := isa.Uop{Class: isa.OpBranch, PC: 0x1000, Taken: true, Target: 0x2000}
	correct := 0
	const n = 200
	for i := 0; i < n; i++ {
		pr := p.Predict(0, &u)
		if pr.Taken && pr.TargetKnown && pr.Target == u.Target {
			correct++
		}
	}
	if correct < n*9/10 {
		t.Fatalf("always-taken branch predicted correctly only %d/%d", correct, n)
	}
}

func TestLearnsNotTakenBranch(t *testing.T) {
	p := newPredictor(1)
	u := isa.Uop{Class: isa.OpBranch, PC: 0x3000, Taken: false}
	correct := 0
	const n = 200
	for i := 0; i < n; i++ {
		if pr := p.Predict(0, &u); !pr.Taken {
			correct++
		}
	}
	if correct < n*9/10 {
		t.Fatalf("never-taken branch predicted correctly only %d/%d", correct, n)
	}
}

func TestBTBTargetChange(t *testing.T) {
	p := newPredictor(1)
	u := isa.Uop{Class: isa.OpBranch, PC: 0x4000, Taken: true, Target: 0x5000}
	for i := 0; i < 10; i++ {
		p.Predict(0, &u)
	}
	u.Target = 0x6000
	p.Predict(0, &u) // trains the new target
	pr := p.Predict(0, &u)
	if !pr.TargetKnown || pr.Target != 0x6000 {
		t.Fatalf("BTB did not retrain target: %+v", pr)
	}
}

func TestRASCallReturn(t *testing.T) {
	p := newPredictor(1)
	call := isa.Uop{Class: isa.OpBranch, CallKind: isa.CallDirect, PC: 0x100, Taken: true, Target: 0x900}
	ret := isa.Uop{Class: isa.OpBranch, CallKind: isa.CallReturn, PC: 0x904, Taken: true, Target: 0x104}
	p.Predict(0, &call)
	pr := p.Predict(0, &ret)
	if !pr.TargetKnown || pr.Target != 0x104 {
		t.Fatalf("RAS did not predict return to 0x104: %+v", pr)
	}
}

func TestRASNesting(t *testing.T) {
	p := newPredictor(1)
	for depth := uint64(0); depth < 8; depth++ {
		call := isa.Uop{Class: isa.OpBranch, CallKind: isa.CallDirect,
			PC: 0x100 * (depth + 1), Taken: true, Target: 0x9000}
		p.Predict(0, &call)
	}
	for depth := uint64(8); depth > 0; depth-- {
		want := 0x100*depth + 4
		ret := isa.Uop{Class: isa.OpBranch, CallKind: isa.CallReturn,
			PC: 0x8000, Taken: true, Target: want}
		pr := p.Predict(0, &ret)
		if !pr.TargetKnown || pr.Target != want {
			t.Fatalf("depth %d: predicted %#x, want %#x", depth, pr.Target, want)
		}
	}
}

func TestRASUnderflow(t *testing.T) {
	p := newPredictor(1)
	ret := isa.Uop{Class: isa.OpBranch, CallKind: isa.CallReturn, PC: 0x10, Taken: true, Target: 0x20}
	pr := p.Predict(0, &ret)
	if pr.TargetKnown {
		t.Fatal("empty RAS must not claim a known target")
	}
}

func TestRASSnapshotRestore(t *testing.T) {
	p := newPredictor(1)
	call := isa.Uop{Class: isa.OpBranch, CallKind: isa.CallDirect, PC: 0x100, Taken: true, Target: 0x900}
	p.Predict(0, &call)
	snap := p.RASTop(0)
	// A speculative call that later squashes.
	spec := isa.Uop{Class: isa.OpBranch, CallKind: isa.CallDirect, PC: 0x200, Taken: true, Target: 0x900}
	p.Predict(0, &spec)
	p.SetRASTop(0, snap)
	ret := isa.Uop{Class: isa.OpBranch, CallKind: isa.CallReturn, PC: 0x904, Taken: true, Target: 0x104}
	pr := p.Predict(0, &ret)
	if !pr.TargetKnown || pr.Target != 0x104 {
		t.Fatalf("after snapshot restore, return predicted %#x, want 0x104", pr.Target)
	}
}

func TestPerThreadHistoryIsolation(t *testing.T) {
	p := newPredictor(2)
	// Thread 1 hammers random-ish outcomes; thread 0's biased branch must
	// still be predictable (histories are per thread; tables shared).
	u0 := isa.Uop{Class: isa.OpBranch, PC: 0x1000, Taken: true, Target: 0x40}
	correct := 0
	for i := 0; i < 200; i++ {
		u1 := isa.Uop{Class: isa.OpBranch, PC: uint64(0x2000 + i*4), Taken: i%3 == 0, Target: 0x80}
		p.Predict(1, &u1)
		if pr := p.Predict(0, &u0); pr.Taken {
			correct++
		}
	}
	if correct < 180 {
		t.Fatalf("thread 0 biased branch correct only %d/200 with noisy sibling", correct)
	}
}

func TestMispredictCounting(t *testing.T) {
	p := newPredictor(1)
	u := isa.Uop{Class: isa.OpBranch, PC: 0x1, Taken: true, Target: 0x2}
	p.Update(0, &u, true)
	p.Update(0, &u, false)
	if p.Mispredict != 1 {
		t.Fatalf("mispredict count %d, want 1", p.Mispredict)
	}
}

func TestRASOverflowWraps(t *testing.T) {
	cfg := config.Baseline()
	cfg.RASEntries = 4
	p := New(cfg, 1)
	for i := uint64(0); i < 6; i++ {
		call := isa.Uop{Class: isa.OpBranch, CallKind: isa.CallDirect,
			PC: 0x100 + i*8, Taken: true, Target: 0x900}
		p.Predict(0, &call)
	}
	// The newest 4 return addresses survive; pops yield them LIFO.
	for i := uint64(5); i >= 2; i-- {
		want := 0x100 + i*8 + 4
		ret := isa.Uop{Class: isa.OpBranch, CallKind: isa.CallReturn, PC: 0x1, Taken: true, Target: want}
		pr := p.Predict(0, &ret)
		if !pr.TargetKnown || pr.Target != want {
			t.Fatalf("overflowed RAS pop %d: got %#x, want %#x", i, pr.Target, want)
		}
	}
}
