package sim

import (
	"encoding/json"
	"reflect"
	"testing"

	"dcra/internal/config"
	"dcra/internal/cpu"
	"dcra/internal/policy"
	"dcra/internal/workload"
)

// TestProbedRunBitIdentical is the probe's correctness contract: sampling a
// run through the CommitObserver seam must not change a single committed
// statistic relative to the same run unprobed, and the unprobed result must
// serialize byte-identically to one from a runner that never heard of
// probing (Probe is omitempty).
func TestProbedRunBitIdentical(t *testing.T) {
	w, err := workload.Get(2, workload.MEM, 1)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() cpu.Policy { return policy.NewFlushPP() }

	plain := quickRunner()
	ref, err := plain.RunWorkload(config.Baseline(), w, mk)
	if err != nil {
		t.Fatal(err)
	}

	probed := quickRunner()
	probed.ProbeInterval = 7_000 // deliberately not a divisor of Measure
	got, err := probed.RunWorkload(config.Baseline(), w, mk)
	if err != nil {
		t.Fatal(err)
	}

	if got.Probe == nil {
		t.Fatal("probed run carries no probe series")
	}
	wantSamples := int((probed.Measure + probed.ProbeInterval - 1) / probed.ProbeInterval)
	if len(got.Probe.Samples) != wantSamples {
		t.Errorf("probe has %d samples, want %d", len(got.Probe.Samples), wantSamples)
	}
	last := got.Probe.Samples[len(got.Probe.Samples)-1]
	if last.Cycle != probed.Measure {
		t.Errorf("last sample at cycle %d, want %d", last.Cycle, probed.Measure)
	}
	for _, s := range got.Probe.Samples {
		if len(s.IPC) != 2 || len(s.ROBOcc) != 2 {
			t.Fatalf("sample %d has %d IPCs / %d ROB entries, want 2/2", s.Cycle, len(s.IPC), len(s.ROBOcc))
		}
	}

	// The probe rides outside the measurement: strip it and the results
	// must match exactly, including every raw counter in Stats.
	got.Probe = nil
	if !reflect.DeepEqual(ref, got) {
		t.Errorf("probed run diverged from plain run:\nplain:  %+v\nprobed: %+v", ref, got)
	}

	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(refJSON) != string(gotJSON) {
		t.Error("probed result (probe stripped) serializes differently from plain result")
	}
}
