package sim

import (
	"reflect"
	"testing"

	"dcra/internal/config"
	"dcra/internal/core"
	"dcra/internal/cpu"
	"dcra/internal/policy"
	"dcra/internal/trace"
	"dcra/internal/workload"
)

// poolCell is one (config, workload, policy) point of the reuse matrix.
type poolCell struct {
	cfg config.Config
	w   workload.Workload
	mk  PolicyFactory
}

// mixedCells builds a cell set that crosses configurations, workload sizes
// and policies, so pooled reuse has to survive shape changes, latency-only
// config changes and per-run policy state.
func mixedCells(t *testing.T) []poolCell {
	t.Helper()
	base := config.Baseline()
	get := func(threads int, kind workload.Kind, group int) workload.Workload {
		w, err := workload.Get(threads, kind, group)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	icount := func() cpu.Policy { return policy.NewICount() }
	flush := func() cpu.Policy { return policy.NewFlush() }
	dcra := func() cpu.Policy { return core.Default() }
	return []poolCell{
		{base, get(2, workload.MIX, 1), icount},
		{base, get(2, workload.MEM, 1), dcra},
		{base.WithMemLatency(500, 25), get(2, workload.MIX, 1), flush},
		{base, get(4, workload.ILP, 2), dcra},
		{base.WithPhysRegs(288), get(2, workload.MEM, 2), icount},
		{base, get(2, workload.MIX, 1), icount}, // repeat: exercises the memo-free path twice
	}
}

func runCells(t *testing.T, r *Runner, cells []poolCell) []Result {
	t.Helper()
	out := make([]Result, len(cells))
	for i, c := range cells {
		res, err := r.RunWorkload(c.cfg, c.w, c.mk)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		out[i] = res
	}
	return out
}

// TestPooledRunsBitIdentical is the reuse-correctness gate demanded by the
// machine-lifecycle overhaul: a mixed set of (config, workload, policy)
// cells run on fresh machines (Pool == nil) and run twice through a pooled
// runner — the second pass re-running every cell on machines recycled from
// the first — must produce bit-identical Result structs.
func TestPooledRunsBitIdentical(t *testing.T) {
	cells := mixedCells(t)

	freshRunner := quickRunner()
	freshRunner.Pool = nil
	fresh := runCells(t, freshRunner, cells)

	pooledRunner := quickRunner() // NewRunner attaches a pool
	if pooledRunner.Pool == nil {
		t.Fatal("NewRunner must attach a machine pool")
	}
	first := runCells(t, pooledRunner, cells)
	second := runCells(t, pooledRunner, cells) // every machine here is recycled

	for i := range cells {
		if !reflect.DeepEqual(fresh[i], first[i]) {
			t.Errorf("cell %d: pooled first pass diverged from fresh machines:\nfresh:  %+v\npooled: %+v",
				i, fresh[i], first[i])
		}
		if !reflect.DeepEqual(fresh[i], second[i]) {
			t.Errorf("cell %d: pooled re-run diverged from fresh machines:\nfresh:  %+v\npooled: %+v",
				i, fresh[i], second[i])
		}
	}
}

// TestMachinePoolParallelHammer drives one shared pool from the engine's
// worker pool (run under -race in CI): many concurrent Get/run/Put cycles
// across two shapes must stay data-race-free and keep every result equal to
// its serial reference.
func TestMachinePoolParallelHammer(t *testing.T) {
	cells := mixedCells(t)

	ref := runCells(t, quickRunner(), cells)

	r := quickRunner()
	// Pre-resolve the single-thread baselines so the parallel phase measures
	// pool contention, not baseline single-flighting.
	for _, c := range cells {
		for _, n := range c.w.Names {
			if _, err := r.SingleIPC(c.cfg, n); err != nil {
				t.Fatal(err)
			}
		}
	}

	const rounds = 4
	results := make([]Result, rounds*len(cells))
	errs := make([]error, rounds*len(cells))
	NewEngine(8).Run(len(results), func(i int) {
		c := cells[i%len(cells)]
		results[i], errs[i] = r.RunWorkload(c.cfg, c.w, c.mk)
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if !reflect.DeepEqual(res, ref[i%len(cells)]) {
			t.Errorf("parallel pooled run %d diverged from serial reference", i)
		}
	}
}

// mutatingPolicy flips the runner's measurement window from inside a run —
// exactly the misuse the Runner doc forbids.
type mutatingPolicy struct {
	r     *Runner
	fired bool
}

func (p *mutatingPolicy) Name() string { return "MUTATE" }
func (p *mutatingPolicy) Tick(*cpu.Machine) {
	if !p.fired {
		p.fired = true
		p.r.Measure++
	}
}
func (p *mutatingPolicy) Rank(m *cpu.Machine, ts []int) { cpu.RankByICount(m, ts) }
func (p *mutatingPolicy) Gate(*cpu.Machine, int) bool   { return false }

// TestRunnerGuardsInFlightMutation documents and enforces the Runner
// invariant: changing the windows or seed while a run is in flight panics
// instead of silently mixing protocols.
func TestRunnerGuardsInFlightMutation(t *testing.T) {
	r := quickRunner()
	defer func() {
		if recover() == nil {
			t.Fatal("mutating Runner.Measure mid-run must panic")
		}
		if n := r.InFlight(); n != 0 {
			t.Fatalf("in-flight count not restored: %d", n)
		}
	}()
	_, err := r.RunMachine(config.Baseline(),
		[]trace.Profile{trace.MustProfile("gzip")}, &mutatingPolicy{r: r})
	t.Fatalf("run with mid-flight mutation returned (err=%v) instead of panicking", err)
}
