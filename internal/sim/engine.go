package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Engine executes independent simulation cells on a bounded worker pool.
// Simulation cells — one (config, workload, policy) run each — share no
// mutable state, so the experiment suite is embarrassingly parallel; the
// engine is the single place that decides how wide to fan out.
//
// A 1-worker engine degenerates to a plain serial loop in submission order,
// which the determinism tests compare against parallel execution: results
// must be bit-identical because each cell's simulation is a pure function
// of its inputs and a fixed seed.
type Engine struct {
	workers int
}

// NewEngine returns an engine with the given parallelism; workers <= 0
// selects GOMAXPROCS.
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers}
}

// Workers returns the configured parallelism.
func (e *Engine) Workers() int { return e.workers }

// Run executes task(0..n-1) across the worker pool and waits for all of
// them. Tasks must be independent and write only to their own slot of any
// shared output slice. Panics propagate to the caller.
func (e *Engine) Run(n int, task func(i int)) {
	if n <= 0 {
		return
	}
	if e.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	var (
		next int64 = -1
		wg   sync.WaitGroup
	)
	panics := make(chan any, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- p
				}
			}()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				task(i)
			}
		}()
	}
	wg.Wait()
	select {
	case p := <-panics:
		panic(p)
	default:
	}
}

// FirstError returns the first non-nil error in submission order, so error
// reporting is deterministic regardless of completion order.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
