package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dcra/internal/obs"
)

// Engine executes independent simulation cells on a bounded worker pool.
// Simulation cells — one (config, workload, policy) run each — share no
// mutable state, so the experiment suite is embarrassingly parallel; the
// engine is the single place that decides how wide to fan out.
//
// A 1-worker engine degenerates to a plain serial loop in submission order,
// which the determinism tests compare against parallel execution: results
// must be bit-identical because each cell's simulation is a pure function
// of its inputs and a fixed seed.
type Engine struct {
	workers int

	// Reg and Tracer, when set, instrument every Run: cells
	// started/done counters, a per-cell wall-time histogram, and one
	// trace span per cell on the executing worker's lane. Both default
	// to nil (off); task execution itself is untouched either way.
	Reg    *obs.Registry
	Tracer *obs.Tracer
}

// NewEngine returns an engine with the given parallelism; workers <= 0
// selects GOMAXPROCS.
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers}
}

// Workers returns the configured parallelism.
func (e *Engine) Workers() int { return e.workers }

// Run executes task(0..n-1) across the worker pool and waits for all of
// them. Tasks must be independent and write only to their own slot of any
// shared output slice. Panics propagate to the caller.
func (e *Engine) Run(n int, task func(i int)) {
	e.RunLabeled(n, nil, task)
}

// RunLabeled is Run with an optional per-task label used to name trace
// spans; label is only consulted when the engine is instrumented, so
// callers may pass expensive formatters freely.
func (e *Engine) RunLabeled(n int, label func(i int) string, task func(i int)) {
	if n <= 0 {
		return
	}
	run := func(i, _ int) { task(i) }
	if e.Reg != nil || e.Tracer != nil {
		run = e.instrumented(label, task)
	}
	if e.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			run(i, 0)
		}
		return
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	var (
		next int64 = -1
		wg   sync.WaitGroup
	)
	panics := make(chan any, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- p
				}
			}()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				run(i, w)
			}
		}(w)
	}
	wg.Wait()
	select {
	case p := <-panics:
		panic(p)
	default:
	}
}

// EnginePID is the trace pid lane group engine worker spans live on. It must
// stay clear of the coordinator's lane groups (coord.TracePIDLeases = 0,
// coord.TracePIDCells = 1) because `campaign coordinate -trace` attaches one
// tracer to both the coordinator and the render engine in one process.
const EnginePID = 4

// instrumented wraps task with the engine's telemetry: started/done
// counters, a per-cell wall-time histogram, and a span per cell on the
// worker's trace lane. Only built when Reg or Tracer is set.
func (e *Engine) instrumented(label func(i int) string, task func(i int)) func(i, w int) {
	started := e.Reg.Counter("engine.cells.started")
	done := e.Reg.Counter("engine.cells.done")
	cellUS := e.Reg.Histogram("engine.cell.us", obs.DurationBounds)
	e.Tracer.Process(EnginePID, "engine workers")
	return func(i, w int) {
		name := ""
		if e.Tracer != nil {
			if label != nil {
				name = label(i)
			} else {
				name = fmt.Sprintf("task %d", i)
			}
		}
		started.Inc()
		end := e.Tracer.Span(EnginePID, w, name, "engine-cell")
		t0 := time.Now()
		task(i)
		cellUS.Observe(time.Since(t0).Microseconds())
		end()
		done.Inc()
	}
}

// FirstError returns the first non-nil error in submission order, so error
// reporting is deterministic regardless of completion order.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
