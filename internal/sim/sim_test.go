package sim

import (
	"testing"

	"dcra/internal/config"
	"dcra/internal/cpu"
	"dcra/internal/policy"
	"dcra/internal/trace"
	"dcra/internal/workload"
)

func quickRunner() *Runner {
	r := NewRunner()
	r.Warmup = 10_000
	r.Measure = 40_000
	return r
}

func TestRunWorkloadProducesMetrics(t *testing.T) {
	r := quickRunner()
	w, err := workload.Get(2, workload.MIX, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunWorkload(config.Baseline(), w, func() cpu.Policy { return policy.NewICount() })
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "ICOUNT" || res.Workload.ID() != w.ID() {
		t.Fatalf("result identity wrong: %+v", res)
	}
	if len(res.IPCs) != 2 {
		t.Fatalf("want 2 per-thread IPCs, got %d", len(res.IPCs))
	}
	if res.Throughput <= 0 || res.Hmean <= 0 || res.WSpeedup <= 0 {
		t.Fatalf("metrics must be positive: %+v", res)
	}
	if res.Hmean > 1.05 {
		t.Fatalf("Hmean %f > 1: threads cannot beat their single-thread IPC", res.Hmean)
	}
}

func TestSingleIPCCached(t *testing.T) {
	r := quickRunner()
	cfg := config.Baseline()
	a, err := r.SingleIPC(cfg, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.SingleIPC(cfg, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("cache miss: %v != %v", a, b)
	}
	// A different configuration must not share the cache entry.
	c, err := r.SingleIPC(cfg.WithMemLatency(500, 25), "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Log("note: different config returned identical IPC (possible but unlikely)")
	}
}

func TestCapPolicyRestricts(t *testing.T) {
	r := quickRunner()
	cfg := config.Baseline()
	cfg.PerfectDCache = true
	prof := []trace.Profile{trace.MustProfile("gzip")}

	free, err := r.RunMachine(cfg, prof, &CapPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	tight := &CapPolicy{}
	tight.Caps[cpu.RIntRegs] = 8
	restricted, err := r.RunMachine(cfg, prof, tight)
	if err != nil {
		t.Fatal(err)
	}
	fIPC := free.Stats().Threads[0].IPC(free.Stats().Cycles)
	rIPC := restricted.Stats().Threads[0].IPC(restricted.Stats().Cycles)
	if rIPC >= fIPC*0.8 {
		t.Fatalf("8-register cap should hurt badly: %.3f vs free %.3f", rIPC, fIPC)
	}
}

func TestRunnerDeterminism(t *testing.T) {
	w, _ := workload.Get(2, workload.MEM, 1)
	run := func() Result {
		r := quickRunner()
		res, err := r.RunWorkload(config.Baseline(), w, func() cpu.Policy { return policy.NewFlushPP() })
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Throughput != b.Throughput || a.Hmean != b.Hmean {
		t.Fatalf("identical runs diverged: %+v vs %+v", a, b)
	}
}
