package sim

import (
	"sync"

	"dcra/internal/config"
	"dcra/internal/cpu"
	"dcra/internal/obs"
	"dcra/internal/trace"
)

// MachinePool recycles cpu.Machine allocations across simulation cells.
// Machines are bucketed by cpu.Shape (the allocation geometry), so a pooled
// machine is always rebound via the cheap in-place Reinit path; cells whose
// shape has never been seen build fresh machines. The pool is safe for
// concurrent use by the engine's workers: each bucket is a sync.Pool, whose
// per-P caches make Get/Put contention-free on the hot path, and whose GC
// integration keeps idle campaigns from pinning retired machine arenas.
//
// A nil *MachinePool is valid and degenerates to fresh construction per
// call, which is what keeps pooling transparent to zero-value Runners.
type MachinePool struct {
	mu    sync.Mutex
	pools map[cpu.Shape]*sync.Pool

	hits   *obs.Counter // Get served by a pooled machine (Reinit path)
	misses *obs.Counter // Get built a fresh machine
}

// NewMachinePool returns an empty pool.
func NewMachinePool() *MachinePool {
	return &MachinePool{pools: make(map[cpu.Shape]*sync.Pool)}
}

// SetObs resolves the pool's hit/miss counters from reg; a nil reg (or
// never calling SetObs) leaves the pool uninstrumented.
func (p *MachinePool) SetObs(reg *obs.Registry) {
	if p == nil {
		return
	}
	p.hits = reg.Counter("pool.machine.hits")
	p.misses = reg.Counter("pool.machine.misses")
}

// bucket returns the sync.Pool for sh, creating it on first use.
func (p *MachinePool) bucket(sh cpu.Shape) *sync.Pool {
	p.mu.Lock()
	defer p.mu.Unlock()
	sp := p.pools[sh]
	if sp == nil {
		sp = &sync.Pool{}
		p.pools[sh] = sp
	}
	return sp
}

// Get returns a machine initialised for (cfg, profiles, pol, seed), reusing
// a pooled machine of the matching shape when one is available and building
// fresh otherwise. Either way the machine is observationally identical to
// cpu.New(cfg, profiles, pol, seed) — Reinit guarantees bit-identical
// simulation — so callers need not know which path served them.
func (p *MachinePool) Get(cfg config.Config, profiles []trace.Profile, pol cpu.Policy, seed uint64) (*cpu.Machine, error) {
	if p == nil {
		return cpu.New(cfg, profiles, pol, seed)
	}
	sh := cpu.ShapeOf(cfg, len(profiles))
	if m, ok := p.bucket(sh).Get().(*cpu.Machine); ok {
		if err := m.Reinit(cfg, profiles, pol, seed); err != nil {
			return nil, err
		}
		p.hits.Inc()
		return m, nil
	}
	p.misses.Inc()
	return cpu.New(cfg, profiles, pol, seed)
}

// Put returns a machine to the pool for later reuse. The caller must be done
// with the machine itself; results already extracted from it (Stats objects,
// IPCs) remain valid because Reinit abandons rather than clears the old
// statistics.
func (p *MachinePool) Put(m *cpu.Machine) {
	if p == nil || m == nil {
		return
	}
	p.bucket(m.Shape()).Put(m)
}
