package sim

import (
	"fmt"
	"os"
	"testing"

	"dcra/internal/config"
	"dcra/internal/trace"
)

// TestCalibrationReport prints per-benchmark single-thread behaviour next to
// the paper's Table 3 targets. It always passes unless a benchmark lands on
// the wrong side of the MEM/ILP split (the property the workload taxonomy
// depends on); the printed report drives profile calibration.
//
// Run with -v (and CALIBRATE=1 for the full suite) to see the table.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run is slow")
	}
	names := trace.Names()
	if os.Getenv("CALIBRATE") == "" {
		// A representative subset keeps the default test run fast.
		names = []string{"mcf", "twolf", "parser", "art", "swim", "equake", "gzip", "gcc", "apsi", "eon"}
	}
	r := NewRunner()
	r.Warmup = 100_000
	r.Measure = 200_000
	cfg := config.Baseline()
	fmt.Printf("%-8s %5s  %6s %6s %7s %7s %7s %6s\n",
		"bench", "type", "ipc", "bmr%", "l1d%", "l2mr%", "paper%", "mlp")
	for _, n := range names {
		p := trace.MustProfile(n)
		m, err := r.RunMachine(cfg, []trace.Profile{p}, &CapPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		st := m.Stats()
		ts := &st.Threads[0]
		l1dRate := 0.0
		if acc := m.Hierarchy().L1D.Accesses; acc > 0 {
			l1dRate = m.Hierarchy().L1D.MissRate()
		}
		l2mr := ts.L2MissRate()
		fmt.Printf("%-8s %5s  %6.3f %6.1f %7.1f %7.1f %7.1f %6.2f\n",
			n, p.Type(), ts.IPC(st.Cycles), ts.MispredictRate(), l1dRate, l2mr,
			p.PaperL2MissRate, st.AvgMLP())
		// The taxonomy property: MEM benchmarks above 1%, ILP below 5%.
		if p.Mem && l2mr < 1.0 {
			t.Errorf("%s: MEM benchmark measured L2 miss rate %.2f%% < 1%%", n, l2mr)
		}
		if !p.Mem && l2mr > 5.0 {
			t.Errorf("%s: ILP benchmark measured L2 miss rate %.2f%% > 5%%", n, l2mr)
		}
	}
}
