// Package sim orchestrates simulations: it runs multiprogrammed workloads
// under a chosen policy with warmup, collects metrics, and maintains the
// single-thread baselines the Hmean metric needs.
package sim

import (
	"fmt"
	"sync/atomic"

	"dcra/internal/config"
	"dcra/internal/cpu"
	"dcra/internal/metrics"
	"dcra/internal/obs"
	"dcra/internal/policy"
	"dcra/internal/sample"
	"dcra/internal/singleflight"
	"dcra/internal/stats"
	"dcra/internal/trace"
	"dcra/internal/workload"
)

// PolicyFactory constructs a fresh policy instance per run (policies carry
// per-run state such as flush episodes or miss-predictor tables).
type PolicyFactory func() cpu.Policy

// Result summarises one simulation run.
type Result struct {
	Workload workload.Workload
	Policy   string
	Stats    *stats.Stats

	IPCs       []float64 // per-thread IPC
	Throughput float64   // sum of IPCs
	Hmean      float64   // harmonic mean of relative IPCs (0 if baselines missing)
	WSpeedup   float64

	// Sched carries open-system scheduler metrics when the cell is a
	// job-stream trial (internal/sched) rather than a fixed-window run.
	Sched *SchedSummary `json:"Sched,omitempty"`

	// Sampled carries the SMARTS-style sampling summary (window means,
	// standard errors, confidence intervals) when the run used the sampled
	// execution mode; nil for exact runs. For sampled runs, IPCs/Throughput
	// are the window means and Stats aggregates the measured windows only.
	Sampled *sample.Summary `json:"Sampled,omitempty"`

	// Probe carries the periodic machine probe's per-thread IPC and ROB
	// occupancy time-series when the runner had ProbeInterval set; nil
	// (and absent from serialized results) otherwise, so unprobed runs
	// keep their exact stored bytes.
	Probe *obs.ProbeSeries `json:"Probe,omitempty"`
}

// SchedSummary is the open-system slice of a Result: the per-trial metrics
// of one job-stream scheduling run. It lives here (not in internal/sched) so
// the campaign store can persist trials without the sim package importing
// the scheduler that drives it.
type SchedSummary struct {
	Contexts  int    `json:"contexts"`  // hardware contexts served
	Jobs      int    `json:"jobs"`      // jobs offered by the arrival process
	Completed int    `json:"completed"` // jobs run to their full budget
	Cycles    uint64 `json:"cycles"`    // trial length in cycles

	JobsPerMCycle float64 `json:"jobs_per_mcycle"` // completed jobs per 10^6 cycles
	UopsPerCycle  float64 `json:"uops_per_cycle"`  // aggregate committed IPC over the trial

	P50Turnaround  float64 `json:"p50_turnaround_cycles"`
	P99Turnaround  float64 `json:"p99_turnaround_cycles"`
	MeanTurnaround float64 `json:"mean_turnaround_cycles"`

	// Jain is Jain's fairness index over completed jobs' progress rates
	// (budget / turnaround): 1.0 means every job progressed equally fast.
	Jain float64 `json:"jain_fairness"`

	// EventLogSHA digests the trial's job event log; same-seed trials must
	// reproduce it byte-identically (the determinism tests assert this).
	EventLogSHA string `json:"event_log_sha"`
}

// baselineKey identifies one single-thread baseline run. config.Config is a
// struct of scalars, so the key is comparable and map lookups cost no
// formatting (the previous string key went through fmt.Sprintf("%+v", cfg)
// on every probe).
type baselineKey struct {
	cfg  config.Config
	name string
}

// Runner executes simulations with fixed warmup/measurement windows and a
// fixed seed, and caches single-thread baselines per configuration. The
// baseline cache is safe for concurrent use: parallel experiment workers
// needing the same baseline compute it exactly once (single-flight) and all
// observe the identical value.
//
// The window/seed fields must not be mutated while runs are in flight: every
// run snapshots them at start and re-checks at completion, panicking on a
// mid-flight change instead of silently mixing results measured under
// different protocols.
//
// Pool, when set (NewRunner sets it), recycles machine allocations across
// runs: RunMachine draws from the pool and RunWorkload/SingleIPC return
// machines to it once their results are extracted. Reuse is observationally
// invisible — a pooled machine is Reinit-ed to bit-identical
// post-construction state (TestPooledRunsBitIdentical).
type Runner struct {
	Warmup  uint64 // cycles simulated before statistics reset
	Measure uint64 // measured cycles
	Seed    uint64

	Pool *MachinePool // optional machine reuse; nil builds fresh machines

	// Obs, when set, receives runner-level telemetry (sampled-mode
	// window counts and CI widths). Set it before runs start; like the
	// window fields it must not change while runs are in flight.
	Obs *obs.Registry

	// ProbeInterval, when non-zero, makes RunWorkload sample the machine
	// every ProbeInterval cycles of the measured window (per-thread IPC
	// and ROB occupancy) into Result.Probe. The probed run commits a
	// bit-identical stream — the probe only reads counters.
	ProbeInterval uint64

	baseline        singleflight.Memo[baselineKey, float64]
	baselineSampled singleflight.Memo[baselineKey, float64]
	inFlight        atomic.Int64
}

// NewRunner returns a Runner with the default windows used throughout the
// experiments (50k warmup + 300k measured cycles) and a machine pool.
func NewRunner() *Runner {
	return &Runner{Warmup: 50_000, Measure: 300_000, Seed: 0x5eed_dc2a, Pool: NewMachinePool()}
}

// protocol is the Runner field snapshot the in-flight guard compares.
type protocol struct{ warmup, measure, seed uint64 }

// beginRun snapshots the measurement protocol for one run.
func (r *Runner) beginRun() protocol {
	r.inFlight.Add(1)
	return protocol{r.Warmup, r.Measure, r.Seed}
}

// endRun verifies the protocol did not change while the run was in flight.
// The comparison happens before the in-flight count drops: a mutator
// legally waiting for InFlight() == 0 must not race the read of the fields.
func (r *Runner) endRun(snap protocol) {
	mutated := (protocol{r.Warmup, r.Measure, r.Seed}) != snap
	r.inFlight.Add(-1)
	if mutated {
		panic("sim: Runner windows/seed mutated while a run was in flight")
	}
}

// InFlight returns the number of runs currently executing; mutating the
// window/seed fields is only legal when it is zero.
func (r *Runner) InFlight() int64 { return r.inFlight.Load() }

// RunMachine builds (or draws from the pool) a machine for (cfg, profiles,
// policy) and runs the warmup+measure protocol, returning the machine for
// inspection. Callers that extract what they need should hand the machine
// back via Recycle; keeping it (or dropping it) is also safe.
func (r *Runner) RunMachine(cfg config.Config, profiles []trace.Profile, pol cpu.Policy) (*cpu.Machine, error) {
	m, _, err := r.runProtocol(cfg, profiles, pol, false)
	return m, err
}

// RunMachineProbed is RunMachine with the periodic machine probe: when
// the runner's ProbeInterval is non-zero the measured window is sampled
// into the returned series (nil otherwise). The committed stream is
// bit-identical to RunMachine's.
func (r *Runner) RunMachineProbed(cfg config.Config, profiles []trace.Profile, pol cpu.Policy) (*cpu.Machine, *obs.ProbeSeries, error) {
	return r.runProtocol(cfg, profiles, pol, true)
}

func (r *Runner) runProtocol(cfg config.Config, profiles []trace.Profile, pol cpu.Policy, probe bool) (*cpu.Machine, *obs.ProbeSeries, error) {
	snap := r.beginRun()
	defer r.endRun(snap)
	m, err := r.Pool.Get(cfg, profiles, pol, r.Seed)
	if err != nil {
		return nil, nil, err
	}
	m.Run(r.Warmup)
	m.ResetStats()
	if probe && r.ProbeInterval > 0 {
		return m, ProbeRun(m, r.Measure, r.ProbeInterval), nil
	}
	m.Run(r.Measure)
	return m, nil, nil
}

// Recycle returns a machine obtained from RunMachine to the runner's pool.
// Results already extracted (Stats, IPCs) stay valid; the machine itself
// must not be touched afterwards.
func (r *Runner) Recycle(m *cpu.Machine) { r.Pool.Put(m) }

// RunWorkload executes one Table 4 workload under the policy from mk and
// computes all metrics (Hmean uses cached single-thread baselines on the
// same configuration).
func (r *Runner) RunWorkload(cfg config.Config, w workload.Workload, mk PolicyFactory) (Result, error) {
	pol := mk()
	m, probe, err := r.RunMachineProbed(cfg, w.Profiles(), pol)
	if err != nil {
		return Result{}, fmt.Errorf("sim: workload %s under %s: %w", w.ID(), pol.Name(), err)
	}
	st := m.Stats()
	r.Recycle(m) // st stays valid: reuse abandons, never clears, old stats
	res := Result{Workload: w, Policy: pol.Name(), Stats: st, Probe: probe}
	res.IPCs = make([]float64, len(w.Names))
	single := make([]float64, len(w.Names))
	for i := range w.Names {
		res.IPCs[i] = st.Threads[i].IPC(st.Cycles)
		s, err := r.SingleIPC(cfg, w.Names[i])
		if err != nil {
			return Result{}, err
		}
		single[i] = s
	}
	res.Throughput = metrics.Throughput(res.IPCs)
	res.Hmean = metrics.Hmean(res.IPCs, single)
	res.WSpeedup = metrics.WeightedSpeedup(res.IPCs, single)
	return res, nil
}

// SamplePlan resolves the sampling schedule for cfg under this runner's
// protocol: an explicit cfg.Sampling block wins, otherwise the schedule is
// derived from the runner's exact warmup/measure windows, so quick and full
// protocols scale their sampled counterparts consistently.
func (r *Runner) SamplePlan(cfg config.Config) sample.Params {
	if cfg.Sampling.Enabled() {
		return sample.FromConfig(cfg.Sampling)
	}
	return sample.Derive(r.Warmup, r.Measure)
}

// RunMachineSampled is RunMachine's sampled-mode counterpart: it draws a
// machine and executes the SMARTS schedule instead of the single
// warmup+measure window. The returned stats aggregate the measured windows.
func (r *Runner) RunMachineSampled(cfg config.Config, profiles []trace.Profile, pol cpu.Policy) (*cpu.Machine, *sample.Summary, *stats.Stats, error) {
	snap := r.beginRun()
	defer r.endRun(snap)
	m, err := r.Pool.Get(cfg, profiles, pol, r.Seed)
	if err != nil {
		return nil, nil, nil, err
	}
	sum, agg, err := sample.RunObserved(m, r.SamplePlan(cfg), r.Obs, nil)
	if err != nil {
		r.Pool.Put(m)
		return nil, nil, nil, err
	}
	return m, sum, agg, nil
}

// RunWorkloadSampled executes one workload in sampled mode and computes the
// same metric set as RunWorkload, with per-thread IPCs and throughput taken
// from the window means. Hmean and weighted speedup divide by *sampled*
// single-thread baselines (SingleIPCSampled): sampled mode is self-contained
// — a sampled sweep never pays for a full-length exact run, which would
// otherwise dominate its cost — and both metric axes carry the same
// estimator. Exact cells remain the verifier for absolute numbers; the
// parity harness compares throughput, which baselines do not touch.
func (r *Runner) RunWorkloadSampled(cfg config.Config, w workload.Workload, mk PolicyFactory) (Result, error) {
	pol := mk()
	m, sum, agg, err := r.RunMachineSampled(cfg, w.Profiles(), pol)
	if err != nil {
		return Result{}, fmt.Errorf("sim: sampled workload %s under %s: %w", w.ID(), pol.Name(), err)
	}
	r.Recycle(m)
	res := Result{Workload: w, Policy: pol.Name(), Stats: agg, Sampled: sum}
	res.IPCs = make([]float64, len(w.Names))
	single := make([]float64, len(w.Names))
	for i := range w.Names {
		res.IPCs[i] = sum.IPC[i]
		s, err := r.SingleIPCSampled(cfg, w.Names[i])
		if err != nil {
			return Result{}, err
		}
		single[i] = s
	}
	res.Throughput = sum.Throughput
	res.Hmean = metrics.Hmean(res.IPCs, single)
	res.WSpeedup = metrics.WeightedSpeedup(res.IPCs, single)
	return res, nil
}

// SingleIPC returns the single-thread IPC of a benchmark on cfg, simulating
// it on first use and caching thereafter. Baselines use ICOUNT (with one
// thread every non-partitioning policy behaves identically). Concurrent
// callers for the same (cfg, name) share one simulation.
func (r *Runner) SingleIPC(cfg config.Config, name string) (float64, error) {
	// singleflight.Memo keeps waiters from blocking forever even if the run
	// panics (MustProfile panics on an unknown benchmark): the panic is
	// published as the key's error before propagating.
	return r.baseline.Do(baselineKey{cfg: cfg, name: name}, func() (float64, error) {
		m, err := r.RunMachine(cfg, []trace.Profile{trace.MustProfile(name)}, policy.NewICount())
		if err != nil {
			return 0, fmt.Errorf("sim: baseline %s: %w", name, err)
		}
		ipc := m.Stats().Threads[0].IPC(m.Stats().Cycles)
		r.Recycle(m)
		return ipc, nil
	})
}

// SingleIPCSampled is SingleIPC's sampled-mode counterpart: the same
// single-thread ICOUNT baseline measured with the runner's sampling schedule
// (window-mean IPC) instead of the full exact window, cached separately.
func (r *Runner) SingleIPCSampled(cfg config.Config, name string) (float64, error) {
	return r.baselineSampled.Do(baselineKey{cfg: cfg, name: name}, func() (float64, error) {
		m, sum, _, err := r.RunMachineSampled(cfg, []trace.Profile{trace.MustProfile(name)}, policy.NewICount())
		if err != nil {
			return 0, fmt.Errorf("sim: sampled baseline %s: %w", name, err)
		}
		r.Recycle(m)
		return sum.IPC[0], nil
	})
}

// CapPolicy is a utility policy for resource-restriction studies (the
// paper's Figure 2): ICOUNT fetch with fixed per-thread caps on selected
// resources, no gating.
type CapPolicy struct {
	Caps [cpu.NumResources]int // 0 = unlimited
}

// Name implements cpu.Policy.
func (*CapPolicy) Name() string { return "CAP" }

// Tick implements cpu.Policy.
func (*CapPolicy) Tick(*cpu.Machine) {}

// Rank implements cpu.Policy.
func (*CapPolicy) Rank(m *cpu.Machine, ts []int) { cpu.RankByICount(m, ts) }

// Gate implements cpu.Policy.
func (*CapPolicy) Gate(*cpu.Machine, int) bool { return false }

// Cap implements cpu.Partitioner.
func (c *CapPolicy) Cap(m *cpu.Machine, t int, r cpu.Resource) int { return c.Caps[r] }
