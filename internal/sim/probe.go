package sim

import (
	"dcra/internal/cpu"
	"dcra/internal/isa"
	"dcra/internal/obs"
)

// ProbeRun advances m by measure cycles in interval-sized chunks,
// sampling per-thread IPC (over each interval, via the CommitObserver
// seam) and instantaneous ROB occupancy at every tick. Because
// Machine.Run is a plain step loop, chunked advancement is bit-identical
// to one m.Run(measure) call — the probe observes the run, it never
// steers it (TestProbedRunBitIdentical asserts this).
func ProbeRun(m *cpu.Machine, measure, interval uint64) *obs.ProbeSeries {
	nt := m.NumThreads()
	series := &obs.ProbeSeries{Interval: interval}
	commits := make([]uint64, nt)
	prev := make([]uint64, nt)
	m.SetCommitObserver(func(t int, _ *isa.Uop) { commits[t]++ })
	defer m.SetCommitObserver(nil)
	start := m.Cycle()
	var done uint64
	for done < measure {
		chunk := interval
		if rest := measure - done; chunk > rest {
			chunk = rest
		}
		m.Run(chunk)
		done += chunk
		s := obs.ProbeSample{
			Cycle:  m.Cycle() - start,
			IPC:    make([]float64, nt),
			ROBOcc: make([]int, nt),
		}
		for t := 0; t < nt; t++ {
			s.IPC[t] = float64(commits[t]-prev[t]) / float64(chunk)
			prev[t] = commits[t]
			s.ROBOcc[t] = m.Usage(t, cpu.RROB)
		}
		series.Samples = append(series.Samples, s)
	}
	return series
}
