package policy

import "dcra/internal/cpu"

// FlushPP is FLUSH++ (Cazorla et al., ISHPC'03): it monitors the cache
// behaviour of the running threads and dynamically selects between STALL
// (better when pressure on resources is low: few threads missing in L2)
// and FLUSH (better under high pressure: several threads missing often).
//
// Classification runs over a sliding window: a thread is "high-miss" when
// its L2 misses per kilo committed instruction exceed a threshold. With at
// least MemThreadsForFlush high-miss threads the policy behaves as FLUSH;
// otherwise as STALL.
type FlushPP struct {
	// WindowCycles is the re-classification period.
	WindowCycles uint64
	// MPKIThreshold marks a thread high-miss when its windowed L2 misses
	// per 1000 committed instructions reach it.
	MPKIThreshold float64
	// MemThreadsForFlush is the number of high-miss threads that switches
	// the policy into FLUSH mode.
	MemThreadsForFlush int

	flushMode  bool
	flushed    []bool
	lastL2     []uint64
	lastCommit []uint64
	nextEval   uint64
}

// NewFlushPP returns FLUSH++ with the defaults used in the experiments.
func NewFlushPP() *FlushPP {
	return &FlushPP{WindowCycles: 8192, MPKIThreshold: 2, MemThreadsForFlush: 2}
}

// Name implements cpu.Policy.
func (*FlushPP) Name() string { return "FLUSH++" }

// Tick implements cpu.Policy: re-classify periodically, and fire flushes
// when in FLUSH mode.
func (f *FlushPP) Tick(m *cpu.Machine) {
	nt := m.NumThreads()
	if f.flushed == nil {
		f.flushed = make([]bool, nt)
		f.lastL2 = make([]uint64, nt)
		f.lastCommit = make([]uint64, nt)
		f.flushMode = true // conservative start; first window corrects it
	}
	if m.Cycle() >= f.nextEval {
		f.reclassify(m)
		f.nextEval = m.Cycle() + f.WindowCycles
	}
	for t := 0; t < nt; t++ {
		if m.PendingL2(t) == 0 {
			f.flushed[t] = false
			continue
		}
		if f.flushMode && !f.flushed[t] {
			m.FlushThread(t)
			f.flushed[t] = true
		}
	}
}

func (f *FlushPP) reclassify(m *cpu.Machine) {
	st := m.Stats()
	high := 0
	for t := range st.Threads {
		l2 := st.Threads[t].L2DMisses
		com := st.Threads[t].Committed
		dl2 := l2 - f.lastL2[t]
		dcom := com - f.lastCommit[t]
		f.lastL2[t], f.lastCommit[t] = l2, com
		if dcom == 0 {
			// A thread that committed nothing all window is wedged on
			// misses: treat as high-miss.
			if dl2 > 0 || st.Threads[t].Committed == 0 {
				high++
			}
			continue
		}
		if 1000*float64(dl2)/float64(dcom) >= f.MPKIThreshold {
			high++
		}
	}
	f.flushMode = high >= f.MemThreadsForFlush
}

// Rank implements cpu.Policy.
func (*FlushPP) Rank(m *cpu.Machine, ts []int) { cpu.RankByICount(m, ts) }

// Gate implements cpu.Policy: both modes stall the missing thread.
func (f *FlushPP) Gate(m *cpu.Machine, t int) bool { return m.PendingL2(t) > 0 }

// FlushMode reports the current operating mode (true = FLUSH); exposed for
// tests and reports.
func (f *FlushPP) FlushMode() bool { return f.flushMode }
