// Package policy implements the instruction-fetch policies the paper
// compares DCRA against: ROUND-ROBIN, ICOUNT, STALL, FLUSH, FLUSH++, DG,
// PDG, and the static resource allocation (SRA) baseline.
//
// Each policy implements cpu.Policy; some additionally implement
// cpu.Partitioner (SRA), cpu.FetchObserver or cpu.LoadObserver (PDG).
// The DCRA policy itself — the paper's contribution — lives in
// internal/core.
package policy

import (
	"dcra/internal/cpu"
	"dcra/internal/isa"
)

// RoundRobin fetches from all threads alternately, disregarding resource
// use (Tullsen et al., ISCA'95).
type RoundRobin struct{}

// NewRoundRobin returns the ROUND-ROBIN fetch policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements cpu.Policy.
func (*RoundRobin) Name() string { return "RR" }

// Tick implements cpu.Policy.
func (*RoundRobin) Tick(*cpu.Machine) {}

// Rank implements cpu.Policy: rotate priority with the cycle counter.
func (*RoundRobin) Rank(m *cpu.Machine, ts []int) {
	if len(ts) < 2 {
		return
	}
	k := int(m.Cycle()) % len(ts)
	rotated := append(append([]int(nil), ts[k:]...), ts[:k]...)
	copy(ts, rotated)
}

// Gate implements cpu.Policy.
func (*RoundRobin) Gate(*cpu.Machine, int) bool { return false }

// ICount prioritises threads with few instructions in the pre-issue stages
// (Tullsen et al., ISCA'96). It exercises no gating at all.
type ICount struct{}

// NewICount returns the ICOUNT fetch policy.
func NewICount() *ICount { return &ICount{} }

// Name implements cpu.Policy.
func (*ICount) Name() string { return "ICOUNT" }

// Tick implements cpu.Policy.
func (*ICount) Tick(*cpu.Machine) {}

// Rank implements cpu.Policy.
func (*ICount) Rank(m *cpu.Machine, ts []int) { cpu.RankByICount(m, ts) }

// Gate implements cpu.Policy.
func (*ICount) Gate(*cpu.Machine, int) bool { return false }

// Stall is ICOUNT plus fetch-stalling any thread with a detected in-flight
// L2 miss (Tullsen & Brown, MICRO'01). Because detection takes an L1+L2
// lookup, the thread has typically already allocated many entries — the
// "too late" weakness the paper discusses.
type Stall struct{}

// NewStall returns the STALL fetch policy.
func NewStall() *Stall { return &Stall{} }

// Name implements cpu.Policy.
func (*Stall) Name() string { return "STALL" }

// Tick implements cpu.Policy.
func (*Stall) Tick(*cpu.Machine) {}

// Rank implements cpu.Policy.
func (*Stall) Rank(m *cpu.Machine, ts []int) { cpu.RankByICount(m, ts) }

// Gate implements cpu.Policy.
func (*Stall) Gate(m *cpu.Machine, t int) bool { return m.PendingL2(t) > 0 }

// Flush extends STALL: on detecting an L2 miss it additionally squashes all
// of the thread's instructions younger than the missing load, making their
// resources available to other threads, at the cost of re-fetching them
// later (Tullsen & Brown, MICRO'01).
type Flush struct {
	flushed []bool // per thread: already flushed for the current miss episode
}

// NewFlush returns the FLUSH fetch policy.
func NewFlush() *Flush { return &Flush{} }

// Name implements cpu.Policy.
func (*Flush) Name() string { return "FLUSH" }

// Tick implements cpu.Policy: fire one flush per miss episode.
func (f *Flush) Tick(m *cpu.Machine) {
	if f.flushed == nil {
		f.flushed = make([]bool, m.NumThreads())
	}
	for t := 0; t < m.NumThreads(); t++ {
		if m.PendingL2(t) == 0 {
			f.flushed[t] = false
			continue
		}
		if !f.flushed[t] {
			m.FlushThread(t)
			f.flushed[t] = true
		}
	}
}

// Rank implements cpu.Policy.
func (*Flush) Rank(m *cpu.Machine, ts []int) { cpu.RankByICount(m, ts) }

// Gate implements cpu.Policy.
func (*Flush) Gate(m *cpu.Machine, t int) bool { return m.PendingL2(t) > 0 }

// DG (data gating, El-Moursy & Albonesi, HPCA'03) stalls a thread on every
// pending L1 data miss — too severe when the L1 miss hits in L2, which is
// the policy's documented weakness.
type DG struct{}

// NewDG returns the DG fetch policy.
func NewDG() *DG { return &DG{} }

// Name implements cpu.Policy.
func (*DG) Name() string { return "DG" }

// Tick implements cpu.Policy.
func (*DG) Tick(*cpu.Machine) {}

// Rank implements cpu.Policy.
func (*DG) Rank(m *cpu.Machine, ts []int) { cpu.RankByICount(m, ts) }

// Gate implements cpu.Policy.
func (*DG) Gate(m *cpu.Machine, t int) bool { return m.PendingL1D(t) > 0 }

// PDG (predictive data gating, El-Moursy & Albonesi, HPCA'03) gates fetch
// as soon as a fetched load is *predicted* to miss, using a table of 2-bit
// saturating counters indexed by load PC. Prediction removes the detection
// delay but adds another level of speculation; as the paper notes, cache
// misses are hard to predict, so PDG tends to over- and under-gate.
type PDG struct {
	table   []uint8 // 2-bit counters, predicted-miss when >= 2
	pending []int   // per-thread count of in-flight predicted-miss loads
}

const pdgTableSize = 4096

// NewPDG returns the PDG fetch policy.
func NewPDG() *PDG { return &PDG{table: make([]uint8, pdgTableSize)} }

// Name implements cpu.Policy.
func (*PDG) Name() string { return "PDG" }

func (p *PDG) idx(pc uint64) int { return int((pc >> 2) % pdgTableSize) }

// Tick implements cpu.Policy. The predicted-miss accounting is approximate
// (squashed loads never resolve), so drain it whenever the thread empties.
func (p *PDG) Tick(m *cpu.Machine) {
	if p.pending == nil {
		p.pending = make([]int, m.NumThreads())
	}
	for t := 0; t < m.NumThreads(); t++ {
		if m.Usage(t, cpu.RROB) == 0 {
			p.pending[t] = 0
		}
	}
}

// Rank implements cpu.Policy.
func (*PDG) Rank(m *cpu.Machine, ts []int) { cpu.RankByICount(m, ts) }

// Gate implements cpu.Policy.
func (p *PDG) Gate(m *cpu.Machine, t int) bool {
	return p.pending != nil && p.pending[t] > 0
}

// UopFetched implements cpu.FetchObserver.
func (p *PDG) UopFetched(m *cpu.Machine, t int, u *isa.Uop) {
	if u.Class != isa.OpLoad || p.pending == nil {
		return
	}
	if p.table[p.idx(u.PC)] >= 2 {
		p.pending[t]++
	}
}

// LoadResolved implements cpu.LoadObserver: train the miss predictor and
// release the gate.
func (p *PDG) LoadResolved(m *cpu.Machine, t int, pc uint64, l1Miss, l2Miss bool) {
	i := p.idx(pc)
	if l1Miss {
		if p.table[i] < 3 {
			p.table[i]++
		}
	} else if p.table[i] > 0 {
		p.table[i]--
	}
	if p.pending != nil && p.pending[t] > 0 && p.table[i] >= 2 {
		p.pending[t]--
	}
}

// SRA is the static resource allocation baseline: every shared resource is
// hard-partitioned into equal per-thread shares (Pentium 4 style); fetch
// priority is ICOUNT. Idle shares are wasted — the inflexibility DCRA
// addresses.
type SRA struct{}

// NewSRA returns the static allocation policy.
func NewSRA() *SRA { return &SRA{} }

// Name implements cpu.Policy.
func (*SRA) Name() string { return "SRA" }

// Tick implements cpu.Policy.
func (*SRA) Tick(*cpu.Machine) {}

// Rank implements cpu.Policy.
func (*SRA) Rank(m *cpu.Machine, ts []int) { cpu.RankByICount(m, ts) }

// Gate implements cpu.Policy.
func (*SRA) Gate(*cpu.Machine, int) bool { return false }

// Cap implements cpu.Partitioner: equal static shares of every resource.
func (*SRA) Cap(m *cpu.Machine, t int, r cpu.Resource) int {
	return m.Total(r) / m.NumThreads()
}
