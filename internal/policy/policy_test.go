package policy

import (
	"testing"

	"dcra/internal/config"
	"dcra/internal/cpu"
	"dcra/internal/trace"
)

func machineWith(t *testing.T, pol cpu.Policy, names ...string) *cpu.Machine {
	t.Helper()
	profiles := make([]trace.Profile, len(names))
	for i, n := range names {
		profiles[i] = trace.MustProfile(n)
	}
	m, err := cpu.New(config.Baseline(), profiles, pol, 0xfeed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNamesStable(t *testing.T) {
	checks := map[string]cpu.Policy{
		"RR": NewRoundRobin(), "ICOUNT": NewICount(), "STALL": NewStall(),
		"FLUSH": NewFlush(), "FLUSH++": NewFlushPP(), "DG": NewDG(),
		"PDG": NewPDG(), "SRA": NewSRA(),
	}
	for want, p := range checks {
		if p.Name() != want {
			t.Errorf("Name() = %q, want %q", p.Name(), want)
		}
	}
}

func TestRoundRobinRotates(t *testing.T) {
	rr := NewRoundRobin()
	m := machineWith(t, rr, "gzip", "eon", "bzip2")
	m.Run(1)
	a := []int{0, 1, 2}
	rr.Rank(m, a)
	m.Run(1)
	b := []int{0, 1, 2}
	rr.Rank(m, b)
	if a[0] == b[0] {
		t.Fatalf("priority did not rotate: %v then %v", a, b)
	}
}

func TestICountOrdersByOccupancy(t *testing.T) {
	p := NewICount()
	m := machineWith(t, p, "mcf", "gzip")
	m.Run(5000)
	ts := []int{0, 1}
	p.Rank(m, ts)
	if m.ICount(ts[0]) > m.ICount(ts[1]) {
		t.Fatalf("rank order violates ICOUNT: %d(%d) before %d(%d)",
			ts[0], m.ICount(ts[0]), ts[1], m.ICount(ts[1]))
	}
}

func TestStallGatesOnPendingL2(t *testing.T) {
	p := NewStall()
	m := machineWith(t, p, "mcf", "gzip")
	sawGate := false
	for i := 0; i < 30000 && !sawGate; i++ {
		m.Run(1)
		if m.PendingL2(0) > 0 {
			if !p.Gate(m, 0) {
				t.Fatal("STALL must gate a thread with pending L2 misses")
			}
			sawGate = true
		}
		if m.PendingL2(1) == 0 && p.Gate(m, 1) {
			t.Fatal("STALL gated a thread without pending L2 misses")
		}
	}
	if !sawGate {
		t.Fatal("mcf never accumulated a pending L2 miss in 30k cycles")
	}
}

func TestFlushSquashesOncePerEpisode(t *testing.T) {
	p := NewFlush()
	m := machineWith(t, p, "mcf", "gzip")
	m.Run(40_000)
	st := m.Stats()
	if st.Threads[0].Flushes == 0 {
		t.Fatal("FLUSH never flushed mcf in 40k cycles")
	}
	// A flush squashes younger uops: squashed count reflects it.
	if st.Threads[0].Squashed == 0 {
		t.Fatal("flushes reported but nothing squashed")
	}
	// Forward progress must continue.
	if st.Threads[0].Committed == 0 || st.Threads[1].Committed == 0 {
		t.Fatalf("starvation under FLUSH: %v", st)
	}
}

func TestDGGatesOnL1Misses(t *testing.T) {
	p := NewDG()
	m := machineWith(t, p, "mcf", "gzip")
	saw := false
	for i := 0; i < 30000; i++ {
		m.Run(1)
		g0 := p.Gate(m, 0)
		if g0 != (m.PendingL1D(0) > 0) {
			t.Fatal("DG gate must equal pendingL1D > 0")
		}
		saw = saw || g0
	}
	if !saw {
		t.Fatal("DG never gated mcf")
	}
}

func TestPDGProgresses(t *testing.T) {
	p := NewPDG()
	m := machineWith(t, p, "mcf", "twolf")
	m.Run(60_000)
	st := m.Stats()
	for i := range st.Threads {
		if st.Threads[i].Committed == 0 {
			t.Fatalf("thread %d starved under PDG (gate leak?):\n%s", i, st)
		}
	}
}

func TestSRACapsAreEqualShares(t *testing.T) {
	p := NewSRA()
	m := machineWith(t, p, "gzip", "mcf", "art", "eon")
	for _, r := range []cpu.Resource{cpu.RIntIQ, cpu.RFPIQ, cpu.RLSIQ, cpu.RIntRegs, cpu.RFPRegs, cpu.RROB} {
		want := m.Total(r) / 4
		for tid := 0; tid < 4; tid++ {
			if got := p.Cap(m, tid, r); got != want {
				t.Errorf("Cap(t%d, %v) = %d, want %d", tid, r, got, want)
			}
		}
	}
}

func TestSRANeverExceedsPartition(t *testing.T) {
	p := NewSRA()
	m := machineWith(t, p, "mcf", "twolf", "art", "swim")
	caps := map[cpu.Resource]int{}
	for _, r := range cpu.DCRAResources {
		caps[r] = m.Total(r) / 4
	}
	for i := 0; i < 30_000; i++ {
		m.Run(1)
		for tid := 0; tid < 4; tid++ {
			for r, c := range caps {
				if u := m.Usage(tid, r); u > c {
					t.Fatalf("cycle %d: thread %d uses %d of %v, cap %d", i, tid, u, r, c)
				}
			}
		}
	}
}

func TestFlushPPModeSwitch(t *testing.T) {
	p := NewFlushPP()
	// All-MEM 4-thread workload: must settle in FLUSH mode.
	m := machineWith(t, p, "mcf", "art", "swim", "equake")
	m.Run(40_000)
	if !p.FlushMode() {
		t.Error("FLUSH++ should use FLUSH mode on a 4-MEM workload")
	}
	// All-ILP workload: must settle in STALL mode.
	p2 := NewFlushPP()
	m2 := machineWith(t, p2, "gzip", "eon", "bzip2", "crafty")
	m2.Run(40_000)
	if p2.FlushMode() {
		t.Error("FLUSH++ should use STALL mode on a 4-ILP workload")
	}
}

func TestGatingPoliciesStillCommit(t *testing.T) {
	mks := []func() cpu.Policy{
		func() cpu.Policy { return NewRoundRobin() },
		func() cpu.Policy { return NewICount() },
		func() cpu.Policy { return NewStall() },
		func() cpu.Policy { return NewFlush() },
		func() cpu.Policy { return NewFlushPP() },
		func() cpu.Policy { return NewDG() },
		func() cpu.Policy { return NewPDG() },
		func() cpu.Policy { return NewSRA() },
	}
	for _, mk := range mks {
		pol := mk()
		m := machineWith(t, pol, "mcf", "gzip")
		m.Run(40_000)
		st := m.Stats()
		for i := range st.Threads {
			if st.Threads[i].Committed == 0 {
				t.Errorf("%s: thread %d starved completely", pol.Name(), i)
			}
		}
	}
}
