package workload

import (
	"testing"

	"dcra/internal/trace"
)

func TestAllHas36Workloads(t *testing.T) {
	ws := All()
	if len(ws) != 36 {
		t.Fatalf("Table 4 has 36 workloads, got %d", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if seen[w.ID()] {
			t.Errorf("duplicate workload id %s", w.ID())
		}
		seen[w.ID()] = true
		if len(w.Names) != w.Threads {
			t.Errorf("%s: %d names for %d threads", w.ID(), len(w.Names), w.Threads)
		}
	}
}

func TestAllBenchmarksResolve(t *testing.T) {
	for _, w := range All() {
		for _, n := range w.Names {
			if _, ok := trace.Benchmarks()[n]; !ok {
				t.Errorf("%s references unknown benchmark %q", w.ID(), n)
			}
		}
		if ps := w.Profiles(); len(ps) != w.Threads {
			t.Errorf("%s: Profiles() returned %d", w.ID(), len(ps))
		}
	}
}

// TestKindsConsistentWithTaxonomy verifies the paper's composition rule:
// ILP workloads contain only ILP threads, MEM only MEM threads, MIX a
// genuine mixture.
func TestKindsConsistentWithTaxonomy(t *testing.T) {
	for _, w := range All() {
		mem, ilp := 0, 0
		for _, n := range w.Names {
			if trace.MustProfile(n).Mem {
				mem++
			} else {
				ilp++
			}
		}
		switch w.Kind {
		case ILP:
			if mem != 0 {
				t.Errorf("%s (%v): ILP workload contains %d MEM threads", w.ID(), w.Names, mem)
			}
		case MEM:
			if ilp != 0 {
				t.Errorf("%s (%v): MEM workload contains %d ILP threads", w.ID(), w.Names, ilp)
			}
		case MIX:
			if mem == 0 || ilp == 0 {
				t.Errorf("%s (%v): MIX workload is not mixed (mem=%d ilp=%d)", w.ID(), w.Names, mem, ilp)
			}
		}
	}
}

func TestGetErrors(t *testing.T) {
	if _, err := Get(5, ILP, 1); err == nil {
		t.Error("5-thread workload should not exist")
	}
	if _, err := Get(2, Kind("XXX"), 1); err == nil {
		t.Error("unknown kind should error")
	}
	if _, err := Get(2, ILP, 0); err == nil {
		t.Error("group 0 should error")
	}
	if _, err := Get(2, ILP, 5); err == nil {
		t.Error("group 5 should error")
	}
}

func TestGroups(t *testing.T) {
	gs := Groups(3, MIX)
	if len(gs) != 4 {
		t.Fatalf("Groups returned %d, want 4", len(gs))
	}
	for i, g := range gs {
		if g.Group != i+1 || g.Threads != 3 || g.Kind != MIX {
			t.Errorf("group %d wrong: %+v", i, g)
		}
	}
}

func TestPaperSpotChecks(t *testing.T) {
	// Spot-check cells against the paper's Table 4 text.
	w, _ := Get(2, MEM, 1)
	if w.Names[0] != "mcf" || w.Names[1] != "twolf" {
		t.Errorf("MEM2 group1 = %v, want mcf+twolf", w.Names)
	}
	w, _ = Get(4, MIX, 2)
	if w.Names[0] != "mcf" || w.Names[3] != "gzip" {
		t.Errorf("MIX4 group2 = %v, want mcf,mesa,lucas,gzip", w.Names)
	}
	w, _ = Get(3, ILP, 4)
	if w.Names[0] != "mesa" || w.Names[2] != "fma3d" {
		t.Errorf("ILP3 group4 = %v, want mesa,vortex,fma3d", w.Names)
	}
}

func TestBenchmarksUsed(t *testing.T) {
	used := BenchmarksUsed()
	if len(used) == 0 {
		t.Fatal("no benchmarks used")
	}
	seen := map[string]bool{}
	for _, n := range used {
		if seen[n] {
			t.Errorf("duplicate %q", n)
		}
		seen[n] = true
	}
	// parser appears only in MEM4 workloads; make sure it is collected.
	if !seen["parser"] {
		t.Error("parser missing from BenchmarksUsed")
	}
}

func TestID(t *testing.T) {
	w, _ := Get(4, MEM, 3)
	if w.ID() != "MEM4.g3" {
		t.Fatalf("ID = %q", w.ID())
	}
}
