// Package workload encodes the paper's Table 4: the multiprogrammed
// workloads used in every multithreaded experiment, organised as 9 workload
// types (2/3/4 threads x ILP/MIX/MEM) with 4 randomly drawn groups each.
package workload

import (
	"fmt"
	"sync"

	"dcra/internal/trace"
)

// Kind is the memory character of a workload.
type Kind string

// Workload kinds, following the paper's taxonomy.
const (
	ILP Kind = "ILP" // only high-ILP threads
	MIX Kind = "MIX" // mixture of ILP and MEM threads
	MEM Kind = "MEM" // only memory-bounded threads
)

// Kinds lists the workload kinds in the paper's presentation order.
var Kinds = []Kind{ILP, MIX, MEM}

// Workload is one multiprogrammed combination of benchmarks.
type Workload struct {
	Threads int
	Kind    Kind
	Group   int // 1..4, the paper's workload group
	Names   []string
}

// ID returns a stable identifier like "MEM2.g1".
func (w Workload) ID() string {
	return fmt.Sprintf("%s%d.g%d", w.Kind, w.Threads, w.Group)
}

// Profiles resolves the benchmark names to trace profiles.
func (w Workload) Profiles() []trace.Profile {
	ps := make([]trace.Profile, len(w.Names))
	for i, n := range w.Names {
		ps[i] = trace.MustProfile(n)
	}
	return ps
}

// table4 is the verbatim content of the paper's Table 4.
var table4 = map[int]map[Kind][4][]string{
	2: {
		ILP: {
			{"gzip", "bzip2"},
			{"wupwise", "gcc"},
			{"fma3d", "mesa"},
			{"apsi", "gcc"},
		},
		MIX: {
			{"gzip", "twolf"},
			{"wupwise", "twolf"},
			{"lucas", "crafty"},
			{"equake", "bzip2"},
		},
		MEM: {
			{"mcf", "twolf"},
			{"art", "vpr"},
			{"art", "twolf"},
			{"swim", "mcf"},
		},
	},
	3: {
		ILP: {
			{"gcc", "eon", "gap"},
			{"gcc", "apsi", "gzip"},
			{"crafty", "perl", "wupwise"},
			{"mesa", "vortex", "fma3d"},
		},
		MIX: {
			{"twolf", "eon", "vortex"},
			{"lucas", "gap", "apsi"},
			{"equake", "perl", "gcc"},
			{"mcf", "apsi", "fma3d"},
		},
		MEM: {
			{"mcf", "twolf", "vpr"},
			{"swim", "twolf", "equake"},
			{"art", "twolf", "lucas"},
			{"equake", "vpr", "swim"},
		},
	},
	4: {
		ILP: {
			{"gzip", "bzip2", "eon", "gcc"},
			{"mesa", "gzip", "fma3d", "bzip2"},
			{"crafty", "fma3d", "apsi", "vortex"},
			{"apsi", "gap", "wupwise", "perl"},
		},
		MIX: {
			{"gzip", "twolf", "bzip2", "mcf"},
			{"mcf", "mesa", "lucas", "gzip"},
			{"art", "gap", "twolf", "crafty"},
			{"swim", "fma3d", "vpr", "bzip2"},
		},
		MEM: {
			{"mcf", "twolf", "vpr", "parser"},
			{"art", "twolf", "equake", "mcf"},
			{"equake", "parser", "mcf", "lucas"},
			{"art", "mcf", "vpr", "swim"},
		},
	},
}

// Get returns the paper's workload for (threads, kind, group). Group is
// 1-based as in the text ("the MEM2 result is the mean of ... groups").
func Get(threads int, kind Kind, group int) (Workload, error) {
	byKind, ok := table4[threads]
	if !ok {
		return Workload{}, fmt.Errorf("workload: no %d-thread workloads", threads)
	}
	groups, ok := byKind[kind]
	if !ok {
		return Workload{}, fmt.Errorf("workload: unknown kind %q", kind)
	}
	if group < 1 || group > len(groups) {
		return Workload{}, fmt.Errorf("workload: group %d out of range", group)
	}
	return Workload{Threads: threads, Kind: kind, Group: group, Names: groups[group-1]}, nil
}

// Groups returns the four workload groups of one (threads, kind) type.
func Groups(threads int, kind Kind) []Workload {
	ws := make([]Workload, 0, 4)
	for g := 1; g <= 4; g++ {
		w, err := Get(threads, kind, g)
		if err != nil {
			panic(err)
		}
		ws = append(ws, w)
	}
	return ws
}

// All returns every workload of the paper's Table 4 in deterministic order
// (threads ascending, kind ILP/MIX/MEM, group 1..4): 36 workloads.
func All() []Workload {
	var ws []Workload
	for _, n := range []int{2, 3, 4} {
		for _, k := range Kinds {
			ws = append(ws, Groups(n, k)...)
		}
	}
	return ws
}

// idIndex maps Workload.ID() strings back to workloads, built once.
var idIndex = sync.OnceValue(func() map[string]Workload {
	m := make(map[string]Workload)
	for _, w := range All() {
		m[w.ID()] = w
	}
	return m
})

// ByID resolves a Workload.ID() string (e.g. "MEM2.g1") back to the
// workload. Campaign cells carry workload identity as these strings.
func ByID(id string) (Workload, error) {
	w, ok := idIndex()[id]
	if !ok {
		return Workload{}, fmt.Errorf("workload: unknown workload id %q", id)
	}
	return w, nil
}

// BenchmarksUsed returns the deduplicated set of benchmark names appearing
// anywhere in Table 4, in first-use order — the set needing single-thread
// baselines for the Hmean metric.
func BenchmarksUsed() []string {
	seen := make(map[string]bool)
	var names []string
	for _, w := range All() {
		for _, n := range w.Names {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	return names
}
