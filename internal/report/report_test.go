package report

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tbl := NewTable("demo", "name", "value")
	tbl.AddRow("a", 1)
	tbl.AddRow("longer-name", 2.5)
	tbl.AddNote("a note with %d", 42)
	out := tbl.String()

	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "longer-name") {
		t.Error("missing row")
	}
	if !strings.Contains(out, "2.500") {
		t.Error("floats must render with 3 decimals")
	}
	if !strings.Contains(out, "note: a note with 42") {
		t.Error("missing note")
	}
	// Header separator present.
	if !strings.Contains(out, "----") {
		t.Error("missing separator")
	}
}

func TestRenderCSV(t *testing.T) {
	tbl := NewTable("demo", "a", "b")
	tbl.AddRow("x", 1)
	var b strings.Builder
	tbl.RenderCSV(&b)
	out := b.String()
	want := "# demo\na,b\nx,1\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}

func TestMixedCellTypes(t *testing.T) {
	tbl := NewTable("", "c")
	tbl.AddRow(uint64(7))
	tbl.AddRow(true)
	out := tbl.String()
	if !strings.Contains(out, "7") || !strings.Contains(out, "true") {
		t.Fatalf("default formatting broken: %q", out)
	}
}
