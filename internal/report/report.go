// Package report renders experiment results as fixed-width text tables and
// CSV, matching the rows/series of the paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-oriented result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-text footnote rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	sep := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		fmt.Fprintf(w, "%-*s  ", widths[i], c)
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Join(sep, "  "))
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) {
				fmt.Fprintf(w, "%-*s  ", widths[i], c)
			}
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// RenderCSV writes the table as CSV (title and notes as comments).
func (t *Table) RenderCSV(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "# %s\n", t.Title)
	}
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, r := range t.Rows {
		fmt.Fprintln(w, strings.Join(r, ","))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
}
