// Package metrics computes the multithreaded performance metrics the paper
// reports: IPC throughput and the Hmean throughput-fairness metric of Luo,
// Gummaraju and Franklin (ISPASS'01), plus weighted speedup for reference —
// and the open-system metrics the job scheduler adds (latency percentiles,
// Jain's fairness index).
package metrics

import (
	"math"
	"sort"
)

// Hmean returns the harmonic mean of per-thread relative IPCs
// (multi-thread IPC over single-thread IPC). It rewards balanced progress:
// starving one thread to speed another collapses the harmonic mean, which
// is why the paper prefers it over raw throughput.
func Hmean(multi, single []float64) float64 {
	if len(multi) != len(single) || len(multi) == 0 {
		return 0
	}
	var sum float64
	for i := range multi {
		if single[i] <= 0 || multi[i] <= 0 {
			return 0
		}
		sum += single[i] / multi[i]
	}
	return float64(len(multi)) / sum
}

// WeightedSpeedup returns the sum of per-thread relative IPCs divided by
// the thread count (Tullsen & Brown's fairness metric, shown for contrast).
func WeightedSpeedup(multi, single []float64) float64 {
	if len(multi) != len(single) || len(multi) == 0 {
		return 0
	}
	var sum float64
	for i := range multi {
		if single[i] <= 0 {
			return 0
		}
		sum += multi[i] / single[i]
	}
	return sum / float64(len(multi))
}

// Throughput returns the sum of per-thread IPCs.
func Throughput(multi []float64) float64 {
	var sum float64
	for _, v := range multi {
		sum += v
	}
	return sum
}

// Improvement returns the relative improvement of a over b in percent.
func Improvement(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * (a - b) / b
}

// GeoMean returns the geometric mean of xs (all values must be positive).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Percentile returns the p-th percentile (p in [0,100]) of xs by the
// nearest-rank method: the smallest value such that at least p% of the
// samples are <= it. The input is not modified (a sorted copy is taken);
// empty input returns 0. p <= 0 returns the minimum, p >= 100 the maximum.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// JainFairness returns Jain's fairness index (sum x)^2 / (n * sum x^2) over
// the per-entity allocations xs: 1.0 when all entities receive equal
// allocations, approaching 1/n as one entity dominates. Non-positive entries
// count as zero allocation; an empty or all-zero input returns 0.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		if x < 0 {
			x = 0
		}
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
