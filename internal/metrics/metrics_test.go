package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestHmeanEqualSpeedups(t *testing.T) {
	// Every thread at exactly half its single-thread speed: Hmean = 0.5.
	multi := []float64{1, 2, 0.5}
	single := []float64{2, 4, 1}
	if got := Hmean(multi, single); !almost(got, 0.5) {
		t.Fatalf("Hmean = %v, want 0.5", got)
	}
}

func TestHmeanPunishesStarvation(t *testing.T) {
	single := []float64{2, 2}
	balanced := Hmean([]float64{1, 1}, single)
	starved := Hmean([]float64{1.9, 0.1}, single)
	if starved >= balanced {
		t.Fatalf("starved (%v) should score below balanced (%v)", starved, balanced)
	}
	// Weighted speedup, by contrast, ranks the starved case equal.
	if ws := WeightedSpeedup([]float64{1.9, 0.1}, single); !almost(ws, 0.5) {
		t.Fatalf("weighted speedup = %v, want 0.5", ws)
	}
}

func TestHmeanDegenerate(t *testing.T) {
	if Hmean(nil, nil) != 0 {
		t.Error("empty Hmean should be 0")
	}
	if Hmean([]float64{1}, []float64{1, 2}) != 0 {
		t.Error("length mismatch should be 0")
	}
	if Hmean([]float64{0}, []float64{1}) != 0 {
		t.Error("zero multi IPC should be 0")
	}
	if Hmean([]float64{1}, []float64{0}) != 0 {
		t.Error("zero baseline should be 0")
	}
}

func TestHmeanBoundedByMaxSpeedup(t *testing.T) {
	err := quick.Check(func(a, b uint16) bool {
		m := []float64{float64(a%100) + 1, float64(b%100) + 1}
		s := []float64{50, 50}
		h := Hmean(m, s)
		r0, r1 := m[0]/s[0], m[1]/s[1]
		lo, hi := math.Min(r0, r1), math.Max(r0, r1)
		return h >= lo-1e-9 && h <= hi+1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput([]float64{1, 2, 3}); !almost(got, 6) {
		t.Fatalf("Throughput = %v", got)
	}
	if Throughput(nil) != 0 {
		t.Fatal("empty throughput should be 0")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(1.1, 1.0); !almost(got, 10) {
		t.Fatalf("Improvement = %v, want 10", got)
	}
	if got := Improvement(0.9, 1.0); !almost(got, -10) {
		t.Fatalf("Improvement = %v, want -10", got)
	}
	if Improvement(1, 0) != 0 {
		t.Fatal("zero base should yield 0")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almost(got, 2) {
		t.Fatalf("GeoMean = %v, want 2", got)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Fatal("non-positive input should yield 0")
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty input should yield 0")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); !almost(got, 2) {
		t.Fatalf("Mean = %v", got)
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}

// Harmonic mean is always <= arithmetic mean of the relative IPCs.
func TestHmeanLEArithmetic(t *testing.T) {
	err := quick.Check(func(a, b, c uint16) bool {
		m := []float64{float64(a%50) + 1, float64(b%50) + 1, float64(c%50) + 1}
		s := []float64{25, 25, 25}
		h := Hmean(m, s)
		arith := (m[0]/s[0] + m[1]/s[1] + m[2]/s[2]) / 3
		return h <= arith+1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
