package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestHmeanEqualSpeedups(t *testing.T) {
	// Every thread at exactly half its single-thread speed: Hmean = 0.5.
	multi := []float64{1, 2, 0.5}
	single := []float64{2, 4, 1}
	if got := Hmean(multi, single); !almost(got, 0.5) {
		t.Fatalf("Hmean = %v, want 0.5", got)
	}
}

func TestHmeanPunishesStarvation(t *testing.T) {
	single := []float64{2, 2}
	balanced := Hmean([]float64{1, 1}, single)
	starved := Hmean([]float64{1.9, 0.1}, single)
	if starved >= balanced {
		t.Fatalf("starved (%v) should score below balanced (%v)", starved, balanced)
	}
	// Weighted speedup, by contrast, ranks the starved case equal.
	if ws := WeightedSpeedup([]float64{1.9, 0.1}, single); !almost(ws, 0.5) {
		t.Fatalf("weighted speedup = %v, want 0.5", ws)
	}
}

func TestHmeanDegenerate(t *testing.T) {
	if Hmean(nil, nil) != 0 {
		t.Error("empty Hmean should be 0")
	}
	if Hmean([]float64{1}, []float64{1, 2}) != 0 {
		t.Error("length mismatch should be 0")
	}
	if Hmean([]float64{0}, []float64{1}) != 0 {
		t.Error("zero multi IPC should be 0")
	}
	if Hmean([]float64{1}, []float64{0}) != 0 {
		t.Error("zero baseline should be 0")
	}
}

func TestHmeanBoundedByMaxSpeedup(t *testing.T) {
	err := quick.Check(func(a, b uint16) bool {
		m := []float64{float64(a%100) + 1, float64(b%100) + 1}
		s := []float64{50, 50}
		h := Hmean(m, s)
		r0, r1 := m[0]/s[0], m[1]/s[1]
		lo, hi := math.Min(r0, r1), math.Max(r0, r1)
		return h >= lo-1e-9 && h <= hi+1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput([]float64{1, 2, 3}); !almost(got, 6) {
		t.Fatalf("Throughput = %v", got)
	}
	if Throughput(nil) != 0 {
		t.Fatal("empty throughput should be 0")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(1.1, 1.0); !almost(got, 10) {
		t.Fatalf("Improvement = %v, want 10", got)
	}
	if got := Improvement(0.9, 1.0); !almost(got, -10) {
		t.Fatalf("Improvement = %v, want -10", got)
	}
	if Improvement(1, 0) != 0 {
		t.Fatal("zero base should yield 0")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almost(got, 2) {
		t.Fatalf("GeoMean = %v, want 2", got)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Fatal("non-positive input should yield 0")
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty input should yield 0")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); !almost(got, 2) {
		t.Fatalf("Mean = %v", got)
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {5, 15}, {30, 20}, {40, 20}, {50, 35}, {100, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Input order must not matter, and the input must not be mutated.
	shuffled := []float64{40, 15, 50, 20, 35}
	if got := Percentile(shuffled, 50); !almost(got, 35) {
		t.Fatalf("Percentile on shuffled input = %v, want 35", got)
	}
	if shuffled[0] != 40 || shuffled[4] != 35 {
		t.Fatalf("Percentile mutated its input: %v", shuffled)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	if got := Percentile([]float64{7}, 99); !almost(got, 7) {
		t.Fatalf("single-sample p99 = %v, want 7", got)
	}
}

// TestPercentileExtremes pins the boundary ranks: any p <= 0 answers the
// minimum, p >= 100 the maximum, and a single sample answers itself at
// every p — including out-of-range requests.
func TestPercentileExtremes(t *testing.T) {
	xs := []float64{9, 1, 5}
	for _, p := range []float64{0, -10} {
		if got := Percentile(xs, p); !almost(got, 1) {
			t.Errorf("Percentile(p=%v) = %v, want the minimum 1", p, got)
		}
	}
	for _, p := range []float64{100, 250} {
		if got := Percentile(xs, p); !almost(got, 9) {
			t.Errorf("Percentile(p=%v) = %v, want the maximum 9", p, got)
		}
	}
	for _, p := range []float64{0, 50, 100} {
		if got := Percentile([]float64{7}, p); !almost(got, 7) {
			t.Errorf("single-sample Percentile(p=%v) = %v, want 7", p, got)
		}
		if got := Percentile(nil, p); got != 0 {
			t.Errorf("empty Percentile(p=%v) = %v, want 0", p, got)
		}
	}
}

// The nearest-rank percentile is always an element of the sample, bounded by
// its extremes, and monotone in p.
func TestPercentileProperties(t *testing.T) {
	err := quick.Check(func(a, b, c, d uint16, p uint8) bool {
		xs := []float64{float64(a), float64(b), float64(c), float64(d)}
		pp := float64(p % 101)
		v := Percentile(xs, pp)
		found := false
		for _, x := range xs {
			if x == v {
				found = true
			}
		}
		lo, hi := Percentile(xs, 0), Percentile(xs, 100)
		return found && v >= lo && v <= hi && Percentile(xs, pp) <= Percentile(xs, 100)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestJainFairness(t *testing.T) {
	if got := JainFairness([]float64{3, 3, 3}); !almost(got, 1) {
		t.Fatalf("equal allocations: Jain = %v, want 1", got)
	}
	// One of n entities holding everything scores exactly 1/n.
	if got := JainFairness([]float64{5, 0, 0, 0}); !almost(got, 0.25) {
		t.Fatalf("single-hog Jain = %v, want 0.25", got)
	}
	if got := JainFairness([]float64{1, 2}); !almost(got, 9.0/10) {
		t.Fatalf("Jain(1,2) = %v, want 0.9", got)
	}
	if JainFairness(nil) != 0 || JainFairness([]float64{0, 0}) != 0 {
		t.Fatal("degenerate Jain should be 0")
	}
	// Negative entries count as zero allocation, not negative fairness.
	if got := JainFairness([]float64{-1, 2, 2}); got <= 0 || got > 1 {
		t.Fatalf("Jain with negative entry = %v outside (0,1]", got)
	}
	// A lone entity is perfectly fair to itself, whatever it holds.
	for _, x := range []float64{0.001, 1, 42} {
		if got := JainFairness([]float64{x}); !almost(got, 1) {
			t.Errorf("Jain(%v alone) = %v, want 1", x, got)
		}
	}
	if JainFairness([]float64{0}) != 0 {
		t.Error("Jain of a single zero allocation should be degenerate (0)")
	}
}

// Jain's index always lands in [1/n, 1] for any non-degenerate allocation.
func TestJainBounds(t *testing.T) {
	err := quick.Check(func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		j := JainFairness(xs)
		return j >= 1.0/3-1e-9 && j <= 1+1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// Harmonic mean is always <= arithmetic mean of the relative IPCs.
func TestHmeanLEArithmetic(t *testing.T) {
	err := quick.Check(func(a, b, c uint16) bool {
		m := []float64{float64(a%50) + 1, float64(b%50) + 1, float64(c%50) + 1}
		s := []float64{25, 25, 25}
		h := Hmean(m, s)
		arith := (m[0]/s[0] + m[1]/s[1] + m[2]/s[2]) / 3
		return h <= arith+1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
