package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"dcra/internal/obs"
	"dcra/internal/sim"
	"dcra/internal/singleflight"
)

// Params pins the simulation protocol a store's results were measured under.
// Cell keys cover the processor configuration but not the measurement
// windows or seed, so the store records them in a manifest and refuses to
// mix results from different protocols.
type Params struct {
	Warmup  uint64 `json:"warmup"`
	Measure uint64 `json:"measure"`
	Seed    uint64 `json:"seed"`
}

// manifest is the store's on-disk self-description.
type manifest struct {
	Version int    `json:"version"`
	Params  Params `json:"params"`
}

const storeVersion = 1

// Store is a persistent on-disk result store: one JSON file per cell, named
// by the cell's content key, written atomically (temp file + rename) so
// concurrent writers — including unrelated processes sharing the directory —
// never expose a torn cell. A single-flight memo keeps in-flight cells from
// being simulated or read twice within a process and serves repeat lookups
// from memory.
type Store struct {
	dir         string
	params      Params
	flight      singleflight.Memo[string, sim.Result]
	quarantined atomic.Int64

	o storeObs
}

// storeObs holds the store's pre-resolved instruments; the zero value
// (nil counters) is the disabled state.
type storeObs struct {
	puts, getHits, getMisses, quarantines *obs.Counter
	mergeCells, mergeSkipped              *obs.Counter
}

// SetObs resolves the store's telemetry counters from reg; never
// calling it (or passing nil) leaves the store uninstrumented.
func (st *Store) SetObs(reg *obs.Registry) {
	st.o = storeObs{
		puts:         reg.Counter("store.puts"),
		getHits:      reg.Counter("store.get.hits"),
		getMisses:    reg.Counter("store.get.misses"),
		quarantines:  reg.Counter("store.quarantines"),
		mergeCells:   reg.Counter("store.merge.cells"),
		mergeSkipped: reg.Counter("store.merge.skipped_shards"),
	}
}

// Open opens (or initialises) the store at dir for the given protocol
// params. An existing store with different params is refused: its results
// were measured under another protocol and would merge wrong numbers into
// right-looking tables.
func Open(dir string, p Params) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "cells"), 0o755); err != nil {
		return nil, fmt.Errorf("campaign: opening store: %w", err)
	}
	mpath := filepath.Join(dir, "manifest.json")
	data, err := os.ReadFile(mpath)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		m := manifest{Version: storeVersion, Params: p}
		if err := writeFileAtomic(mpath, mustJSON(m)); err != nil {
			return nil, fmt.Errorf("campaign: writing store manifest: %w", err)
		}
	case err != nil:
		return nil, fmt.Errorf("campaign: reading store manifest: %w", err)
	default:
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("campaign: parsing store manifest: %w", err)
		}
		if m.Version != storeVersion {
			return nil, fmt.Errorf("campaign: store %s has version %d, this binary speaks %d", dir, m.Version, storeVersion)
		}
		if m.Params != p {
			return nil, fmt.Errorf("campaign: store %s was measured with %+v, asked to open with %+v", dir, m.Params, p)
		}
	}
	return &Store{dir: dir, params: p}, nil
}

// OpenExisting opens a store that must already have a manifest, adopting its
// recorded params (used by `campaign status`, which has no protocol flags).
func OpenExisting(dir string) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("campaign: store %s has no manifest: %w", dir, err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("campaign: parsing store manifest: %w", err)
	}
	return Open(dir, m.Params)
}

// Params returns the protocol the store's results were measured under.
func (st *Store) Params() Params { return st.params }

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) cellPath(key string) string {
	return filepath.Join(st.dir, "cells", key+".json")
}

// Get returns the stored result for c, reporting whether it was present.
// A corrupt cell file — truncated or garbled JSON (a crashed disk, a torn
// copy), or a file holding a different cell (key collision, hand-edit) — is
// quarantined to <key>.corrupt and reported as a miss, so one bad file costs
// one resimulation instead of failing the whole render.
func (st *Store) Get(c Cell) (sim.Result, bool, error) {
	key := c.Key()
	data, err := os.ReadFile(st.cellPath(key))
	if errors.Is(err, fs.ErrNotExist) {
		st.o.getMisses.Inc()
		return sim.Result{}, false, nil
	}
	if err != nil {
		return sim.Result{}, false, fmt.Errorf("campaign: reading cell %s: %w", c, err)
	}
	var sc CellResult
	if err := json.Unmarshal(data, &sc); err != nil {
		return sim.Result{}, false, st.quarantine(key, fmt.Sprintf("parsing cell %s: %v", c, err))
	}
	if sc.Cell != c {
		return sim.Result{}, false, st.quarantine(key, fmt.Sprintf("cell file %s holds %s, wanted %s", key, sc.Cell, c))
	}
	st.o.getHits.Inc()
	return sc.Result, true, nil
}

// quarantine moves a corrupt cell file aside (its .corrupt twin no longer
// matches *.json, so Has and Keys miss it and the next Put heals the slot)
// and counts the event. The returned error is nil unless the rename itself
// failed — a miss, not a fatal condition.
func (st *Store) quarantine(key, reason string) error {
	if err := os.Rename(st.cellPath(key), filepath.Join(st.dir, "cells", key+".corrupt")); err != nil {
		return fmt.Errorf("campaign: quarantining corrupt cell %s (%s): %w", key, reason, err)
	}
	st.quarantined.Add(1)
	st.o.quarantines.Inc()
	return nil
}

// Quarantined returns how many corrupt cell files this store has moved
// aside since opening.
func (st *Store) Quarantined() int64 { return st.quarantined.Load() }

// CorruptCount counts the .corrupt files currently parked in the cells
// directory — the durable record of every quarantine ever performed on
// this store, by any process. Quarantined() only sees this process's.
func (st *Store) CorruptCount() (int, error) {
	entries, err := os.ReadDir(filepath.Join(st.dir, "cells"))
	if err != nil {
		return 0, fmt.Errorf("campaign: listing store cells: %w", err)
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".corrupt") {
			n++
		}
	}
	return n, nil
}

// Has reports whether the store holds a result for c without reading it.
func (st *Store) Has(c Cell) bool {
	_, err := os.Stat(st.cellPath(c.Key()))
	return err == nil
}

// Put stores the result for c atomically, overwriting any previous value.
// Cell files share the CellResult schema with shard files: the full cell
// identity rides along so Get can verify the file answers the question asked
// (key collisions, hand-edited files) and the files are self-describing.
func (st *Store) Put(c Cell, r sim.Result) error {
	sc := CellResult{Key: c.Key(), Cell: c, Result: r}
	if err := writeFileAtomic(st.cellPath(sc.Key), mustJSON(sc)); err != nil {
		return fmt.Errorf("campaign: writing cell %s: %w", c, err)
	}
	st.o.puts.Inc()
	return nil
}

// Do returns the result for c, loading it from disk if present and otherwise
// computing it with compute and persisting the result. In-flight cells are
// single-flighted: concurrent requesters within the process share one disk
// read or one simulation, and repeat calls are served from memory. computed
// reports whether compute ran (i.e. the store missed).
func (st *Store) Do(c Cell, compute func() (sim.Result, error)) (r sim.Result, computed bool, err error) {
	r, err = st.flight.Do(c.Key(), func() (sim.Result, error) {
		if r, ok, err := st.Get(c); err != nil || ok {
			return r, err
		}
		computed = true
		r, err := compute()
		if err != nil {
			return r, err
		}
		return r, st.Put(c, r)
	})
	return r, computed, err
}

// Count returns how many of the sweep's cells the store holds, alongside the
// cells still missing (in sweep enumeration order).
func (st *Store) Count(s Sweep) (present int, missing []Cell) {
	seen := make(map[Cell]struct{}, len(s.Cells))
	for _, c := range s.Cells {
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		if st.Has(c) {
			present++
		} else {
			missing = append(missing, c)
		}
	}
	return present, missing
}

// Keys lists the cell keys currently present in the store, in directory
// order (unspecified).
func (st *Store) Keys() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(st.dir, "cells"))
	if err != nil {
		return nil, fmt.Errorf("campaign: listing store cells: %w", err)
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
			continue
		}
		keys = append(keys, strings.TrimSuffix(name, ".json"))
	}
	return keys, nil
}

// GC deletes every stored cell whose key is not in keep, returning the keys
// it removed (sorted). With dryRun set it only reports what it would delete.
// Sweeps evolve — a spec change re-keys its cells — and the store otherwise
// accretes orphans forever; the campaign CLI builds keep from every
// registered sweep's enumeration.
func (st *Store) GC(keep map[string]bool, dryRun bool) ([]string, error) {
	keys, err := st.Keys()
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, key := range keys {
		if keep[key] {
			continue
		}
		if !dryRun {
			if err := os.Remove(st.cellPath(key)); err != nil {
				return removed, fmt.Errorf("campaign: removing stale cell %s: %w", key, err)
			}
		}
		removed = append(removed, key)
	}
	sort.Strings(removed)
	return removed, nil
}

// mustJSON marshals v with indentation; the schemas here cannot fail.
func mustJSON(v any) []byte {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("campaign: marshalling %T: %v", v, err))
	}
	return append(data, '\n')
}

// writeFileAtomic writes data to path via a temp file and rename, so readers
// (and crashed writers) never observe a partial file.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
