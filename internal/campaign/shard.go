package campaign

import (
	"encoding/json"
	"fmt"
	"os"

	"dcra/internal/sim"
)

// CellResult pairs a cell with its result in a shard file.
type CellResult struct {
	Key    string     `json:"key"`
	Cell   Cell       `json:"cell"`
	Result sim.Result `json:"result"`
}

// ShardFile is the interchange format for one shard of a campaign: the
// sweep's identity (name + content hash), which partition this is, the
// measurement protocol, and the shard's cell results. Any host can compute
// one shard and ship the file home; merge recombines shards bit-identically
// because every cell is a pure function of (cell, params, seed).
type ShardFile struct {
	Campaign  string       `json:"campaign"`
	SweepHash string       `json:"sweep_hash"`
	Shards    int          `json:"shards"`
	Shard     int          `json:"shard"`
	Params    Params       `json:"params"`
	Cells     []CellResult `json:"cells"`
}

// WriteShard writes a shard file atomically.
func WriteShard(path string, sf ShardFile) error {
	if err := writeFileAtomic(path, mustJSON(sf)); err != nil {
		return fmt.Errorf("campaign: writing shard %s: %w", path, err)
	}
	return nil
}

// ReadShard reads and integrity-checks a shard file: every recorded cell key
// must match the cell's recomputed content key, so a corrupted or
// hand-edited shard is rejected before it can poison a merge.
func ReadShard(path string) (ShardFile, error) {
	var sf ShardFile
	data, err := os.ReadFile(path)
	if err != nil {
		return sf, fmt.Errorf("campaign: reading shard %s: %w", path, err)
	}
	if err := json.Unmarshal(data, &sf); err != nil {
		return sf, fmt.Errorf("campaign: parsing shard %s: %w", path, err)
	}
	if sf.Shards < 1 || sf.Shard < 0 || sf.Shard >= sf.Shards {
		return sf, fmt.Errorf("campaign: shard %s declares shard %d of %d", path, sf.Shard, sf.Shards)
	}
	for _, cr := range sf.Cells {
		if got := cr.Cell.Key(); got != cr.Key {
			return sf, fmt.Errorf("campaign: shard %s: cell %s recorded under key %s (recomputed %s)",
				path, cr.Cell, cr.Key, got)
		}
	}
	return sf, nil
}

// SkippedShard records one shard file Merge could not read: truncated,
// garbled JSON, or a recorded cell key that no longer matches its cell.
type SkippedShard struct {
	Path string
	Err  error
}

// Merge reads the named shard files, verifies they belong to one campaign
// (same name, sweep hash, shard count and params, distinct shard indices)
// and writes every cell result into the store. It returns the merged cell
// count. Merging is idempotent: re-merging a shard overwrites each cell with
// the identical bytes.
//
// Unreadable shard files — truncated by a crashed worker, corrupted in
// transit — are skipped and reported rather than aborting the merge: the
// readable shards land, `campaign status` shows the holes, and re-running
// the bad shard fills them. Semantic mismatches (a shard from a different
// campaign, sweep, split or protocol, or a duplicated shard index) still
// abort: those are caller mistakes that would merge wrong numbers into
// right-looking tables, not recoverable damage.
func Merge(st *Store, paths []string) (int, []SkippedShard, error) {
	if len(paths) == 0 {
		return 0, nil, fmt.Errorf("campaign: nothing to merge")
	}
	var (
		first    ShardFile
		haveBase bool
		skipped  []SkippedShard
		seen     = make(map[int]string)
		merged   = 0
	)
	for _, path := range paths {
		sf, err := ReadShard(path)
		if err != nil {
			skipped = append(skipped, SkippedShard{Path: path, Err: err})
			continue
		}
		if !haveBase {
			first, haveBase = sf, true
		} else {
			switch {
			case sf.Campaign != first.Campaign:
				return merged, skipped, fmt.Errorf("campaign: %s is campaign %q, %s is %q", seen[first.Shard], first.Campaign, path, sf.Campaign)
			case sf.SweepHash != first.SweepHash:
				return merged, skipped, fmt.Errorf("campaign: %s and %s enumerate different sweeps (%s vs %s)", seen[first.Shard], path, first.SweepHash, sf.SweepHash)
			case sf.Shards != first.Shards:
				return merged, skipped, fmt.Errorf("campaign: %s splits %d ways, %s splits %d", seen[first.Shard], first.Shards, path, sf.Shards)
			case sf.Params != first.Params:
				return merged, skipped, fmt.Errorf("campaign: %s and %s were measured under different protocols", seen[first.Shard], path)
			}
		}
		if sf.Params != st.Params() {
			return merged, skipped, fmt.Errorf("campaign: shard %s was measured with %+v, store expects %+v", path, sf.Params, st.Params())
		}
		if prev, dup := seen[sf.Shard]; dup {
			return merged, skipped, fmt.Errorf("campaign: %s and %s are both shard %d", prev, path, sf.Shard)
		}
		seen[sf.Shard] = path
		for _, cr := range sf.Cells {
			if err := st.Put(cr.Cell, cr.Result); err != nil {
				return merged, skipped, err
			}
			merged++
		}
	}
	st.o.mergeCells.Add(int64(merged))
	st.o.mergeSkipped.Add(int64(len(skipped)))
	if !haveBase {
		return 0, skipped, fmt.Errorf("campaign: none of the %d shard files were readable", len(paths))
	}
	return merged, skipped, nil
}
