package campaign

import (
	"encoding/json"
	"fmt"
	"os"

	"dcra/internal/sim"
)

// CellResult pairs a cell with its result in a shard file.
type CellResult struct {
	Key    string     `json:"key"`
	Cell   Cell       `json:"cell"`
	Result sim.Result `json:"result"`
}

// ShardFile is the interchange format for one shard of a campaign: the
// sweep's identity (name + content hash), which partition this is, the
// measurement protocol, and the shard's cell results. Any host can compute
// one shard and ship the file home; merge recombines shards bit-identically
// because every cell is a pure function of (cell, params, seed).
type ShardFile struct {
	Campaign  string       `json:"campaign"`
	SweepHash string       `json:"sweep_hash"`
	Shards    int          `json:"shards"`
	Shard     int          `json:"shard"`
	Params    Params       `json:"params"`
	Cells     []CellResult `json:"cells"`
}

// WriteShard writes a shard file atomically.
func WriteShard(path string, sf ShardFile) error {
	if err := writeFileAtomic(path, mustJSON(sf)); err != nil {
		return fmt.Errorf("campaign: writing shard %s: %w", path, err)
	}
	return nil
}

// ReadShard reads and integrity-checks a shard file: every recorded cell key
// must match the cell's recomputed content key, so a corrupted or
// hand-edited shard is rejected before it can poison a merge.
func ReadShard(path string) (ShardFile, error) {
	var sf ShardFile
	data, err := os.ReadFile(path)
	if err != nil {
		return sf, fmt.Errorf("campaign: reading shard %s: %w", path, err)
	}
	if err := json.Unmarshal(data, &sf); err != nil {
		return sf, fmt.Errorf("campaign: parsing shard %s: %w", path, err)
	}
	if sf.Shards < 1 || sf.Shard < 0 || sf.Shard >= sf.Shards {
		return sf, fmt.Errorf("campaign: shard %s declares shard %d of %d", path, sf.Shard, sf.Shards)
	}
	for _, cr := range sf.Cells {
		if got := cr.Cell.Key(); got != cr.Key {
			return sf, fmt.Errorf("campaign: shard %s: cell %s recorded under key %s (recomputed %s)",
				path, cr.Cell, cr.Key, got)
		}
	}
	return sf, nil
}

// Merge reads the named shard files, verifies they belong to one campaign
// (same name, sweep hash, shard count and params, distinct shard indices)
// and writes every cell result into the store. It returns the merged cell
// count. Merging is idempotent: re-merging a shard overwrites each cell with
// the identical bytes.
func Merge(st *Store, paths []string) (int, error) {
	if len(paths) == 0 {
		return 0, fmt.Errorf("campaign: nothing to merge")
	}
	var first ShardFile
	seen := make(map[int]string)
	merged := 0
	for i, path := range paths {
		sf, err := ReadShard(path)
		if err != nil {
			return merged, err
		}
		if i == 0 {
			first = sf
		} else {
			switch {
			case sf.Campaign != first.Campaign:
				return merged, fmt.Errorf("campaign: %s is campaign %q, %s is %q", paths[0], first.Campaign, path, sf.Campaign)
			case sf.SweepHash != first.SweepHash:
				return merged, fmt.Errorf("campaign: %s and %s enumerate different sweeps (%s vs %s)", paths[0], path, first.SweepHash, sf.SweepHash)
			case sf.Shards != first.Shards:
				return merged, fmt.Errorf("campaign: %s splits %d ways, %s splits %d", paths[0], first.Shards, path, sf.Shards)
			case sf.Params != first.Params:
				return merged, fmt.Errorf("campaign: %s and %s were measured under different protocols", paths[0], path)
			}
		}
		if sf.Params != st.Params() {
			return merged, fmt.Errorf("campaign: shard %s was measured with %+v, store expects %+v", path, sf.Params, st.Params())
		}
		if prev, dup := seen[sf.Shard]; dup {
			return merged, fmt.Errorf("campaign: %s and %s are both shard %d", prev, path, sf.Shard)
		}
		seen[sf.Shard] = path
		for _, cr := range sf.Cells {
			if err := st.Put(cr.Cell, cr.Result); err != nil {
				return merged, err
			}
			merged++
		}
	}
	return merged, nil
}
