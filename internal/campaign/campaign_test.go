package campaign

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcra/internal/config"
	"dcra/internal/sim"
	"dcra/internal/stats"
	"dcra/internal/workload"
)

func cellFor(t *testing.T, pol string) Cell {
	t.Helper()
	return Cell{Cfg: config.Baseline(), WID: "MEM2.g1", Pol: pol}
}

func TestCellKeyStable(t *testing.T) {
	a := cellFor(t, "DCRA")
	b := cellFor(t, "DCRA")
	if a.Key() != b.Key() {
		t.Fatalf("identical cells disagree on key: %s vs %s", a.Key(), b.Key())
	}
	if len(a.Key()) != 16 {
		t.Fatalf("key %q is not 16 hex chars", a.Key())
	}
	c := cellFor(t, "ICOUNT")
	if a.Key() == c.Key() {
		t.Fatal("different policies share a key")
	}
	d := a
	d.Cfg.MemLatency = 500
	if a.Key() == d.Key() {
		t.Fatal("different configurations share a key")
	}
}

func testSweep(n int) Sweep {
	s := Sweep{Name: "test"}
	cfg := config.Baseline()
	for _, w := range workload.All() {
		if len(s.Cells) >= n {
			break
		}
		s.Cells = append(s.Cells, Cell{Cfg: cfg, WID: w.ID(), Pol: "DCRA"})
	}
	return s
}

func TestShardPartition(t *testing.T) {
	sweep := testSweep(11)
	for _, shards := range []int{1, 2, 3, 11, 16} {
		seen := make(map[Cell]int)
		sizes := make([]int, shards)
		for i := 0; i < shards; i++ {
			part, err := sweep.Shard(i, shards)
			if err != nil {
				t.Fatal(err)
			}
			sizes[i] = len(part)
			for _, c := range part {
				if prev, dup := seen[c]; dup {
					t.Fatalf("%d shards: cell %s in shards %d and %d", shards, c, prev, i)
				}
				seen[c] = i
			}
		}
		if len(seen) != len(sweep.Cells) {
			t.Fatalf("%d shards cover %d cells, want %d", shards, len(seen), len(sweep.Cells))
		}
		// Balanced: shard sizes differ by at most one.
		min, max := sizes[0], sizes[0]
		for _, n := range sizes {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if max-min > 1 {
			t.Fatalf("%d shards are unbalanced: sizes %v", shards, sizes)
		}
	}
	if _, err := sweep.Shard(2, 2); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
	if _, err := sweep.Shard(0, 0); err == nil {
		t.Fatal("zero shard count accepted")
	}
}

func TestSweepHashOrderIndependent(t *testing.T) {
	a := testSweep(5)
	b := Sweep{Name: a.Name}
	for i := len(a.Cells) - 1; i >= 0; i-- {
		b.Cells = append(b.Cells, a.Cells[i])
	}
	if a.Hash() != b.Hash() {
		t.Fatal("sweep hash depends on enumeration order")
	}
	c := testSweep(4)
	if a.Hash() == c.Hash() {
		t.Fatal("different sweeps share a hash")
	}
}

// fakeResult builds a result with awkward floats to prove the store
// round-trips bit-identically.
func fakeResult(seed float64) sim.Result {
	st := stats.New(2)
	st.Cycles = 300_000
	st.Threads[0].Committed = 123_456
	st.Threads[1].L2DMisses = 789
	st.MLPSum, st.MLPCycles = 1_000_003, 7
	return sim.Result{
		Workload:   workload.Workload{Threads: 2, Kind: workload.MEM, Group: 1, Names: []string{"mcf", "twolf"}},
		Policy:     "DCRA",
		Stats:      st,
		IPCs:       []float64{seed / 3.0, seed / 7.0},
		Throughput: seed/3.0 + seed/7.0,
		Hmean:      2 / (3.0/seed + 7.0/seed),
		WSpeedup:   seed * 0.1234567890123457,
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	params := Params{Warmup: 50_000, Measure: 300_000, Seed: 42}
	st, err := Open(dir, params)
	if err != nil {
		t.Fatal(err)
	}
	c := cellFor(t, "DCRA")
	if _, ok, err := st.Get(c); err != nil || ok {
		t.Fatalf("empty store Get = ok %v, err %v", ok, err)
	}
	want := fakeResult(1.0 / 3.0)
	if err := st.Put(c, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get(c)
	if err != nil || !ok {
		t.Fatalf("Get after Put = ok %v, err %v", ok, err)
	}
	if got.Throughput != want.Throughput || got.Hmean != want.Hmean || got.WSpeedup != want.WSpeedup {
		t.Fatalf("floats did not round-trip bit-identically: %+v vs %+v", got, want)
	}
	for i := range want.IPCs {
		if got.IPCs[i] != want.IPCs[i] {
			t.Fatalf("IPC[%d] %v != %v", i, got.IPCs[i], want.IPCs[i])
		}
	}
	if got.Stats.Cycles != want.Stats.Cycles || got.Stats.MLPSum != want.Stats.MLPSum ||
		len(got.Stats.Threads) != len(want.Stats.Threads) ||
		got.Stats.Threads[0] != want.Stats.Threads[0] || got.Stats.Threads[1] != want.Stats.Threads[1] {
		t.Fatal("stats did not round-trip")
	}
	if got.Workload.ID() != want.Workload.ID() {
		t.Fatalf("workload %s != %s", got.Workload.ID(), want.Workload.ID())
	}

	// Reopening with the same protocol works; a different protocol refuses.
	if _, err := Open(dir, params); err != nil {
		t.Fatalf("reopen with same params: %v", err)
	}
	bad := params
	bad.Measure = 1
	if _, err := Open(dir, bad); err == nil {
		t.Fatal("store accepted a different measurement protocol")
	}
	adopted, err := OpenExisting(dir)
	if err != nil {
		t.Fatal(err)
	}
	if adopted.Params() != params {
		t.Fatalf("OpenExisting adopted %+v, want %+v", adopted.Params(), params)
	}
}

func TestStoreDoSingleFlightAndPersistence(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Params{Warmup: 1, Measure: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := cellFor(t, "DCRA")
	computes := 0
	want := fakeResult(0.7)
	for i := 0; i < 3; i++ {
		_, computed, err := st.Do(c, func() (sim.Result, error) {
			computes++
			return want, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if computed != (i == 0) {
			t.Fatalf("call %d: computed = %v", i, computed)
		}
	}
	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}
	// A fresh store over the same directory serves the cell from disk.
	st2, err := Open(dir, Params{Warmup: 1, Measure: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, computed, err := st2.Do(c, func() (sim.Result, error) {
		t.Fatal("cell resimulated despite being on disk")
		return sim.Result{}, nil
	})
	if err != nil || computed {
		t.Fatalf("Do on fresh store: computed %v, err %v", computed, err)
	}
	if got.Throughput != want.Throughput {
		t.Fatal("persisted result differs")
	}
}

func TestStoreGetQuarantinesCorruptCells(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Params{})
	if err != nil {
		t.Fatal(err)
	}
	a := cellFor(t, "DCRA")
	b := cellFor(t, "ICOUNT")
	if err := st.Put(a, fakeResult(1)); err != nil {
		t.Fatal(err)
	}
	// Simulate a corrupted store: cell file under b's key holds a's content.
	data, err := os.ReadFile(filepath.Join(dir, "cells", a.Key()+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "cells", b.Key()+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Get(b); err != nil || ok {
		t.Fatalf("Get on mismatched cell file: ok=%v err=%v, want quarantined miss", ok, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "cells", b.Key()+".corrupt")); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if st.Has(b) {
		t.Fatal("Has still sees the quarantined cell")
	}

	// A truncated cell file is likewise quarantined as a miss.
	if err := os.WriteFile(filepath.Join(dir, "cells", a.Key()+".json"), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Get(a); err != nil || ok {
		t.Fatalf("Get on truncated cell file: ok=%v err=%v, want quarantined miss", ok, err)
	}
	if got := st.Quarantined(); got != 2 {
		t.Fatalf("Quarantined() = %d, want 2", got)
	}

	// A fresh Put heals the slot: the quarantined twin no longer shadows it.
	if err := st.Put(a, fakeResult(2)); err != nil {
		t.Fatal(err)
	}
	if r, ok, err := st.Get(a); err != nil || !ok || r.Throughput != fakeResult(2).Throughput {
		t.Fatalf("healed slot: ok=%v err=%v r=%+v", ok, err, r)
	}
}

func TestShardFileRoundTripAndMerge(t *testing.T) {
	dir := t.TempDir()
	params := Params{Warmup: 10, Measure: 20, Seed: 30}
	sweep := testSweep(5)

	var files []string
	for i := 0; i < 2; i++ {
		part, err := sweep.Shard(i, 2)
		if err != nil {
			t.Fatal(err)
		}
		sf := ShardFile{
			Campaign: sweep.Name, SweepHash: sweep.Hash(),
			Shards: 2, Shard: i, Params: params,
		}
		for j, c := range part {
			sf.Cells = append(sf.Cells, CellResult{Key: c.Key(), Cell: c, Result: fakeResult(float64(i*10 + j + 1))})
		}
		path := filepath.Join(dir, "shard"+string(rune('0'+i))+".json")
		if err := WriteShard(path, sf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadShard(path)
		if err != nil {
			t.Fatal(err)
		}
		if back.SweepHash != sf.SweepHash || len(back.Cells) != len(sf.Cells) {
			t.Fatal("shard file did not round-trip")
		}
		files = append(files, path)
	}

	st, err := Open(filepath.Join(dir, "store"), params)
	if err != nil {
		t.Fatal(err)
	}
	n, skipped, err := Merge(st, files)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("clean merge skipped %d shards", len(skipped))
	}
	if n != len(sweep.Cells) {
		t.Fatalf("merged %d cells, want %d", n, len(sweep.Cells))
	}
	present, missing := st.Count(sweep)
	if present != len(sweep.Cells) || len(missing) != 0 {
		t.Fatalf("store holds %d cells, %d missing", present, len(missing))
	}

	// Duplicate shard indices are refused.
	if _, _, err := Merge(st, []string{files[0], files[0]}); err == nil {
		t.Fatal("merge accepted the same shard twice")
	}
	// A corrupted cell key is refused at read time.
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(raw), `"key": "`, `"key": "00`, 1)
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadShard(badPath); err == nil {
		t.Fatal("shard with mismatched cell key accepted")
	}
	// Mismatched protocol is refused against the store.
	other := ShardFile{Campaign: sweep.Name, SweepHash: sweep.Hash(), Shards: 2, Shard: 0,
		Params: Params{Warmup: 999, Measure: 20, Seed: 30}}
	otherPath := filepath.Join(dir, "other.json")
	if err := WriteShard(otherPath, other); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Merge(st, []string{otherPath}); err == nil {
		t.Fatal("merge accepted a shard measured under a different protocol")
	}
}

// TestMergeSkipsTruncatedShards is the crash-recovery path: a worker died
// mid-write leaving a truncated shard file, but the other shards must still
// merge, with the damage reported rather than aborting the whole merge.
func TestMergeSkipsTruncatedShards(t *testing.T) {
	dir := t.TempDir()
	params := Params{Warmup: 10, Measure: 20, Seed: 30}
	sweep := testSweep(6)

	var files []string
	cellsPerShard := make([]int, 3)
	for i := 0; i < 3; i++ {
		part, err := sweep.Shard(i, 3)
		if err != nil {
			t.Fatal(err)
		}
		sf := ShardFile{
			Campaign: sweep.Name, SweepHash: sweep.Hash(),
			Shards: 3, Shard: i, Params: params,
		}
		for j, c := range part {
			sf.Cells = append(sf.Cells, CellResult{Key: c.Key(), Cell: c, Result: fakeResult(float64(i*10 + j + 1))})
		}
		cellsPerShard[i] = len(sf.Cells)
		path := filepath.Join(dir, fmt.Sprintf("shard%d.json", i))
		if err := WriteShard(path, sf); err != nil {
			t.Fatal(err)
		}
		files = append(files, path)
	}

	// Truncate shard 1 mid-file, as a crashed writer without atomic rename
	// would have left it.
	raw, err := os.ReadFile(files[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[1], raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := Open(filepath.Join(dir, "store"), params)
	if err != nil {
		t.Fatal(err)
	}
	n, skipped, err := Merge(st, files)
	if err != nil {
		t.Fatal(err)
	}
	if want := cellsPerShard[0] + cellsPerShard[2]; n != want {
		t.Fatalf("merged %d cells, want %d from the readable shards", n, want)
	}
	if len(skipped) != 1 || skipped[0].Path != files[1] || skipped[0].Err == nil {
		t.Fatalf("skipped = %+v, want exactly the truncated shard", skipped)
	}
	present, missing := st.Count(sweep)
	if present != cellsPerShard[0]+cellsPerShard[2] || len(missing) != cellsPerShard[1] {
		t.Fatalf("store holds %d cells with %d missing", present, len(missing))
	}

	// Restoring the shard and re-merging fills the holes (idempotent merge).
	if err := os.WriteFile(files[1], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, skipped, err := Merge(st, files); err != nil || len(skipped) != 0 {
		t.Fatalf("re-merge after repair: skipped=%d err=%v", len(skipped), err)
	}
	if present, missing := st.Count(sweep); present != len(sweep.Cells) || len(missing) != 0 {
		t.Fatalf("store holds %d cells with %d missing after repair", present, len(missing))
	}

	// A merge where nothing is readable fails loudly.
	empty, err := Open(filepath.Join(dir, "empty"), params)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Merge(empty, []string{filepath.Join(dir, "junk.json")}); err == nil {
		t.Fatal("merge with zero readable shards succeeded")
	}
}

func TestStoreGC(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Params{Warmup: 1, Measure: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	live := cellFor(t, "DCRA")
	stale := cellFor(t, "ICOUNT")
	if err := st.Put(live, fakeResult(0.5)); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(stale, fakeResult(0.25)); err != nil {
		t.Fatal(err)
	}
	keep := map[string]bool{live.Key(): true}

	// Dry run reports without deleting.
	removed, err := st.GC(keep, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != stale.Key() {
		t.Fatalf("dry-run GC = %v, want [%s]", removed, stale.Key())
	}
	if !st.Has(stale) {
		t.Fatal("dry-run GC deleted a cell")
	}

	removed, err = st.GC(keep, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != stale.Key() {
		t.Fatalf("GC = %v, want [%s]", removed, stale.Key())
	}
	if st.Has(stale) {
		t.Fatal("GC left the stale cell behind")
	}
	if !st.Has(live) {
		t.Fatal("GC deleted a live cell")
	}
	// Temp files and the manifest are untouched; a second GC is a no-op.
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatalf("manifest gone after GC: %v", err)
	}
	removed, err = st.GC(keep, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Fatalf("second GC removed %v", removed)
	}
	keys, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != live.Key() {
		t.Fatalf("Keys = %v, want [%s]", keys, live.Key())
	}
}
