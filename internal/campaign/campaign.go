// Package campaign turns the experiment suite's (config, workload, policy)
// grid into a first-class object: a declarative Sweep enumerates cells with
// stable content-derived keys, a deterministic partitioner splits a sweep
// across shards (and hosts), a JSON shard-file format recombines partial
// campaigns bit-identically, and a persistent on-disk Store lets re-runs and
// figure re-renders hit disk instead of resimulating.
//
// The package is deliberately agnostic about what a cell *means*: a cell is
// (configuration, workload id, policy string) and the experiment layer owns
// the interpretation (multiprogrammed workload ids like "MEM2.g1", or
// "bench:<name>" single-thread cells under "BASE"/"CAP..." policies for the
// single-benchmark tables). That keeps the dependency arrow pointing one way:
// experiments imports campaign, never the reverse.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"dcra/internal/config"
	"dcra/internal/sim"
)

// Cell identifies one simulation: a (config, workload, policy) triple.
// config.Config is a struct of scalars, so Cell is comparable and doubles as
// an in-memory memo key. WID is a workload identifier owned by the experiment
// layer; Pol is a policy name, possibly parameterised (e.g. "CAP:intIQ:37.5").
type Cell struct {
	Cfg config.Config `json:"cfg"`
	WID string        `json:"wid"`
	Pol string        `json:"pol"`

	// Mode selects the execution mode: ModeExact (the empty string, so every
	// pre-existing exact cell keeps its content key) or ModeSampled. Exact
	// and sampled runs of the same triple are distinct cells — the store
	// holds both and renders prefer exact when present.
	Mode string `json:"mode,omitempty"`
}

// Execution modes for Cell.Mode.
const (
	ModeExact   = ""
	ModeSampled = "sampled"
)

// Sampled returns the cell's sampled-mode counterpart.
func (c Cell) Sampled() Cell {
	c.Mode = ModeSampled
	return c
}

// Exact returns the cell's exact-mode counterpart.
func (c Cell) Exact() Cell {
	c.Mode = ModeExact
	return c
}

// Key returns the cell's stable content-derived key: a 64-bit hex digest of
// the canonical JSON encoding of the cell. Two processes (or hosts) enumerate
// the same key for the same cell, which is what makes shard files mergeable
// and the on-disk store addressable without coordination.
func (c Cell) Key() string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	if err := enc.Encode(c); err != nil {
		// Cell is a fixed struct of scalars and strings; encoding cannot fail.
		panic(fmt.Sprintf("campaign: encoding cell: %v", err))
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// String renders a short human-readable identity for logs and errors.
func (c Cell) String() string {
	if c.Mode != ModeExact {
		return fmt.Sprintf("%s/%s@%s[%s]", c.WID, c.Pol, c.Mode, c.Key())
	}
	return fmt.Sprintf("%s/%s[%s]", c.WID, c.Pol, c.Key())
}

// Sweep is a declarative enumeration of the cells one experiment needs. The
// experiment layer declares each Figure*/Table* sweep exactly once; prefetch
// submission, rendering, sharding and the result store all iterate the same
// enumeration, so a new sweep point cannot silently fall back to on-demand
// serial execution.
type Sweep struct {
	Name  string // experiment key, e.g. "fig5"
	Cells []Cell // enumeration order is the experiment's presentation order
}

// Hash returns a digest of the sweep's content (the sorted cell-key set),
// independent of enumeration order. Shard files record it so a merge can
// refuse to combine shards of different sweeps.
func (s Sweep) Hash() string {
	keys := make([]string, len(s.Cells))
	for i, c := range s.Cells {
		keys[i] = c.Key()
	}
	sort.Strings(keys)
	h := sha256.New()
	fmt.Fprintln(h, s.Name)
	for _, k := range keys {
		fmt.Fprintln(h, k)
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// CellSet returns the sweep's cells as a set for coverage checks.
func (s Sweep) CellSet() map[Cell]struct{} {
	set := make(map[Cell]struct{}, len(s.Cells))
	for _, c := range s.Cells {
		set[c] = struct{}{}
	}
	return set
}

// Shard returns the cells of shard `index` out of `shards`: the deduplicated
// enumeration is ordered by content key and dealt round-robin, so every host
// computes its partition independently and the partitions are disjoint,
// jointly exhaustive and stable under re-enumeration. Shards of an n-cell
// sweep differ in size by at most one cell.
func (s Sweep) Shard(index, shards int) ([]Cell, error) {
	if shards < 1 {
		return nil, fmt.Errorf("campaign: shard count %d < 1", shards)
	}
	if index < 0 || index >= shards {
		return nil, fmt.Errorf("campaign: shard index %d out of range [0,%d)", index, shards)
	}
	ordered := s.orderedUnique()
	var part []Cell
	for i, c := range ordered {
		if i%shards == index {
			part = append(part, c.cell)
		}
	}
	return part, nil
}

// keyedCell pairs a cell with its precomputed key for sorting.
type keyedCell struct {
	key  string
	cell Cell
}

// orderedUnique returns the sweep's distinct cells sorted by content key.
func (s Sweep) orderedUnique() []keyedCell {
	seen := make(map[Cell]struct{}, len(s.Cells))
	ordered := make([]keyedCell, 0, len(s.Cells))
	for _, c := range s.Cells {
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		ordered = append(ordered, keyedCell{key: c.Key(), cell: c})
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].key < ordered[j].key })
	return ordered
}

// Runner evaluates one cell. *experiments.Suite is the canonical
// implementation; the campaign CLI drives sweeps through this interface.
type Runner interface {
	RunCell(Cell) (sim.Result, error)
}
