package core

import (
	"fmt"
	"testing"

	"dcra/internal/config"
	"dcra/internal/cpu"
	"dcra/internal/trace"
	"dcra/internal/workload"
)

// Ablation benchmarks for the DCRA design choices EXPERIMENTS.md calls out. Each
// reports the achieved throughput as a custom metric so variants can be
// compared directly:
//
//	go test -bench BenchmarkAblation -benchtime 1x ./internal/core/
func ablationRun(b *testing.B, opt Options) float64 {
	b.Helper()
	w, err := workload.Get(4, workload.MIX, 1) // gzip+twolf+bzip2+mcf
	if err != nil {
		b.Fatal(err)
	}
	profiles := make([]trace.Profile, len(w.Names))
	for i, n := range w.Names {
		profiles[i] = trace.MustProfile(n)
	}
	m, err := cpu.New(config.Baseline(), profiles, New(opt), 0x5eeddc2a)
	if err != nil {
		b.Fatal(err)
	}
	m.Run(20_000)
	m.ResetStats()
	m.Run(100_000)
	return m.Stats().Throughput()
}

// BenchmarkAblationSharingFactor compares the paper's C variants.
func BenchmarkAblationSharingFactor(b *testing.B) {
	for _, tc := range []struct {
		name   string
		factor SharingFactor
	}{
		{"CActive", CActive},
		{"CThreads", CThreads},
		{"CThreadsPlus4", CThreadsPlus4},
		{"CZero", CZero},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := DefaultOptions()
				o.IQFactor, o.RegFactor = tc.factor, tc.factor
				b.ReportMetric(ablationRun(b, o), "throughput")
			}
		})
	}
}

// BenchmarkAblationClassification compares L1D-based (paper) vs L2-based
// slow classification.
func BenchmarkAblationClassification(b *testing.B) {
	for _, onL2 := range []bool{false, true} {
		b.Run(fmt.Sprintf("classifyOnL2=%v", onL2), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := DefaultOptions()
				o.ClassifyOnL2 = onL2
				b.ReportMetric(ablationRun(b, o), "throughput")
			}
		})
	}
}

// BenchmarkAblationActivityY sweeps the activity-counter threshold (the
// paper tried 64..8192 and picked 256).
func BenchmarkAblationActivityY(b *testing.B) {
	for _, y := range []int{64, 256, 1024, 8192} {
		b.Run(fmt.Sprintf("Y=%d", y), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := DefaultOptions()
				o.ActivityY = y
				b.ReportMetric(ablationRun(b, o), "throughput")
			}
		})
	}
}

// BenchmarkAblationActivityScope compares FP-only activity tracking (paper)
// with tracking all five resources.
func BenchmarkAblationActivityScope(b *testing.B) {
	for _, all := range []bool{false, true} {
		b.Run(fmt.Sprintf("trackAll=%v", all), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := DefaultOptions()
				o.TrackAllActivity = all
				b.ReportMetric(ablationRun(b, o), "throughput")
			}
		})
	}
}

// BenchmarkAblationEnforcement compares fetch-only gating (paper) with
// additional dispatch-stage enforcement.
func BenchmarkAblationEnforcement(b *testing.B) {
	for _, disp := range []bool{false, true} {
		b.Run(fmt.Sprintf("dispatchGate=%v", disp), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := DefaultOptions()
				o.EnforceDispatch = disp
				b.ReportMetric(ablationRun(b, o), "throughput")
			}
		})
	}
}
