// Package core implements DCRA — Dynamically Controlled Resource Allocation
// (Cazorla et al., MICRO-37, 2004) — the paper's primary contribution.
//
// DCRA is a *resource allocation policy*: beyond ranking threads for fetch
// (ICOUNT order), it continuously classifies threads and directly bounds
// how many entries of each critical shared resource a resource-hungry
// thread may hold:
//
//   - Phase classification: a thread with pending L1 data misses is "slow"
//     (it will hold resources for a long time); otherwise it is "fast".
//   - Activity classification: per FP resource, a thread that has not
//     allocated an entry for Y consecutive cycles is "inactive" and its
//     share is redistributed.
//   - Sharing model: each slow-active thread may hold at most
//     E_slow = R/(FA+SA) * (1 + C*FA) entries of a resource, where fast
//     threads lend the C-fraction of their share. A slow-active thread
//     exceeding its bound for any resource is fetch-stalled until it
//     releases entries. Fast threads are never bounded.
package core

import (
	"dcra/internal/cpu"
)

// SharingFactor selects the denominator K of the sharing factor C = 1/K.
// The paper tunes C to the memory latency (Section 5.3): 1/T at 100 cycles,
// 1/(T+4) at 300, and 0 for the IQs at 500; Table 1 is computed with
// C = 1/(FA+SA).
type SharingFactor int

// Sharing factor modes.
const (
	// CActive uses C = 1/(FA+SA) — the dynamic form behind Table 1.
	CActive SharingFactor = iota
	// CThreads uses C = 1/T (paper's best at 100-cycle memory latency).
	CThreads
	// CThreadsPlus4 uses C = 1/(T+4) (paper's best at 300 cycles).
	CThreadsPlus4
	// CZero disables lending: slow threads get exactly the fair share
	// (paper's choice for the IQs at 500-cycle latency).
	CZero
)

// Options configure DCRA variants; the zero value is NOT the paper default,
// use DefaultOptions.
type Options struct {
	// ActivityY is the activity-counter reset value (paper: 256, swept
	// 64..8192 in the ablation).
	ActivityY int
	// IQFactor and RegFactor pick the sharing factor per resource group;
	// the paper differentiates them only at 500-cycle memory latency.
	IQFactor  SharingFactor
	RegFactor SharingFactor
	// TrackAllActivity extends inactivity detection from the FP resources
	// (paper behaviour) to all five resources (ablation).
	TrackAllActivity bool
	// ClassifyOnL2 uses pending L2 misses instead of pending L1D misses
	// for the slow/fast split (ablation; the paper chose L1D).
	ClassifyOnL2 bool
	// EnforceDispatch additionally enforces E_slow as a dispatch-stage cap
	// (ablation; the paper enforces at fetch only).
	EnforceDispatch bool
}

// DefaultOptions returns the paper's baseline DCRA configuration for the
// 300-cycle memory latency.
func DefaultOptions() Options {
	return Options{ActivityY: 256, IQFactor: CThreadsPlus4, RegFactor: CThreadsPlus4}
}

// OptionsForLatency returns the latency-tuned configuration from Section
// 5.3 of the paper.
func OptionsForLatency(memLatency int) Options {
	o := DefaultOptions()
	switch {
	case memLatency <= 100:
		o.IQFactor, o.RegFactor = CThreads, CThreads
	case memLatency <= 300:
		o.IQFactor, o.RegFactor = CThreadsPlus4, CThreadsPlus4
	default:
		o.IQFactor, o.RegFactor = CZero, CThreadsPlus4
	}
	return o
}

// DCRA implements cpu.Policy (and cpu.Partitioner for the dispatch-gating
// ablation).
type DCRA struct {
	opt Options

	// Per-thread, per-resource activity counters and the derived flags.
	// Indexed [thread][resource]; only the five DCRA resources are used.
	activity [][cpu.NumResources]int
	active   [][cpu.NumResources]bool

	slow  []bool
	gated []bool

	// tracked holds the resources whose activity counters actually evolve
	// (FP only, unless TrackAllActivity); untracked resources are active for
	// every thread on every cycle, so their fast-active/slow-active counts
	// are the plain fast/slow thread totals.
	tracked   []cpu.Resource
	untracked []cpu.Resource

	// limits[r] is E_slow for resource r this cycle (0 when no slow-active
	// thread competes for r).
	limits [cpu.NumResources]int

	// GateCounts[r] counts thread-cycles gated because resource r exceeded
	// its bound (diagnostics; a thread may trip several in one cycle but
	// only the first is counted).
	GateCounts [cpu.NumResources]uint64
}

// New returns a DCRA policy with the given options.
func New(opt Options) *DCRA {
	if opt.ActivityY <= 0 {
		opt.ActivityY = 256
	}
	return &DCRA{opt: opt}
}

// Default returns DCRA with the paper's baseline options.
func Default() *DCRA { return New(DefaultOptions()) }

// Name implements cpu.Policy.
func (d *DCRA) Name() string { return "DCRA" }

// Rank implements cpu.Policy (ICOUNT priority, as in the paper's setup).
func (d *DCRA) Rank(m *cpu.Machine, ts []int) { cpu.RankByICount(m, ts) }

// Gate implements cpu.Policy: slow-active threads exceeding their E_slow
// for any resource are fetch-stalled until they release entries.
func (d *DCRA) Gate(m *cpu.Machine, t int) bool {
	return d.gated != nil && d.gated[t]
}

// Tick implements cpu.Policy: refresh classifications and allocation bounds.
// It runs after dispatch, so AllocatedThisCycle reflects the current cycle.
func (d *DCRA) Tick(m *cpu.Machine) {
	nt := m.NumThreads()
	if d.activity == nil {
		d.activity = make([][cpu.NumResources]int, nt)
		d.active = make([][cpu.NumResources]bool, nt)
		d.slow = make([]bool, nt)
		d.gated = make([]bool, nt)
		for t := 0; t < nt; t++ {
			for _, r := range cpu.DCRAResources {
				d.activity[t][r] = d.opt.ActivityY
				d.active[t][r] = true
			}
		}
		for _, r := range cpu.DCRAResources {
			if r.IsFP() || d.opt.TrackAllActivity {
				d.tracked = append(d.tracked, r)
			} else {
				d.untracked = append(d.untracked, r)
			}
		}
	}

	// Phase classification (paper §3.1.1) and activity classification
	// (paper §3.1.2) run in a single pass per thread, accumulating the
	// per-resource fast-active / slow-active counts the sharing model needs
	// as they go. Only the tracked resources (FP by default) carry live
	// activity counters; the untracked ones are active for every thread on
	// every cycle, so their counts come from the fast/slow totals alone.
	var fa, sa [cpu.NumResources]int
	nSlow := 0
	for t := 0; t < nt; t++ {
		var slow bool
		if d.opt.ClassifyOnL2 {
			slow = m.PendingL2(t) > 0
		} else {
			slow = m.PendingL1D(t) > 0
		}
		d.slow[t] = slow
		if slow {
			nSlow++
		}
		act := &d.activity[t]
		actv := &d.active[t]
		for _, r := range d.tracked {
			if m.AllocatedThisCycle(t, r) || m.Usage(t, r) > 0 {
				act[r] = d.opt.ActivityY
			} else if act[r] > 0 {
				act[r]--
			}
			if actv[r] = act[r] > 0; actv[r] {
				if slow {
					sa[r]++
				} else {
					fa[r]++
				}
			}
		}
	}

	if nSlow == 0 {
		// No slow thread anywhere: Eslow is 0 (unbounded) for every resource
		// and nothing gates. Skip the sharing model — the common case
		// whenever no thread has a pending miss.
		d.limits = [cpu.NumResources]int{}
		for t := 0; t < nt; t++ {
			d.gated[t] = false
		}
		return
	}
	for _, r := range d.untracked {
		fa[r], sa[r] = nt-nSlow, nSlow
	}

	// Sharing model (paper §3.2): per-resource E_slow from the counts of
	// fast-active and slow-active threads.
	for _, r := range cpu.DCRAResources {
		factor := d.opt.IQFactor
		if r == cpu.RIntRegs || r == cpu.RFPRegs {
			factor = d.opt.RegFactor
		}
		d.limits[r] = Eslow(m.Total(r), nt, fa[r], sa[r], factor)
	}

	// Gating decision: a slow thread holding more than its bound of any
	// resource it is active for must stop fetching.
	for t := 0; t < nt; t++ {
		d.gated[t] = false
		if !d.slow[t] {
			continue
		}
		for _, r := range cpu.DCRAResources {
			if d.active[t][r] && d.limits[r] > 0 && m.Usage(t, r) > d.limits[r] {
				d.gated[t] = true
				d.GateCounts[r]++
				break
			}
		}
	}
}

// EnforcesCaps implements cpu.DispatchCapper: unless the dispatch-enforcement
// ablation is on, Cap returns 0 for every (thread, resource) and the machine
// may skip the dispatch-stage cap machinery entirely.
func (d *DCRA) EnforcesCaps() bool { return d.opt.EnforceDispatch }

// Cap implements cpu.Partitioner for the dispatch-enforcement ablation.
func (d *DCRA) Cap(m *cpu.Machine, t int, r cpu.Resource) int {
	if !d.opt.EnforceDispatch || d.gated == nil || r == cpu.RROB {
		return 0
	}
	if !d.slow[t] || !d.active[t][r] {
		return 0
	}
	return d.limits[r]
}

// Eslow computes the sharing-model bound for one resource: the number of
// entries each slow-active thread may hold, out of R total entries, with
// fa fast-active and sa slow-active competitors and the given sharing
// factor (t is the total thread count, used by the 1/T and 1/(T+4) modes).
// Results are rounded to nearest, matching the paper's Table 1.
//
//	E_slow = R/(fa+sa) * (1 + C*fa),  C = 1/K
//	       = R*(K+fa) / ((fa+sa)*K)
func Eslow(r, t, fa, sa int, factor SharingFactor) int {
	a := fa + sa
	if a == 0 || sa == 0 {
		return 0 // no slow-active thread competes: no bound needed
	}
	var k int
	switch factor {
	case CActive:
		k = a
	case CThreads:
		k = t
	case CThreadsPlus4:
		k = t + 4
	case CZero:
		// C = 0: plain equal share among active threads.
		return roundDiv(r, a)
	}
	return roundDiv(r*(k+fa), a*k)
}

// roundDiv divides with round-to-nearest (ties up).
func roundDiv(num, den int) int {
	return (2*num + den) / (2 * den)
}

// Limits exposes the current per-resource bounds (tests/reports).
func (d *DCRA) Limits() [cpu.NumResources]int { return d.limits }

// IsSlow exposes the phase classification of thread t (tests/reports).
func (d *DCRA) IsSlow(t int) bool { return d.slow != nil && d.slow[t] }

// IsActive exposes the activity classification (tests/reports).
func (d *DCRA) IsActive(t int, r cpu.Resource) bool {
	return d.active == nil || d.active[t][r]
}
