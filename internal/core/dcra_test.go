package core

import (
	"testing"
	"testing/quick"

	"dcra/internal/config"
	"dcra/internal/cpu"
	"dcra/internal/trace"
)

// TestEslowMatchesPaperTable1 is the golden test: equation 3 with
// C = 1/(FA+SA) must reproduce the paper's Table 1 exactly.
func TestEslowMatchesPaperTable1(t *testing.T) {
	want := map[[2]int]int{
		{0, 1}: 32, {1, 1}: 24, {0, 2}: 16, {2, 1}: 18, {1, 2}: 14,
		{0, 3}: 11, {3, 1}: 14, {2, 2}: 12, {1, 3}: 10, {0, 4}: 8,
	}
	for k, w := range want {
		if got := Eslow(32, 4, k[0], k[1], CActive); got != w {
			t.Errorf("Eslow(32,4,FA=%d,SA=%d) = %d, want %d (paper Table 1)", k[0], k[1], got, w)
		}
	}
}

func TestEslowNoSlowThreads(t *testing.T) {
	if got := Eslow(32, 4, 3, 0, CActive); got != 0 {
		t.Fatalf("no slow threads: Eslow = %d, want 0 (no bound needed)", got)
	}
	if got := Eslow(32, 4, 0, 0, CActive); got != 0 {
		t.Fatalf("no active threads: Eslow = %d, want 0", got)
	}
}

func TestEslowCZeroIsFairShare(t *testing.T) {
	for sa := 1; sa <= 4; sa++ {
		for fa := 0; fa+sa <= 4; fa++ {
			got := Eslow(80, 4, fa, sa, CZero)
			want := roundDiv(80, fa+sa)
			if got != want {
				t.Errorf("CZero Eslow(80,4,%d,%d) = %d, want fair share %d", fa, sa, got, want)
			}
		}
	}
}

// Property: a slow thread is never entitled to less than the fair share of
// active threads, never more than the whole resource, and lending from more
// fast threads never decreases its bound.
func TestEslowProperties(t *testing.T) {
	err := quick.Check(func(rRaw, faRaw, saRaw uint8, factorRaw uint8) bool {
		r := int(rRaw%200) + 4
		sa := int(saRaw%4) + 1
		fa := int(faRaw % 4)
		tcount := fa + sa
		factor := SharingFactor(factorRaw % 4)
		e := Eslow(r, tcount, fa, sa, factor)
		fair := r / (fa + sa)
		if e < fair {
			return false
		}
		if e > r {
			return false
		}
		// For a fixed number of active threads, converting one slow
		// competitor into a fast lender never lowers the bound.
		if sa >= 2 {
			fewerLenders := Eslow(r, tcount, fa, sa, factor)
			moreLenders := Eslow(r, tcount, fa+1, sa-1, factor)
			if moreLenders+1 < fewerLenders { // +1 tolerates rounding
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: total allocation is feasible — sa slow threads at their bound
// never exceed the resource plus what the fa fast threads could release.
func TestEslowTotalFeasibility(t *testing.T) {
	err := quick.Check(func(rRaw, faRaw, saRaw uint8) bool {
		r := int(rRaw%200) + 8
		sa := int(saRaw%4) + 1
		fa := int(faRaw % 4)
		e := Eslow(r, fa+sa, fa, sa, CActive)
		// All slow threads at their bound must fit within the resource
		// (fast threads squeeze into the remainder, possibly zero). Allow
		// the rounding slack of one entry per slow thread.
		return sa*e <= r+sa
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOptionsForLatency(t *testing.T) {
	if o := OptionsForLatency(100); o.IQFactor != CThreads || o.RegFactor != CThreads {
		t.Errorf("100-cycle options wrong: %+v", o)
	}
	if o := OptionsForLatency(300); o.IQFactor != CThreadsPlus4 || o.RegFactor != CThreadsPlus4 {
		t.Errorf("300-cycle options wrong: %+v", o)
	}
	if o := OptionsForLatency(500); o.IQFactor != CZero || o.RegFactor != CThreadsPlus4 {
		t.Errorf("500-cycle options wrong: %+v", o)
	}
}

func TestDefaultActivityY(t *testing.T) {
	d := New(Options{}) // zero options: Y must default to the paper's 256
	if d.opt.ActivityY != 256 {
		t.Fatalf("ActivityY defaulted to %d, want 256", d.opt.ActivityY)
	}
}

// integration: DCRA on a machine classifies an integer thread inactive for
// FP resources and enforces no gate on a single thread.
func TestDCRAOnMachine(t *testing.T) {
	d := Default()
	m, err := cpu.New(config.Baseline(), []trace.Profile{
		trace.MustProfile("art"),  // FP MEM
		trace.MustProfile("gzip"), // integer ILP
	}, d, 11)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(40_000)

	if d.IsActive(1, cpu.RFPIQ) || d.IsActive(1, cpu.RFPRegs) {
		t.Error("gzip (integer) should be inactive for FP resources after 40k cycles")
	}
	if !d.IsActive(0, cpu.RFPIQ) {
		t.Error("art (FP) should be active for the FP issue queue")
	}
	if !d.IsActive(0, cpu.RIntIQ) || !d.IsActive(1, cpu.RIntIQ) {
		t.Error("integer resources are always active")
	}

	// The FP-IQ bound must reflect art being the only FP-active thread:
	// with one active thread there is no competition, so either no bound
	// (SA=0 if art currently fast) or the full resource.
	lim := d.Limits()
	if lim[cpu.RFPIQ] != 0 && lim[cpu.RFPIQ] != m.Total(cpu.RFPIQ) {
		t.Errorf("FP IQ bound %d with a single FP-active thread", lim[cpu.RFPIQ])
	}
}

func TestDCRAGateConsistency(t *testing.T) {
	// A gated thread must be slow and above some resource bound at the
	// moment Tick computed the gate.
	d := Default()
	m, err := cpu.New(config.Baseline(), []trace.Profile{
		trace.MustProfile("mcf"), trace.MustProfile("twolf"),
		trace.MustProfile("gzip"), trace.MustProfile("eon"),
	}, d, 13)
	if err != nil {
		t.Fatal(err)
	}
	gatedSeen := 0
	for i := 0; i < 30_000; i++ {
		m.Run(1)
		for tid := 0; tid < 4; tid++ {
			if !d.Gate(m, tid) {
				continue
			}
			gatedSeen++
			if !d.IsSlow(tid) {
				t.Fatalf("cycle %d: thread %d gated but not slow", i, tid)
			}
		}
	}
	if gatedSeen == 0 {
		t.Fatal("DCRA never gated on a MEM-heavy 4-thread workload")
	}
}

func TestDCRASingleThreadNeverGates(t *testing.T) {
	d := Default()
	m, err := cpu.New(config.Baseline(), []trace.Profile{trace.MustProfile("mcf")}, d, 17)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20_000; i++ {
		m.Run(1)
		if d.Gate(m, 0) {
			// With one thread, FA+SA=1 and E_slow is the whole resource:
			// usage can never exceed it.
			t.Fatal("single thread gated by DCRA")
		}
	}
}

func TestDispatchEnforcementAblation(t *testing.T) {
	o := DefaultOptions()
	o.EnforceDispatch = true
	d := New(o)
	m, err := cpu.New(config.Baseline(), []trace.Profile{
		trace.MustProfile("mcf"), trace.MustProfile("gzip"),
	}, d, 19)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(30_000)
	st := m.Stats()
	if st.TotalCommitted() == 0 {
		t.Fatal("dispatch-enforced DCRA wedged the machine")
	}
	// Cap returns 0 for fast threads and for the ROB.
	if c := d.Cap(m, 0, cpu.RROB); c != 0 {
		t.Errorf("ROB cap = %d, want 0 (DCRA does not manage the ROB)", c)
	}
}
