// Package sched simulates the SMT core as a server in an open system: jobs
// — benchmark profiles with committed-instruction budgets — arrive over time
// from a seeded arrival process, wait in a queue, are co-scheduled onto free
// hardware contexts by a pluggable picker policy, run to their budget and
// depart. Where the experiment suite measures steady-state IPC of fixed
// thread sets (the paper's closed workloads), sched measures what a service
// owner would: throughput under load, turnaround percentiles and fairness
// across jobs.
//
// Determinism is a hard requirement, exactly as for the closed experiments:
// one seed fixes the arrival schedule, every job's instruction stream and
// every scheduling decision, so two same-seed trials produce byte-identical
// job event logs (asserted by the determinism tests and digested into every
// persisted result).
//
// The mechanism under the loop is cpu.(*Machine).RebindThread — drain one
// hardware context and bind it to a fresh stream, leaving the other
// contexts' committed streams untouched — plus ParkThread for idle contexts
// and RunToTargets for exact job-completion timing.
package sched

import (
	"errors"
	"fmt"

	"dcra/internal/config"
	"dcra/internal/cpu"
	"dcra/internal/obs"
	"dcra/internal/rng"
	"dcra/internal/sim"
	"dcra/internal/stats"
	"dcra/internal/trace"
)

// SchedPID is the trace pid lane group job spans live on, one tid per
// hardware context, in the cycle domain (timestamps are simulation
// cycles, so same-seed trials produce identical traces).
const SchedPID = 3

// Job is one unit of work: a benchmark profile to execute for a fixed number
// of committed micro-ops.
type Job struct {
	ID      int    `json:"id"`
	Bench   string `json:"bench"`
	Mem     bool   `json:"mem"` // MEM-class per the paper's taxonomy
	Budget  uint64 `json:"budget"`
	Arrival uint64 `json:"arrival"`

	// Filled in as the trial runs.
	Start   uint64 `json:"start"`
	Finish  uint64 `json:"finish"`
	Context int    `json:"context"`
	Done    bool   `json:"done"`

	prof trace.Profile // resolved once at job creation
}

// Turnaround returns the job's arrival-to-departure time in cycles (0 if the
// job never completed).
func (j *Job) Turnaround() uint64 {
	if !j.Done {
		return 0
	}
	return j.Finish - j.Arrival
}

// Config describes one scheduling trial.
type Config struct {
	// Machine is the processor configuration; Contexts hardware contexts of
	// it serve the job stream.
	Machine  config.Config
	Contexts int

	// Alloc builds the machine-level allocation/fetch policy (DCRA, ICOUNT,
	// ...) — a fresh instance per trial, policies being stateful.
	Alloc sim.PolicyFactory

	// Picker is the co-schedule policy choosing which queued job occupies a
	// freed context.
	Picker Picker

	// Arrivals is the seeded arrival process; Benches is the pool jobs draw
	// their profiles from (seeded uniform pick); Budget is the mean job
	// size — each job's committed-instruction budget draws uniformly from
	// [Budget/2, 3*Budget/2], so shortest-budget scheduling has something
	// to sort by.
	Arrivals Arrivals
	Benches  []string
	Budget   uint64

	// Seed fixes every random choice of the trial: arrival times, bench
	// picks and each job's instruction stream.
	Seed uint64

	// MaxCycles bounds the trial; jobs still queued or running when it
	// expires count as not completed.
	MaxCycles uint64

	// FFDrain, when set, stops detailed simulation once every job has
	// arrived and the queue is empty: the jobs still running fast-forward
	// functionally through their remaining budgets (warming caches and
	// predictor but skipping the pipeline) and depart at finish times
	// estimated from their own detailed IPC so far. Tail-heavy trials get
	// much cheaper; turnarounds of the drained jobs become estimates, and
	// the event log — hence its digest — is mode-dependent (ffdrain events
	// replace the tail's finish events).
	FFDrain bool

	// Pool, when non-nil, recycles machine allocations across trials
	// (reuse is observationally invisible, exactly as for Runner cells).
	Pool *sim.MachinePool

	// Obs, when set, receives trial telemetry (queue depth at scheduling
	// events, picker decisions, job turnaround); Tracer records one
	// cycle-domain span per completed job on its context's lane. Neither
	// touches the event log or any scheduling decision.
	Obs    *obs.Registry
	Tracer *obs.Tracer

	// SLOs declares turnaround latency objectives evaluated every
	// HealthEvery cycles over a sliding window of health intervals.
	// HealthEvery defaults to MaxCycles/128 when SLOs are set; setting it
	// alone (no SLOs) still records the health ring. The health layer is
	// cycle-domain telemetry: it adds extra stop boundaries to the detailed
	// loop but never changes a scheduling decision, the event log or the
	// trial stats (guarded by TestSchedHealthBitIdentical).
	SLOs        []SLOSpec
	HealthEvery uint64

	// Flight, when set, receives an event per SLO-breach interval; shared
	// with the caller's abort paths so breaches show up in postmortems.
	Flight *obs.FlightRecorder
}

// Trial is the outcome of one scheduling run.
type Trial struct {
	Contexts int
	Picker   string
	Alloc    string
	Arrivals Arrivals

	Jobs      []Job
	Cycles    uint64
	Completed int

	// EventLog records every arrival, placement and departure in
	// simulation order; same-seed trials reproduce it byte for byte.
	EventLog []string

	Stats *stats.Stats

	// Health is the SLO layer's verdict; nil unless the config declared
	// SLOs or a health interval.
	Health *HealthReport
}

// ErrConfig tags every trial-validation failure, so callers sweeping over
// generated configs can distinguish "this trial is malformed" (skip or
// report it) from simulation failures with errors.Is(err, sched.ErrConfig).
var ErrConfig = errors.New("invalid trial config")

// validate rejects malformed trial configs before any machine is built.
func (c *Config) validate() error {
	if c.Contexts < 1 {
		return fmt.Errorf("sched: %w: trial needs >= 1 hardware context, got %d", ErrConfig, c.Contexts)
	}
	if c.Alloc == nil || c.Picker == nil {
		return fmt.Errorf("sched: %w: trial needs an allocation policy factory and a picker", ErrConfig)
	}
	if len(c.Benches) == 0 {
		return fmt.Errorf("sched: %w: trial needs a non-empty bench pool", ErrConfig)
	}
	if c.Budget == 0 {
		return fmt.Errorf("sched: %w: jobs need a non-zero instruction budget", ErrConfig)
	}
	if c.MaxCycles == 0 {
		return fmt.Errorf("sched: %w: trial needs a non-zero cycle bound", ErrConfig)
	}
	return c.Arrivals.Validate()
}

// makeJobs draws the trial's job list from the seeded RNG: arrival times
// first, then per job a bench pick and a budget draw (the draw order is part
// of the determinism contract — changing it would re-key every recorded
// trial).
func (c *Config) makeJobs() ([]Job, error) {
	rg := rng.New(c.Seed ^ 0xa11c0115eed5)
	times := c.Arrivals.Times(rg)
	jobs := make([]Job, c.Arrivals.Jobs)
	for i := range jobs {
		name := c.Benches[rg.Intn(len(c.Benches))]
		p, err := trace.ProfileByName(name)
		if err != nil {
			return nil, err
		}
		budget := c.Budget/2 + rg.Uint64()%(c.Budget+1)
		if budget == 0 {
			budget = 1
		}
		jobs[i] = Job{
			ID:      i,
			Bench:   name,
			Mem:     p.Mem,
			Budget:  budget,
			Arrival: times[i],
			Context: -1,
			prof:    p,
		}
	}
	return jobs, nil
}

// jobSeed derives the stream seed of one job; distinct jobs get independent
// streams even when they run the same benchmark.
func jobSeed(trialSeed uint64, jobID int) uint64 {
	return trialSeed + (uint64(jobID)+1)*0x9e3779b97f4a7c15
}

// Run executes one trial: it acquires a machine (from the pool when set),
// parks every context, then plays the arrival process against the picker
// until all jobs have departed or MaxCycles expire.
func Run(c Config) (*Trial, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	h, err := c.newHealth()
	if err != nil {
		return nil, err
	}
	jobs, err := c.makeJobs()
	if err != nil {
		return nil, err
	}

	// The machine is constructed over placeholder profiles (the bench pool,
	// round-robin) purely to fix its shape and initial cache contents; every
	// context is parked before the first cycle and only RebindThread
	// activates one. The placeholder choice is part of the seed-determined
	// initial state, like New's prewarm.
	placeholders := make([]trace.Profile, c.Contexts)
	for i := range placeholders {
		p, err := trace.ProfileByName(c.Benches[i%len(c.Benches)])
		if err != nil {
			return nil, err
		}
		placeholders[i] = p
	}
	pol := c.Alloc()
	m, err := c.Pool.Get(c.Machine, placeholders, pol, c.Seed)
	if err != nil {
		return nil, fmt.Errorf("sched: building %d-context machine: %w", c.Contexts, err)
	}
	for t := 0; t < c.Contexts; t++ {
		m.ParkThread(t)
	}

	tr := &Trial{
		Contexts: c.Contexts,
		Picker:   c.Picker.Name(),
		Alloc:    pol.Name(),
		Arrivals: c.Arrivals,
	}
	logf := func(format string, args ...any) {
		tr.EventLog = append(tr.EventLog, fmt.Sprintf(format, args...))
	}

	depth := c.Obs.Histogram("sched.queue.depth", obs.DepthBounds)
	picks := c.Obs.Counter("sched.picker.decisions")
	turnaround := c.Obs.Histogram("sched.turnaround.cycles", obs.CycleBounds)
	arrived := c.Obs.Counter("sched.jobs.arrived")
	completed := c.Obs.Counter("sched.jobs.completed")
	if c.Tracer != nil {
		c.Tracer.Process(SchedPID, "sched contexts (cycle domain)")
		for t := 0; t < c.Contexts; t++ {
			c.Tracer.Lane(SchedPID, t, fmt.Sprintf("ctx %d", t))
		}
	}
	jobSpan := func(j *Job) {
		if c.Tracer != nil {
			c.Tracer.CompleteAt(SchedPID, j.Context, fmt.Sprintf("job %d %s", j.ID, j.Bench),
				"job", float64(j.Start), float64(j.Finish-j.Start))
		}
	}

	var (
		queue      []*Job
		running    = make([]*Job, c.Contexts)
		targets    = make([]uint64, c.Contexts)
		active     = 0
		nextArr    = 0
		ffDrainEnd uint64
	)
	for t := range targets {
		targets[t] = cpu.NoTarget
	}

	for {
		now := m.Cycle()
		h.advance(now)

		// Admit every job that has arrived by now, in arrival order.
		for nextArr < len(jobs) && jobs[nextArr].Arrival <= now {
			j := &jobs[nextArr]
			queue = append(queue, j)
			logf("@%d arrive job=%d bench=%s mem=%t budget=%d", j.Arrival, j.ID, j.Bench, j.Mem, j.Budget)
			arrived.Inc()
			nextArr++
		}
		depth.Observe(int64(len(queue)))

		// Place queued jobs onto free contexts, picker's choice each slot.
		for len(queue) > 0 && active < c.Contexts {
			ctx := -1
			for t, r := range running {
				if r == nil {
					ctx = t
					break
				}
			}
			i := c.Picker.Pick(queue, running)
			picks.Inc()
			j := queue[i]
			queue = append(queue[:i], queue[i+1:]...)
			if err := m.RebindThread(ctx, j.prof, jobSeed(c.Seed, j.ID)); err != nil {
				return nil, fmt.Errorf("sched: placing job %d on context %d: %w", j.ID, ctx, err)
			}
			j.Start = now
			j.Context = ctx
			running[ctx] = j
			targets[ctx] = m.Stats().Threads[ctx].Committed + j.Budget
			active++
			logf("@%d start job=%d ctx=%d wait=%d", now, j.ID, ctx, now-j.Arrival)
		}

		if active == 0 && len(queue) == 0 && nextArr == len(jobs) {
			break // drained: every job departed
		}
		if now >= c.MaxCycles {
			break // horizon: remaining jobs count as incomplete
		}

		// Tail drain: past this point active > 0 and now < MaxCycles, so if
		// the arrival process is exhausted and nothing queues, the detailed
		// loop would only be running the last co-schedule out. In FFDrain
		// mode that tail is functional: fast-forward each remaining job
		// through its remaining budget and estimate its finish from the IPC
		// it achieved while simulated in detail.
		if c.FFDrain && len(queue) == 0 && nextArr == len(jobs) {
			for ctx, j := range running {
				if j == nil {
					continue
				}
				done := m.Stats().Threads[ctx].Committed - (targets[ctx] - j.Budget)
				rem := j.Budget - done
				m.FastForwardThread(ctx, rem)
				est := rem // IPC 1.0 fallback for jobs with no detailed history
				if done > 0 && now > j.Start {
					est = (rem*(now-j.Start) + done - 1) / done // ceil(rem/ipc)
				}
				fin := now + est
				m.ParkThread(ctx)
				running[ctx] = nil
				targets[ctx] = cpu.NoTarget
				active--
				if fin > c.MaxCycles {
					// The estimate lands past the horizon: like the exact
					// mode's cutoff, the job counts as incomplete.
					logf("@%d ffcut job=%d ctx=%d est_finish=%d", now, j.ID, ctx, fin)
					if ffDrainEnd < c.MaxCycles {
						ffDrainEnd = c.MaxCycles
					}
					continue
				}
				j.Finish = fin
				j.Done = true
				tr.Completed++
				completed.Inc()
				turnaround.Observe(int64(j.Turnaround()))
				h.observe(j)
				jobSpan(j)
				if ffDrainEnd < fin {
					ffDrainEnd = fin
				}
				logf("@%d ffdrain job=%d ctx=%d finish=%d turnaround=%d", now, j.ID, ctx, fin, j.Turnaround())
			}
			break
		}

		// Advance to the next scheduling event: a job completion (detected
		// by RunToTargets), the next arrival, or the horizon.
		stop := c.MaxCycles
		if nextArr < len(jobs) && jobs[nextArr].Arrival < stop {
			stop = jobs[nextArr].Arrival
		}
		// Health intervals add stop boundaries so the ring ticks on time;
		// RunToTargets steps cycle by cycle either way, so the extra
		// boundary cannot change what any cycle computes.
		stop = h.stopBound(stop)
		// stop > now: arrivals at <= now were admitted above and the
		// horizon check would have broken the loop.
		if active > 0 {
			m.RunToTargets(targets, stop-now)
		} else {
			m.Run(stop - now)
		}
		now = m.Cycle()

		// Retire every job whose budget committed.
		for ctx, j := range running {
			if j == nil || m.Stats().Threads[ctx].Committed < targets[ctx] {
				continue
			}
			j.Finish = now
			j.Done = true
			tr.Completed++
			completed.Inc()
			turnaround.Observe(int64(j.Turnaround()))
			h.observe(j)
			jobSpan(j)
			m.ParkThread(ctx)
			running[ctx] = nil
			targets[ctx] = cpu.NoTarget
			active--
			logf("@%d finish job=%d ctx=%d turnaround=%d", now, j.ID, ctx, j.Turnaround())
		}
	}

	tr.Cycles = m.Cycle()
	if ffDrainEnd > tr.Cycles {
		tr.Cycles = ffDrainEnd
	}
	tr.Jobs = jobs
	tr.Stats = m.Stats()
	tr.Health = h.report(tr.Cycles)
	logf("@%d end completed=%d/%d", tr.Cycles, tr.Completed, len(jobs))
	c.Pool.Put(m) // nil-safe; Stats stay valid after reuse
	return tr, nil
}
