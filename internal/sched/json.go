package sched

import (
	"fmt"

	"dcra/internal/obs"
	"dcra/internal/sample"
	"dcra/internal/sim"
	"dcra/internal/stats"
)

// RunStats is the machine-readable schema shared by `smtsim -json` (static
// fixed-window runs) and `smtsim serve` (open-system trials): both emit the
// same top-level document, with the Sched block present only for trials.
type RunStats struct {
	Mode       string           `json:"mode"` // "static" or "serve"
	Policy     string           `json:"policy"`
	Cycles     uint64           `json:"cycles"`
	Throughput float64          `json:"throughput_ipc"`
	Threads    []ThreadRunStats `json:"threads"`

	// Sampled carries the SMARTS sampling summary when the static run used
	// `smtsim -sampled`; Throughput is then the window mean and the Threads
	// counters aggregate the measured windows only.
	Sampled *sample.Summary `json:"sampled,omitempty"`

	Sched *sim.SchedSummary `json:"sched,omitempty"`
	Jobs  []Job             `json:"jobs,omitempty"`

	// Probe carries the periodic per-thread IPC / ROB-occupancy series when
	// the run was probed (`smtsim -probe N`).
	Probe *obs.ProbeSeries `json:"probe,omitempty"`

	// Health carries the SLO layer's verdict when the trial declared
	// latency objectives or a health interval.
	Health *HealthReport `json:"health,omitempty"`
}

// ThreadRunStats is the per-hardware-context slice of RunStats.
type ThreadRunStats struct {
	Label        string  `json:"label"` // bench name (static) or ctx<N> (serve)
	Committed    uint64  `json:"committed"`
	IPC          float64 `json:"ipc"`
	Squashed     uint64  `json:"squashed"`
	L1DMisses    uint64  `json:"l1d_misses"`
	L2DMisses    uint64  `json:"l2d_misses"`
	MispredPct   float64 `json:"mispredict_pct"`
	FetchStalled uint64  `json:"fetch_stalled"`
}

// threadRunStats flattens per-thread counters under the given labels.
func threadRunStats(st *stats.Stats, labels []string) []ThreadRunStats {
	out := make([]ThreadRunStats, len(st.Threads))
	for i := range st.Threads {
		ts := &st.Threads[i]
		out[i] = ThreadRunStats{
			Label:        labels[i],
			Committed:    ts.Committed,
			IPC:          ts.IPC(st.Cycles),
			Squashed:     ts.Squashed,
			L1DMisses:    ts.L1DMisses,
			L2DMisses:    ts.L2DMisses,
			MispredPct:   ts.MispredictRate(),
			FetchStalled: ts.FetchStalled,
		}
	}
	return out
}

// StaticRunStats builds the RunStats document of a fixed-window run: one
// label per thread (the bench names), no Sched block.
func StaticRunStats(policy string, labels []string, st *stats.Stats) RunStats {
	return RunStats{
		Mode:       "static",
		Policy:     policy,
		Cycles:     st.Cycles,
		Throughput: st.Throughput(),
		Threads:    threadRunStats(st, labels),
	}
}

// RunStats builds the trial's document: per-context counters (labelled
// ctx<N>, since contexts serve many jobs over a trial), the Sched summary
// and the full per-job record.
func (t *Trial) RunStats() RunStats {
	labels := make([]string, t.Contexts)
	for i := range labels {
		labels[i] = fmt.Sprintf("ctx%d", i)
	}
	return RunStats{
		Mode:       "serve",
		Policy:     t.PolicyLabel(),
		Cycles:     t.Cycles,
		Throughput: t.Stats.Throughput(),
		Threads:    threadRunStats(t.Stats, labels),
		Sched:      t.Summary(),
		Jobs:       t.Jobs,
		Health:     t.Health,
	}
}
