package sched

import (
	"fmt"

	"dcra/internal/obs"
)

// Job classes an SLO can scope to, per the paper's ILP/MEM taxonomy.
const (
	ClassAll = "all"
	ClassILP = "ilp"
	ClassMEM = "mem"
)

// SLOSpec declares one turnaround latency objective for a trial: the
// Quantile-quantile of turnaround cycles, over jobs of Class finishing in
// the last Window health intervals, must stay at or below Target.
type SLOSpec struct {
	Class    string  `json:"class"`    // all, ilp or mem
	Quantile float64 `json:"quantile"` // e.g. 0.99
	Target   uint64  `json:"target"`   // cycles
	Window   int     `json:"window"`   // health intervals; <= 0 means the whole trial
}

func (s SLOSpec) String() string {
	return fmt.Sprintf("p%g(%s) <= %d cycles", s.Quantile*100, s.Class, s.Target)
}

// metric returns the health-registry histogram the spec reads.
func (s SLOSpec) metric() string {
	if s.Class == ClassAll {
		return "sched.turnaround.cycles"
	}
	return "sched.turnaround.cycles." + s.Class
}

func (s SLOSpec) validate() error {
	switch s.Class {
	case ClassAll, ClassILP, ClassMEM:
	default:
		return fmt.Errorf("sched: %w: SLO class %q (want %s, %s or %s)", ErrConfig, s.Class, ClassAll, ClassILP, ClassMEM)
	}
	if s.Quantile <= 0 || s.Quantile > 1 {
		return fmt.Errorf("sched: %w: SLO quantile %g outside (0, 1]", ErrConfig, s.Quantile)
	}
	if s.Target == 0 {
		return fmt.Errorf("sched: %w: SLO needs a non-zero cycle target", ErrConfig)
	}
	return nil
}

// SLOResult is the end-of-trial verdict of one SLOSpec: the final window's
// attainment, quantile estimate and error-budget burn, plus how many health
// intervals breached along the way.
type SLOResult struct {
	Class           string  `json:"class"`
	Quantile        float64 `json:"quantile"`
	TargetCycles    uint64  `json:"target_cycles"`
	WindowIntervals int     `json:"window_intervals"`

	Observations    int64   `json:"observations"` // jobs in the final window
	Attained        float64 `json:"attained"`
	QuantileCycles  float64 `json:"quantile_cycles"`
	Burn            float64 `json:"burn"`
	Met             bool    `json:"met"`
	BreachIntervals int     `json:"breach_intervals"`
}

// HealthReport is the trial's time-resolved self-assessment: how many
// cycle-domain intervals the health ring recorded and how every declared SLO
// fared. Deterministic for a given seed — the ring ticks on cycle
// boundaries, so two same-seed trials produce identical reports.
type HealthReport struct {
	EveryCycles      uint64      `json:"every_cycles"`
	Intervals        int         `json:"intervals"`
	DroppedIntervals int64       `json:"dropped_intervals,omitempty"`
	SLOs             []SLOResult `json:"slos,omitempty"`
}

// healthRingCap bounds the health ring; trials longer than
// healthRingCap*HealthEvery cycles lose their oldest intervals (reported as
// DroppedIntervals), exactly like any flight-data ring.
const healthRingCap = 256

// health is the trial-local state of the SLO layer: a private registry of
// turnaround histograms (private so concurrent trials sharing a suite-wide
// Obs registry cannot bleed into each other's windows), a cycle-domain ring
// of its snapshots, and per-SLO breach accounting.
type health struct {
	every    uint64
	next     uint64
	last     uint64 // cycle of the most recent tick
	ring     *obs.Ring
	all      *obs.Histogram
	ilp      *obs.Histogram
	mem      *obs.Histogram
	reg      *obs.Registry
	slos     []SLOSpec
	breaches []int

	flight      *obs.FlightRecorder
	breachCount *obs.Counter // on the caller's shared registry, nil-safe
}

// newHealth builds the trial's health state, or nil when the config declares
// no SLOs and no health interval.
func (c *Config) newHealth() (*health, error) {
	if len(c.SLOs) == 0 && c.HealthEvery == 0 {
		return nil, nil
	}
	for _, s := range c.SLOs {
		if err := s.validate(); err != nil {
			return nil, err
		}
	}
	every := c.HealthEvery
	if every == 0 {
		// Default: ~128 intervals across the horizon, at least one cycle.
		every = max(c.MaxCycles/128, 1)
	}
	reg := obs.NewRegistry()
	h := &health{
		every:       every,
		next:        every,
		ring:        obs.NewRing(healthRingCap),
		reg:         reg,
		all:         reg.Histogram("sched.turnaround.cycles", obs.CycleBounds),
		ilp:         reg.Histogram("sched.turnaround.cycles.ilp", obs.CycleBounds),
		mem:         reg.Histogram("sched.turnaround.cycles.mem", obs.CycleBounds),
		slos:        c.SLOs,
		breaches:    make([]int, len(c.SLOs)),
		flight:      c.Flight,
		breachCount: c.Obs.Counter("sched.slo.breaches"),
	}
	return h, nil
}

// observe records one finished job's turnaround into the class histograms.
func (h *health) observe(j *Job) {
	if h == nil {
		return
	}
	ta := int64(j.Turnaround())
	h.all.Observe(ta)
	if j.Mem {
		h.mem.Observe(ta)
	} else {
		h.ilp.Observe(ta)
	}
}

// tick snapshots the turnaround histograms into the ring at the given cycle
// and re-evaluates every SLO over its sliding window, charging a breach (and
// recording a flight event) for each unmet objective with observations.
func (h *health) tick(at uint64) {
	if h == nil {
		return
	}
	h.last = at
	h.ring.Record(int64(at), h.reg.Snapshot())
	for i, spec := range h.slos {
		st := h.ring.EvalSLO(obs.SLO{
			Metric:   spec.metric(),
			Quantile: spec.Quantile,
			Target:   int64(spec.Target),
			Window:   spec.Window,
		})
		if st.Met || st.Observations == 0 {
			continue
		}
		h.breaches[i]++
		h.breachCount.Inc()
		h.flight.Record("slo-breach", "@%d %s: attained %.4f (%d jobs), p%g=%.0f cycles, burn %.2fx",
			at, spec, st.Attained, st.Observations, spec.Quantile*100, st.QuantileValue, st.Burn)
	}
}

// advance ticks every interval boundary in (from, now], leaving next > now.
func (h *health) advance(now uint64) {
	if h == nil {
		return
	}
	for h.next <= now {
		h.tick(h.next)
		h.next += h.every
	}
}

// stopBound clamps a run budget so the detailed loop regains control at the
// next health-interval boundary. Identity when health is off.
func (h *health) stopBound(stop uint64) uint64 {
	if h == nil || h.next >= stop {
		return stop
	}
	return h.next
}

// report closes the health state at the trial's final cycle: one last tick
// (so tail jobs land in a window) and the per-SLO verdicts.
func (h *health) report(finalCycle uint64) *HealthReport {
	if h == nil {
		return nil
	}
	if finalCycle > h.last || h.ring.Len() == 0 {
		h.tick(finalCycle)
	}
	r := &HealthReport{
		EveryCycles:      h.every,
		Intervals:        h.ring.Len(),
		DroppedIntervals: h.ring.Dropped(),
	}
	for i, spec := range h.slos {
		st := h.ring.EvalSLO(obs.SLO{
			Metric:   spec.metric(),
			Quantile: spec.Quantile,
			Target:   int64(spec.Target),
			Window:   spec.Window,
		})
		r.SLOs = append(r.SLOs, SLOResult{
			Class:           spec.Class,
			Quantile:        spec.Quantile,
			TargetCycles:    spec.Target,
			WindowIntervals: spec.Window,
			Observations:    st.Observations,
			Attained:        st.Attained,
			QuantileCycles:  st.QuantileValue,
			Burn:            st.Burn,
			Met:             st.Met,
			BreachIntervals: h.breaches[i],
		})
	}
	return r
}
