package sched

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"dcra/internal/metrics"
	"dcra/internal/sim"
	"dcra/internal/workload"
)

// EventLogText returns the trial's event log as one newline-terminated
// string — the byte sequence the determinism contract is stated over.
func (t *Trial) EventLogText() string {
	return strings.Join(t.EventLog, "\n") + "\n"
}

// EventLogSHA returns the hex SHA-256 digest of EventLogText, truncated to
// 128 bits: enough to compare trials across hosts without shipping logs.
func (t *Trial) EventLogSHA() string {
	sum := sha256.Sum256([]byte(t.EventLogText()))
	return hex.EncodeToString(sum[:16])
}

// PolicyLabel renders the trial's policy pair as "<picker>+<alloc>", the
// form campaign cells use.
func (t *Trial) PolicyLabel() string { return t.Picker + "+" + t.Alloc }

// Summary condenses the trial into the open-system metrics the experiment
// tables report.
func (t *Trial) Summary() *sim.SchedSummary {
	s := &sim.SchedSummary{
		Contexts:    t.Contexts,
		Jobs:        len(t.Jobs),
		Completed:   t.Completed,
		Cycles:      t.Cycles,
		EventLogSHA: t.EventLogSHA(),
	}
	if t.Cycles > 0 {
		s.JobsPerMCycle = float64(t.Completed) * 1e6 / float64(t.Cycles)
		if t.Stats != nil {
			s.UopsPerCycle = t.Stats.Throughput()
		}
	}
	var turnarounds, rates []float64
	for i := range t.Jobs {
		j := &t.Jobs[i]
		if !j.Done {
			continue
		}
		ta := float64(j.Turnaround())
		turnarounds = append(turnarounds, ta)
		if ta > 0 {
			rates = append(rates, float64(j.Budget)/ta)
		}
	}
	s.P50Turnaround = metrics.Percentile(turnarounds, 50)
	s.P99Turnaround = metrics.Percentile(turnarounds, 99)
	s.MeanTurnaround = metrics.Mean(turnarounds)
	s.Jain = metrics.JainFairness(rates)
	return s
}

// Result adapts the trial to the campaign result schema so sched cells ride
// the same memoisation, store and shard machinery as every closed-workload
// cell. Throughput carries the aggregate committed IPC; the open-system
// metrics live in Result.Sched.
func (t *Trial) Result() sim.Result {
	s := t.Summary()
	return sim.Result{
		Workload:   workload.Workload{Threads: t.Contexts},
		Policy:     t.PolicyLabel(),
		Stats:      t.Stats,
		Throughput: s.UopsPerCycle,
		Sched:      s,
	}
}

// String renders a one-line human summary.
func (t *Trial) String() string {
	s := t.Summary()
	return fmt.Sprintf("sched %s %s: %d/%d jobs in %d cycles (%.1f jobs/Mcyc, p99 turnaround %.0f, jain %.3f)",
		t.Arrivals, t.PolicyLabel(), t.Completed, len(t.Jobs), t.Cycles,
		s.JobsPerMCycle, s.P99Turnaround, s.Jain)
}
