package sched

import (
	"errors"
	"reflect"
	"testing"

	"dcra/internal/obs"
)

// TestSchedHealthBitIdentical is the health layer's bit-identity guard: the
// same seed with and without SLO tracking must produce the identical event
// log, job records, cycle count and machine stats. Health ticks add stop
// boundaries to the detailed loop, and this test is the proof they are
// observationally invisible.
func TestSchedHealthBitIdentical(t *testing.T) {
	for _, ffdrain := range []bool{false, true} {
		base := testConfig(FCFS{}, nil)
		base.FFDrain = ffdrain

		plain, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}

		healthy := base
		healthy.HealthEvery = 1_000 // hundreds of extra stop boundaries
		healthy.SLOs = []SLOSpec{
			{Class: ClassAll, Quantile: 0.99, Target: 200_000, Window: 8},
			{Class: ClassMEM, Quantile: 0.5, Target: 150_000},
		}
		healthy.Flight = obs.NewFlightRecorder(64)
		tr, err := Run(healthy)
		if err != nil {
			t.Fatal(err)
		}

		if tr.EventLogText() != plain.EventLogText() {
			t.Fatalf("ffdrain=%t: health layer perturbed the event log:\n--- plain\n%s\n--- health\n%s",
				ffdrain, plain.EventLogText(), tr.EventLogText())
		}
		if tr.EventLogSHA() != plain.EventLogSHA() {
			t.Fatalf("ffdrain=%t: event-log digests differ", ffdrain)
		}
		if !reflect.DeepEqual(tr.Jobs, plain.Jobs) {
			t.Fatalf("ffdrain=%t: job records differ", ffdrain)
		}
		if tr.Cycles != plain.Cycles || tr.Completed != plain.Completed {
			t.Fatalf("ffdrain=%t: cycles %d/%d completed %d/%d differ",
				ffdrain, tr.Cycles, plain.Cycles, tr.Completed, plain.Completed)
		}
		if !reflect.DeepEqual(tr.Stats, plain.Stats) {
			t.Fatalf("ffdrain=%t: machine stats differ", ffdrain)
		}

		// And the report itself must exist and be deterministic.
		if tr.Health == nil {
			t.Fatalf("ffdrain=%t: no health report", ffdrain)
		}
		tr2, err := Run(healthy)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tr.Health, tr2.Health) {
			t.Fatalf("ffdrain=%t: same-seed health reports differ:\n%+v\n%+v", ffdrain, tr.Health, tr2.Health)
		}
	}
}

func TestSchedHealthReport(t *testing.T) {
	c := testConfig(FCFS{}, nil)
	c.HealthEvery = 5_000
	c.SLOs = []SLOSpec{
		// Generous: every turnaround fits inside the horizon, so this must
		// be met with zero breach intervals.
		{Class: ClassAll, Quantile: 0.99, Target: c.MaxCycles},
		// Impossible: one cycle of budget, so the first finishing job
		// breaches it and keeps it breached.
		{Class: ClassAll, Quantile: 0.5, Target: 1},
	}
	flight := obs.NewFlightRecorder(128)
	c.Flight = flight
	reg := obs.NewRegistry()
	c.Obs = reg

	tr, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	h := tr.Health
	if h == nil {
		t.Fatal("no health report")
	}
	if h.EveryCycles != 5_000 || h.Intervals < 2 {
		t.Fatalf("report interval bookkeeping %+v", h)
	}
	if len(h.SLOs) != 2 {
		t.Fatalf("want 2 SLO results, got %+v", h.SLOs)
	}
	ok, bad := h.SLOs[0], h.SLOs[1]
	if !ok.Met || ok.BreachIntervals != 0 || ok.Burn != 0 || ok.Attained != 1 {
		t.Errorf("generous SLO should be cleanly met: %+v", ok)
	}
	if ok.Observations != int64(tr.Completed) {
		t.Errorf("whole-trial window saw %d jobs, completed %d", ok.Observations, tr.Completed)
	}
	if bad.Met || bad.BreachIntervals == 0 || bad.Burn <= 1 {
		t.Errorf("impossible SLO should breach: %+v", bad)
	}

	// Breaches surface on the shared registry and in the flight recorder.
	snap := reg.Snapshot()
	if snap.Counters["sched.slo.breaches"] != int64(bad.BreachIntervals) {
		t.Errorf("shared breach counter %d, breach intervals %d",
			snap.Counters["sched.slo.breaches"], bad.BreachIntervals)
	}
	var breachEvents int
	for _, e := range flight.Events() {
		if e.Kind == "slo-breach" {
			breachEvents++
		}
	}
	if breachEvents == 0 {
		t.Error("no slo-breach flight events recorded")
	}

	// The report rides along in the JSON document.
	if rs := tr.RunStats(); rs.Health != h {
		t.Error("RunStats dropped the health report")
	}
}

func TestSchedHealthDefaultInterval(t *testing.T) {
	c := testConfig(FCFS{}, nil)
	c.SLOs = []SLOSpec{{Class: ClassILP, Quantile: 0.9, Target: c.MaxCycles}}
	tr, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Health == nil {
		t.Fatal("SLOs alone should enable the health ring")
	}
	if want := c.MaxCycles / 128; tr.Health.EveryCycles != want {
		t.Errorf("default interval %d, want MaxCycles/128 = %d", tr.Health.EveryCycles, want)
	}
	// No health config at all: no report.
	plain, err := Run(testConfig(FCFS{}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Health != nil {
		t.Error("health report without any health config")
	}
}

func TestSLOSpecValidation(t *testing.T) {
	bad := []SLOSpec{
		{Class: "batch", Quantile: 0.99, Target: 10},
		{Class: ClassAll, Quantile: 0, Target: 10},
		{Class: ClassAll, Quantile: 1.5, Target: 10},
		{Class: ClassAll, Quantile: 0.99, Target: 0},
	}
	for _, spec := range bad {
		c := testConfig(FCFS{}, nil)
		c.SLOs = []SLOSpec{spec}
		if _, err := Run(c); !errors.Is(err, ErrConfig) {
			t.Errorf("spec %+v: error %v, want ErrConfig", spec, err)
		}
	}
}
