package sched

import "fmt"

// Picker is the co-schedule policy: when a hardware context frees up, Pick
// chooses which queued job occupies it, given the jobs currently running on
// the other contexts. queue is non-empty and in arrival order; running has
// one slot per hardware context, nil where the context is idle. Pick returns
// an index into queue.
//
// Pickers must be deterministic pure functions of their arguments: the
// scheduler's bit-reproducible event logs depend on it.
type Picker interface {
	Name() string
	Pick(queue []*Job, running []*Job) int
}

// FCFS places jobs strictly in arrival order.
type FCFS struct{}

// Name implements Picker.
func (FCFS) Name() string { return "FCFS" }

// Pick implements Picker.
func (FCFS) Pick(queue []*Job, running []*Job) int { return 0 }

// SJF (shortest job first) places the queued job with the smallest remaining
// instruction budget, breaking ties in arrival order. With budgets known up
// front this is the classic turnaround-minimising heuristic; it trades tail
// latency of long jobs for mean turnaround.
type SJF struct{}

// Name implements Picker.
func (SJF) Name() string { return "SJF" }

// Pick implements Picker.
func (SJF) Pick(queue []*Job, running []*Job) int {
	best := 0
	for i := 1; i < len(queue); i++ {
		if queue[i].Budget < queue[best].Budget {
			best = i
		}
	}
	return best
}

// Symbiosis is the symbiosis-aware picker: it classifies jobs by the paper's
// ILP/MEM thread taxonomy (trace.Profile.Mem) and steers the mix on the core
// away from stacked MEM jobs, which fight over the L2 and memory bandwidth,
// and away from all-ILP mixes, which leave the memory system idle. When MEM
// jobs hold at least as many contexts as ILP jobs it prefers the first
// queued ILP job, and vice versa; if no job of the preferred class is
// queued, it falls back to arrival order.
type Symbiosis struct{}

// Name implements Picker.
func (Symbiosis) Name() string { return "SYMB" }

// Pick implements Picker.
func (Symbiosis) Pick(queue []*Job, running []*Job) int {
	mem, ilp := 0, 0
	for _, j := range running {
		if j == nil {
			continue
		}
		if j.Mem {
			mem++
		} else {
			ilp++
		}
	}
	wantMem := mem < ilp
	for i, j := range queue {
		if j.Mem == wantMem {
			return i
		}
	}
	return 0
}

// PickerByName resolves a picker name arriving from a CLI flag or campaign
// cell: FCFS, SJF or SYMB.
func PickerByName(name string) (Picker, error) {
	switch name {
	case "FCFS":
		return FCFS{}, nil
	case "SJF":
		return SJF{}, nil
	case "SYMB":
		return Symbiosis{}, nil
	}
	return nil, fmt.Errorf("sched: unknown picker %q (have FCFS, SJF, SYMB)", name)
}

// PickerNames lists the co-schedule policies in presentation order.
func PickerNames() []string { return []string{"FCFS", "SJF", "SYMB"} }
