package sched

import (
	"errors"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"

	"dcra/internal/config"
	"dcra/internal/cpu"
	"dcra/internal/policy"
	"dcra/internal/rng"
	"dcra/internal/sim"
)

func newTestRNG() *rng.Source { return rng.New(42) }

// testConfig is a small trial that completes quickly: 2 contexts serving 8
// short jobs at a moderate open rate.
func testConfig(picker Picker, pool *sim.MachinePool) Config {
	return Config{
		Machine:   config.Baseline(),
		Contexts:  2,
		Alloc:     func() cpu.Policy { return policy.NewICount() },
		Picker:    picker,
		Arrivals:  Arrivals{Kind: Open, Jobs: 8, Gap: 2_000},
		Benches:   []string{"gzip", "mcf", "eon", "art"},
		Budget:    4_000,
		Seed:      0x5eed,
		MaxCycles: 400_000,
		Pool:      pool,
	}
}

func TestTrialCompletesAllJobs(t *testing.T) {
	tr, err := Run(testConfig(FCFS{}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Completed != len(tr.Jobs) || len(tr.Jobs) != 8 {
		t.Fatalf("completed %d of %d jobs:\n%s", tr.Completed, len(tr.Jobs), tr.EventLogText())
	}
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		if !j.Done {
			t.Fatalf("job %d not done", j.ID)
		}
		if j.Start < j.Arrival || j.Finish <= j.Start {
			t.Fatalf("job %d has inconsistent lifecycle: arrival %d start %d finish %d",
				j.ID, j.Arrival, j.Start, j.Finish)
		}
		if j.Context < 0 || j.Context >= tr.Contexts {
			t.Fatalf("job %d ran on context %d", j.ID, j.Context)
		}
	}
	s := tr.Summary()
	if s.Completed != 8 || s.JobsPerMCycle <= 0 || s.UopsPerCycle <= 0 {
		t.Fatalf("implausible summary %+v", s)
	}
	if s.P50Turnaround <= 0 || s.P99Turnaround < s.P50Turnaround {
		t.Fatalf("implausible turnaround percentiles %+v", s)
	}
	if s.Jain <= 0 || s.Jain > 1 {
		t.Fatalf("Jain index %v outside (0,1]", s.Jain)
	}
	// Event timestamps must be non-decreasing (the log is in simulation
	// order).
	var last uint64
	for _, line := range tr.EventLog {
		at := parseAt(t, line)
		if at < last {
			t.Fatalf("event log out of order at %q:\n%s", line, tr.EventLogText())
		}
		last = at
	}
}

// parseAt extracts the "@<cycle>" prefix of an event-log line.
func parseAt(t *testing.T, line string) uint64 {
	t.Helper()
	head, _, _ := strings.Cut(line, " ")
	at, err := strconv.ParseUint(strings.TrimPrefix(head, "@"), 10, 64)
	if err != nil {
		t.Fatalf("unparseable log line %q: %v", line, err)
	}
	return at
}

// TestHorizonCutsTrialShort: an impossible load under a tiny horizon must
// terminate at the horizon with partial completion, not hang.
func TestHorizonCutsTrialShort(t *testing.T) {
	c := testConfig(FCFS{}, nil)
	c.Arrivals = Arrivals{Kind: Batch, Jobs: 32}
	c.Budget = 50_000
	c.MaxCycles = 20_000
	tr, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cycles < c.MaxCycles {
		t.Fatalf("trial stopped at %d cycles, horizon %d", tr.Cycles, c.MaxCycles)
	}
	if tr.Completed >= len(tr.Jobs) {
		t.Fatalf("all %d jobs completed under an impossible horizon", tr.Completed)
	}
}

// TestSchedDeterminism is the satellite determinism proof: same-seed trials
// — run concurrently against a shared machine pool, as campaign workers
// would — produce byte-identical job event logs. Run under -race in CI.
func TestSchedDeterminism(t *testing.T) {
	pool := sim.NewMachinePool()
	const runs = 4
	trials := make([]*Trial, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			picker, _ := PickerByName("SYMB")
			trials[i], errs[i] = Run(testConfig(picker, pool))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	want := trials[0].EventLogText()
	for i := 1; i < runs; i++ {
		if got := trials[i].EventLogText(); got != want {
			t.Fatalf("event logs differ between same-seed runs:\n--- run 0\n%s--- run %d\n%s", want, i, got)
		}
		if trials[i].EventLogSHA() != trials[0].EventLogSHA() {
			t.Fatalf("event log digests differ")
		}
		if !reflect.DeepEqual(trials[i].Summary(), trials[0].Summary()) {
			t.Fatalf("summaries differ: %+v vs %+v", trials[0].Summary(), trials[i].Summary())
		}
		if !reflect.DeepEqual(trials[i].Stats, trials[0].Stats) {
			t.Fatalf("machine statistics differ between same-seed runs")
		}
	}
}

// TestArrivalProcesses pins the shape of each arrival process.
func TestArrivalProcesses(t *testing.T) {
	rg := newTestRNG()
	batch := Arrivals{Kind: Batch, Jobs: 5}
	for _, at := range batch.Times(rg) {
		if at != 0 {
			t.Fatal("batch arrival after cycle 0")
		}
	}
	open := Arrivals{Kind: Open, Jobs: 5, Gap: 100}
	for i, at := range open.Times(rg) {
		if at != uint64(i)*100 {
			t.Fatalf("open arrival %d at %d, want %d", i, at, i*100)
		}
	}
	burst := Arrivals{Kind: Bursty, Jobs: 8, Gap: 100, Burst: 4}
	times := burst.Times(rg)
	if times[0] != times[3] || times[4] != times[7] {
		t.Fatalf("burst members not simultaneous: %v", times)
	}
	if times[4] <= times[0] {
		t.Fatalf("bursts not separated: %v", times)
	}
	// Same seed, same schedule; batch and open must not consume randomness,
	// so the bursty draws after them land identically.
	rg2 := newTestRNG()
	batch.Times(rg2)
	open.Times(rg2)
	if again := burst.Times(rg2); !reflect.DeepEqual(times, again) {
		t.Fatalf("bursty schedule not seed-deterministic: %v vs %v", times, again)
	}
}

// TestPickers exercises each picker's choice rule on a crafted queue.
func TestPickers(t *testing.T) {
	mk := func(id int, mem bool, budget uint64) *Job {
		return &Job{ID: id, Mem: mem, Budget: budget}
	}
	queue := []*Job{mk(0, true, 9_000), mk(1, false, 2_000), mk(2, true, 5_000)}

	if got := (FCFS{}).Pick(queue, nil); got != 0 {
		t.Fatalf("FCFS picked %d", got)
	}
	if got := (SJF{}).Pick(queue, nil); got != 1 {
		t.Fatalf("SJF picked %d, want the 2k-budget job", got)
	}
	// One MEM job running, no ILP: symbiosis must pick the first ILP job.
	running := []*Job{mk(9, true, 1), nil}
	if got := (Symbiosis{}).Pick(queue, running); got != 1 {
		t.Fatalf("SYMB picked %d with a MEM job running, want ILP job at 1", got)
	}
	// One ILP running, no MEM: prefer the first MEM job.
	running = []*Job{mk(9, false, 1), nil}
	if got := (Symbiosis{}).Pick(queue, running); got != 0 {
		t.Fatalf("SYMB picked %d with an ILP job running, want MEM job at 0", got)
	}
	// Preferred class absent: fall back to FCFS.
	allMem := []*Job{mk(0, true, 1), mk(1, true, 1)}
	if got := (Symbiosis{}).Pick(allMem, running); got != 0 {
		t.Fatalf("SYMB fallback picked %d", got)
	}
	if _, err := PickerByName("nope"); err == nil {
		t.Fatal("unknown picker accepted")
	}
}

// TestConfigValidation guards the error paths.
func TestConfigValidation(t *testing.T) {
	// Malformed configs — zero contexts, missing policies, an empty job set,
	// a zero arrival rate — must fail with the typed ErrConfig so sweep
	// drivers can tell "this trial is nonsense" from simulation failures.
	bad := []func(*Config){
		func(c *Config) { c.Contexts = 0 },
		func(c *Config) { c.Alloc = nil },
		func(c *Config) { c.Picker = nil },
		func(c *Config) { c.Benches = nil },
		func(c *Config) { c.Budget = 0 },
		func(c *Config) { c.MaxCycles = 0 },
		func(c *Config) { c.Arrivals.Jobs = 0 },
		func(c *Config) { c.Arrivals.Jobs = -3 },
		func(c *Config) { c.Arrivals = Arrivals{Kind: "nope", Jobs: 1} },
		func(c *Config) { c.Arrivals = Arrivals{Kind: Open, Jobs: 1} },
		func(c *Config) { c.Arrivals = Arrivals{Kind: Bursty, Jobs: 1, Gap: 5} },
	}
	for i, mutate := range bad {
		c := testConfig(FCFS{}, nil)
		mutate(&c)
		_, err := Run(c)
		if err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
		if !errors.Is(err, ErrConfig) {
			t.Fatalf("bad config %d failed without ErrConfig: %v", i, err)
		}
	}
	// An unknown bench is a data error discovered past validation, not a
	// config-shape error.
	c := testConfig(FCFS{}, nil)
	c.Benches = []string{"not-a-bench"}
	if _, err := Run(c); err == nil || errors.Is(err, ErrConfig) {
		t.Fatalf("unknown bench: err = %v, want non-ErrConfig failure", err)
	}
}

// TestFFDrainDeterminism checks the fast-forwarded tail drain is
// deterministic and completes the same job set as the detailed drain (the
// departures it replaces are estimates, so only completion membership and
// reproducibility are contractual, not cycle counts).
func TestFFDrainDeterminism(t *testing.T) {
	ffConfig := func() Config {
		c := testConfig(FCFS{}, nil)
		c.FFDrain = true
		return c
	}
	a, err := Run(ffConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ffConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.EventLogSHA() != b.EventLogSHA() {
		t.Fatalf("same-seed ffdrain trials differ:\n--- run a\n%s--- run b\n%s",
			a.EventLogText(), b.EventLogText())
	}
	if !reflect.DeepEqual(a.Summary(), b.Summary()) {
		t.Fatalf("ffdrain summaries differ: %+v vs %+v", a.Summary(), b.Summary())
	}
	exact, err := Run(testConfig(FCFS{}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != exact.Completed {
		t.Fatalf("ffdrain completed %d jobs, detailed drain %d", a.Completed, exact.Completed)
	}
	if a.EventLogSHA() == exact.EventLogSHA() {
		t.Fatal("ffdrain event log unexpectedly identical to the detailed drain (digest is documented as mode-dependent)")
	}
}
