package sched

import (
	"fmt"

	"dcra/internal/rng"
)

// ArrivalKind names an arrival process.
type ArrivalKind string

// The three arrival processes the scheduler models.
const (
	// Batch is the closed-system view: every job is present at cycle 0
	// (the paper's fixed multiprogrammed workloads, reframed as jobs).
	Batch ArrivalKind = "batch"
	// Open is a fixed-rate open system: one job every Gap cycles.
	Open ArrivalKind = "open"
	// Bursty delivers jobs in bursts of Burst simultaneous arrivals; burst
	// spacing is drawn from the trial's seeded RNG with the same long-run
	// rate as Open at the same Gap.
	Bursty ArrivalKind = "burst"
)

// Arrivals describes one arrival process: how many jobs enter the system and
// when. All randomness is drawn from the seeded trial RNG, so a trial's
// arrival schedule is a pure function of (Arrivals, seed).
type Arrivals struct {
	Kind ArrivalKind
	Jobs int
	// Gap is the mean interarrival time in cycles (Open and Bursty).
	Gap uint64
	// Burst is the number of jobs arriving together (Bursty only, >= 1).
	Burst int
}

// Validate checks the process is well-formed. Failures wrap ErrConfig.
func (a Arrivals) Validate() error {
	switch a.Kind {
	case Batch:
	case Open:
		if a.Gap == 0 {
			return fmt.Errorf("sched: %w: open arrivals need a non-zero gap (a zero or negative rate offers no jobs)", ErrConfig)
		}
	case Bursty:
		if a.Gap == 0 {
			return fmt.Errorf("sched: %w: bursty arrivals need a non-zero gap (a zero or negative rate offers no jobs)", ErrConfig)
		}
		if a.Burst < 1 {
			return fmt.Errorf("sched: %w: bursty arrivals need burst >= 1", ErrConfig)
		}
	default:
		return fmt.Errorf("sched: %w: unknown arrival kind %q", ErrConfig, a.Kind)
	}
	if a.Jobs < 1 {
		return fmt.Errorf("sched: %w: arrival process offers %d jobs (empty job set)", ErrConfig, a.Jobs)
	}
	return nil
}

// Times returns the non-decreasing arrival cycles of all Jobs jobs,
// consuming randomness from rg (Bursty only; Batch and Open are fully
// deterministic and leave rg untouched).
func (a Arrivals) Times(rg *rng.Source) []uint64 {
	times := make([]uint64, a.Jobs)
	switch a.Kind {
	case Batch:
		// all zero
	case Open:
		for i := range times {
			times[i] = uint64(i) * a.Gap
		}
	case Bursty:
		// Bursts of a.Burst jobs; the gap between consecutive bursts sums
		// one seeded draw per job in the burst, uniform on [1, 2*Gap-1]
		// (mean Gap), so the long-run offered load matches Open at the
		// same Gap while the instantaneous load spikes.
		var at uint64
		for i := 0; i < a.Jobs; i += a.Burst {
			for j := i; j < i+a.Burst && j < a.Jobs; j++ {
				times[j] = at
			}
			var gap uint64
			for j := 0; j < a.Burst; j++ {
				gap += 1 + rg.Uint64()%(2*a.Gap-1)
			}
			at += gap
		}
	}
	return times
}

// String renders the process compactly for logs and table rows, e.g.
// "open:g3000" or "burst:g3000:k4".
func (a Arrivals) String() string {
	switch a.Kind {
	case Bursty:
		return fmt.Sprintf("%s:g%d:k%d", a.Kind, a.Gap, a.Burst)
	case Open:
		return fmt.Sprintf("%s:g%d", a.Kind, a.Gap)
	default:
		return string(a.Kind)
	}
}
