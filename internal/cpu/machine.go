package cpu

import (
	"fmt"

	"dcra/internal/branch"
	"dcra/internal/cache"
	"dcra/internal/config"
	"dcra/internal/isa"
	"dcra/internal/stats"
	"dcra/internal/trace"
)

// prodEntry records an in-flight value producer so consumers can resolve
// positional dependences to physical registers. Cleared at commit or squash.
type prodEntry struct {
	idx  uint64 // canonical stream index; ^0 when empty
	phys int32
	cls  isa.RegClass
}

const (
	prodRingSize = 8192 // must exceed the largest in-flight window
	prodRingMask = prodRingSize - 1
)

// feEntry is one slot of a thread's front-end (decode/rename) pipe.
type feEntry struct {
	u            isa.Uop
	readyAt      uint64 // cycle at which the uop may dispatch
	mispredicted bool
	rasTop       int32
}

// frontEnd is a fixed-capacity FIFO modelling a thread's decode/rename
// pipe. The ring is sized to the next power of two so the hot push/pop
// paths mask instead of dividing; limit keeps the modelled capacity exact.
type frontEnd struct {
	ring  []feEntry
	mask  int
	head  int
	count int
	limit int
}

func newFrontEnd(capacity int) frontEnd {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return frontEnd{ring: make([]feEntry, n), mask: n - 1, limit: capacity}
}

func (f *frontEnd) full() bool  { return f.count == f.limit }
func (f *frontEnd) empty() bool { return f.count == 0 }

func (f *frontEnd) push(e feEntry) {
	f.ring[(f.head+f.count)&f.mask] = e
	f.count++
}

func (f *frontEnd) peek() *feEntry { return &f.ring[f.head] }

func (f *frontEnd) pop() {
	f.head = (f.head + 1) & f.mask
	f.count--
}

func (f *frontEnd) clear() { f.head, f.count = 0, 0 }

// reset restores the pipe to its post-construction state for the given
// modelled capacity; the ring is reused (the caller guarantees it is large
// enough via Shape matching).
func (f *frontEnd) reset(capacity int) {
	f.clear()
	f.limit = capacity
}

// threadState groups the per-thread fetch bookkeeping.
type threadState struct {
	stream   *trace.Stream
	fetchIdx uint64 // next canonical index to fetch

	wrongPath bool
	wpPC      uint64

	icacheReadyAt uint64
	gen           uint32 // squash generation counter
	parked        bool   // idle context: fetch skips it entirely

	// Fast-forward same-line collapse state, persisted across interleave
	// quanta within one fast-forward episode (reset by ffRewind).
	ffLastLine uint64
	ffLastData uint64
}

// Machine is one simulated SMT processor running a fixed set of threads.
type Machine struct {
	cfg config.Config
	nt  int

	pol      Policy
	part     Partitioner   // non-nil when pol partitions resources
	fetchObs FetchObserver // non-nil when pol observes fetches
	loadObs  LoadObserver  // non-nil when pol observes load resolution

	hier *cache.Hierarchy
	pred *branch.Predictor

	threads []threadState
	fe      []frontEnd
	rob     []*threadROB
	robUsed int

	iqs  [3]*issueQueue // indexed by isa.Queue
	regs [2]*regFile    // int, fp
	prod [][]prodEntry  // per-thread producer rings

	// Per-thread resource usage counters — exactly the paper's DCRA
	// occupancy counters (3 IQs, 2 register files) plus ROB occupancy.
	iqCount  [][3]int
	regCount [][2]int
	robCount []int

	// Pending-miss counters (paper: one pending L1D-miss counter per
	// thread; we also track pending L2 misses for STALL/FLUSH).
	pendingL1D []int
	pendingL2  []int

	// allocFlags[t][r] is set when thread t allocates an entry of resource
	// r during the current cycle's dispatch; DCRA's activity counters
	// consume it in Tick.
	allocFlags [][NumResources]bool

	events eventQueue

	// Scratch reused each cycle by commit and dispatch: the round-robin
	// passes gather live candidate threads once and then walk only those,
	// and dispatch hoists the partitioner caps per thread per cycle (every
	// Partitioner's Cap is a pure function of Tick-computed state, so the
	// per-uop interface calls collapse to array reads in tryDispatch).
	commitBuf []int32
	dispBuf   []int32
	capBuf    [][NumResources]int
	ffBuf     []uint64 // fast-forward budget scratch

	cycle    uint64
	ageStamp uint64
	commitRR int
	fetchRR  int

	st        *stats.Stats
	rankBuf   []int
	totalRes  [NumResources]int
	commitObs CommitObserver // optional per-commit hook, nil almost always
}

// Shape captures the allocation geometry of a Machine: two machines with
// equal shapes have identical backing-array sizes and indexing structure for
// every component, so one's storage can be rebound to the other's
// configuration (latencies, widths and policy may differ freely). Shape is
// comparable and keys machine pools.
type Shape struct {
	Threads        int
	FrontEndBuffer int
	ROBSize        int
	IntQueue       int
	FPQueue        int
	LSQueue        int
	RenameRegs     int

	ICache, DCache, L2 config.Geometry
	TLBEntries         int
	PageBytes          int

	GshareEntries int
	BTBEntries    int
	BTBAssoc      int
	RASEntries    int
}

// ShapeOf returns the allocation shape of a machine built from cfg with the
// given thread count.
func ShapeOf(cfg config.Config, threads int) Shape {
	return Shape{
		Threads:        threads,
		FrontEndBuffer: cfg.FrontEndBuffer,
		ROBSize:        cfg.ROBSize,
		IntQueue:       cfg.IntQueue,
		FPQueue:        cfg.FPQueue,
		LSQueue:        cfg.LSQueue,
		RenameRegs:     cfg.RenameRegs(threads),
		ICache:         cfg.ICache.Geometry(),
		DCache:         cfg.DCache.Geometry(),
		L2:             cfg.L2.Geometry(),
		TLBEntries:     cfg.TLBEntries,
		PageBytes:      cfg.PageBytes,
		GshareEntries:  cfg.GshareEntries,
		BTBEntries:     cfg.BTBEntries,
		BTBAssoc:       cfg.BTBAssoc,
		RASEntries:     cfg.RASEntries,
	}
}

// New builds a Machine running one Stream per profile under the given
// policy. The seed fixes all synthetic-workload randomness.
func New(cfg config.Config, profiles []trace.Profile, pol Policy, seed uint64) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nt := len(profiles)
	if nt == 0 {
		return nil, fmt.Errorf("cpu: no threads")
	}
	rename := cfg.RenameRegs(nt)
	if rename <= 0 {
		return nil, fmt.Errorf("cpu: %d physical registers cannot support %d threads",
			cfg.PhysRegs, nt)
	}

	m := &Machine{
		cfg:  cfg,
		nt:   nt,
		pol:  pol,
		hier: cache.NewHierarchy(cfg),
		pred: branch.New(cfg, nt),

		threads: make([]threadState, nt),
		fe:      make([]frontEnd, nt),
		rob:     make([]*threadROB, nt),
		prod:    make([][]prodEntry, nt),

		iqCount:    make([][3]int, nt),
		regCount:   make([][2]int, nt),
		robCount:   make([]int, nt),
		pendingL1D: make([]int, nt),
		pendingL2:  make([]int, nt),
		allocFlags: make([][NumResources]bool, nt),

		commitBuf: make([]int32, 0, nt),
		dispBuf:   make([]int32, 0, nt),
		capBuf:    make([][NumResources]int, nt),
		ffBuf:     make([]uint64, 0, nt),

		st:      stats.New(nt),
		rankBuf: make([]int, 0, nt),
		events:  newEventQueue(),
	}
	m.bindPolicy(pol)

	for t := 0; t < nt; t++ {
		m.threads[t].stream = trace.NewStream(profiles[t], t, seed)
		m.fe[t] = newFrontEnd(cfg.FrontEndBuffer)
		m.rob[t] = newThreadROB(cfg.ROBSize)
		m.prod[t] = make([]prodEntry, prodRingSize)
		for i := range m.prod[t] {
			m.prod[t][i].idx = ^uint64(0)
		}
	}
	m.prewarm()

	m.iqs[isa.QInt] = newIssueQueue(cfg.IntQueue)
	m.iqs[isa.QFP] = newIssueQueue(cfg.FPQueue)
	m.iqs[isa.QLoadStore] = newIssueQueue(cfg.LSQueue)
	m.regs[0] = newRegFile(rename)
	m.regs[1] = newRegFile(rename)

	m.setTotals(rename)

	return m, nil
}

// bindPolicy installs pol and rebinds the optional observer interfaces.
func (m *Machine) bindPolicy(pol Policy) {
	m.pol = pol
	m.part, m.fetchObs, m.loadObs = nil, nil, nil
	if p, ok := pol.(Partitioner); ok {
		m.part = p
		if c, ok := pol.(DispatchCapper); ok && !c.EnforcesCaps() {
			// Caps are disabled by construction: Cap would return 0 for
			// every (thread, resource) forever, so skip the machinery.
			m.part = nil
		}
	}
	if o, ok := pol.(FetchObserver); ok {
		m.fetchObs = o
	}
	if o, ok := pol.(LoadObserver); ok {
		m.loadObs = o
	}
}

// prewarm inserts the resident working sets: the measurement window models a
// slice of a long-running program (see cache.Hierarchy.PrewarmData).
func (m *Machine) prewarm() {
	for t := 0; t < m.nt; t++ {
		fp := m.threads[t].stream.Footprint()
		m.hier.PrewarmCode(fp.CodeBase, fp.CodeBytes)
		m.hier.PrewarmData(fp.HotBase, fp.HotBytes, true)
		m.hier.PrewarmData(fp.WarmBase, fp.WarmBytes, false)
	}
}

// setTotals records the shared-resource totals policies partition against.
func (m *Machine) setTotals(rename int) {
	m.totalRes[RIntIQ] = m.cfg.IntQueue
	m.totalRes[RFPIQ] = m.cfg.FPQueue
	m.totalRes[RLSIQ] = m.cfg.LSQueue
	m.totalRes[RIntRegs] = rename
	m.totalRes[RFPRegs] = rename
	m.totalRes[RROB] = m.cfg.ROBSize
}

// Shape returns the machine's allocation shape (the pool key).
func (m *Machine) Shape() Shape { return ShapeOf(m.cfg, m.nt) }

// Reinit rebinds the machine to a new (cfg, profiles, pol, seed) cell,
// reusing every backing allocation when the new cell's Shape matches the
// machine's and falling back to fresh construction (replacing *m wholesale)
// otherwise. After Reinit the machine is observationally identical to
// New(cfg, profiles, pol, seed): the reuse-bit-identity tests assert equal
// statistics cycle for cycle.
//
// The machine's previous Stats are abandoned, never mutated, so results
// extracted from an earlier run remain valid after the machine is reused.
func (m *Machine) Reinit(cfg config.Config, profiles []trace.Profile, pol Policy, seed uint64) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	nt := len(profiles)
	if nt == 0 {
		return fmt.Errorf("cpu: no threads")
	}
	rename := cfg.RenameRegs(nt)
	if rename <= 0 {
		return fmt.Errorf("cpu: %d physical registers cannot support %d threads",
			cfg.PhysRegs, nt)
	}
	if ShapeOf(cfg, nt) != m.Shape() {
		nm, err := New(cfg, profiles, pol, seed)
		if err != nil {
			return err
		}
		*m = *nm
		return nil
	}

	// In-place reuse. This mirrors New's initialisation order exactly:
	// hierarchy and predictor first, per-thread state, prewarm, then the
	// shared back-end pools and counters.
	m.cfg = cfg
	m.bindPolicy(pol)
	if !m.hier.Reinit(cfg) {
		// Shape covers every geometry input, so this cannot fire; rebuilding
		// beats simulating on a half-reset hierarchy if it ever does.
		m.hier = cache.NewHierarchy(cfg)
	}
	if m.pred.Shape(cfg, nt) {
		m.pred.Reset()
	} else {
		m.pred = branch.New(cfg, nt)
	}

	for t := 0; t < nt; t++ {
		m.threads[t] = threadState{stream: m.threads[t].stream}
		m.threads[t].stream.Rebind(profiles[t], t, seed)
		m.fe[t].reset(cfg.FrontEndBuffer)
		m.rob[t].reset()
		prod := m.prod[t]
		for i := range prod {
			prod[i].idx = ^uint64(0)
		}
		m.iqCount[t] = [3]int{}
		m.regCount[t] = [2]int{}
		m.robCount[t] = 0
		m.pendingL1D[t] = 0
		m.pendingL2[t] = 0
		m.allocFlags[t] = [NumResources]bool{}
	}
	m.prewarm()

	for _, q := range m.iqs {
		q.reset()
	}
	for _, rf := range m.regs {
		rf.reset()
	}
	m.robUsed = 0
	m.events.reset()
	m.cycle, m.ageStamp = 0, 0
	m.commitRR, m.fetchRR = 0, 0
	m.st = stats.New(nt)
	m.rankBuf = m.rankBuf[:0]
	m.commitObs = nil
	m.setTotals(rename)
	return nil
}

// ---- accessors used by policies and the experiment harness ----

// Config returns the machine's configuration.
func (m *Machine) Config() config.Config { return m.cfg }

// NumThreads returns the number of hardware contexts in use.
func (m *Machine) NumThreads() int { return m.nt }

// Cycle returns the current cycle number.
func (m *Machine) Cycle() uint64 { return m.cycle }

// Stats returns the live statistics (reset by ResetStats after warmup).
func (m *Machine) Stats() *stats.Stats { return m.st }

// Hierarchy exposes the memory system (tests and reports).
func (m *Machine) Hierarchy() *cache.Hierarchy { return m.hier }

// Total returns the number of entries of resource r shared by all threads.
func (m *Machine) Total(r Resource) int { return m.totalRes[r] }

// Usage returns thread t's current occupancy of resource r.
func (m *Machine) Usage(t int, r Resource) int {
	switch r {
	case RIntIQ:
		return m.iqCount[t][isa.QInt]
	case RFPIQ:
		return m.iqCount[t][isa.QFP]
	case RLSIQ:
		return m.iqCount[t][isa.QLoadStore]
	case RIntRegs:
		return m.regCount[t][0]
	case RFPRegs:
		return m.regCount[t][1]
	case RROB:
		return m.robCount[t]
	}
	return 0
}

// ICount returns the paper's ICOUNT statistic for thread t: instructions in
// the pre-issue stages (front-end pipe plus issue queues).
func (m *Machine) ICount(t int) int {
	return m.fe[t].count + m.iqCount[t][0] + m.iqCount[t][1] + m.iqCount[t][2]
}

// PendingL1D returns thread t's in-flight L1 data misses (detected, not yet
// filled) — the paper's slow/fast classification signal.
func (m *Machine) PendingL1D(t int) int { return m.pendingL1D[t] }

// PendingL2 returns thread t's in-flight main-memory misses.
func (m *Machine) PendingL2(t int) int { return m.pendingL2[t] }

// AllocatedThisCycle reports whether thread t allocated an entry of r during
// this cycle's dispatch (DCRA activity tracking).
func (m *Machine) AllocatedThisCycle(t int, r Resource) bool {
	return m.allocFlags[t][r]
}

// ResetStats zeroes statistics while preserving microarchitectural state;
// call after warmup.
func (m *Machine) ResetStats() {
	nt := m.nt
	m.st = stats.New(nt)
	m.hier.ResetStats()
	m.pred.Lookups, m.pred.Mispredict = 0, 0
}

// Run advances the machine n cycles.
func (m *Machine) Run(n uint64) {
	for i := uint64(0); i < n; i++ {
		m.step()
	}
}

// RunUntilCommit advances until every thread has committed at least n uops
// (or maxCycles elapse). It returns the cycles consumed. Used by tests.
func (m *Machine) RunUntilCommit(n uint64, maxCycles uint64) uint64 {
	start := m.cycle
	for m.cycle-start < maxCycles {
		m.step()
		done := true
		for t := range m.st.Threads {
			if m.st.Threads[t].Committed < n {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	return m.cycle - start
}
