package cpu

import "dcra/internal/isa"

// reclaim releases every in-flight uop of thread t with dseq >= lo — ROB
// entries and the whole front-end pipe — returning issue-queue slots,
// registers, pending-miss counts and producer-ring slots to the shared
// pools, restoring the RAS to the oldest reclaimed snapshot, and bumping
// the squash generation so stale calendar events can never validate against
// entries dispatched later. The caller truncates the ROB window itself
// (rollbackTo for a partial squash, drain for a full one).
func (m *Machine) reclaim(t int, lo uint64) {
	ts := &m.threads[t]
	r := m.rob[t]
	ts.gen++

	rasRestore := int32(-1)
	for ds := r.tailSeq; ds > lo; ds-- {
		e := r.at(ds - 1)
		m.st.Threads[t].Squashed++
		if e.state == stateDispatched && e.iqQueue >= 0 {
			q := m.iqs[e.iqQueue]
			if ent := &q.entries[e.iqIdx]; ent.used && ent.stamp == e.iqStamp {
				q.freeEntry(e.iqIdx)
				m.iqCount[t][e.iqQueue]--
			}
		}
		if e.destPhys >= 0 {
			ri := regIndex(e.destClass)
			m.regs[ri].release(e.destPhys)
			m.regCount[t][ri]--
		}
		if e.l1Counted {
			m.pendingL1D[t]--
		}
		if e.l2Counted {
			m.pendingL2[t]--
		}
		if !e.u.WrongPath {
			pe := &m.prod[t][e.u.Index&prodRingMask]
			if pe.idx == e.u.Index {
				pe.idx = ^uint64(0)
			}
		}
		m.robUsed--
		m.robCount[t]--
		rasRestore = e.rasTop // last visited = oldest squashed
	}

	fe := &m.fe[t]
	if fe.count > 0 {
		m.st.Threads[t].Squashed += uint64(fe.count)
		if rasRestore < 0 {
			rasRestore = fe.peek().rasTop
		}
		fe.clear()
	}
	if rasRestore >= 0 {
		m.pred.SetRASTop(t, rasRestore)
	}
	ts.wrongPath = false
}

// squashAfter removes every in-flight uop of thread t younger than dseq
// `after` — back-end entries and the whole front-end pipe — releasing their
// resources, then redirects fetch to canonical stream index redirectIdx.
// It implements both branch-misprediction recovery and the FLUSH policy's
// load squash.
func (m *Machine) squashAfter(t int, after uint64, redirectIdx uint64) {
	m.reclaim(t, after+1)
	m.rob[t].rollbackTo(after)
	m.threads[t].fetchIdx = redirectIdx
}

// FlushThread implements the FLUSH response action: it finds thread t's
// oldest load with a detected in-flight L2 miss, squashes every younger uop
// (their resources return to the shared pools) and rewinds fetch to just
// after the load. The caller (the FLUSH/FLUSH++ policy) keeps the thread
// fetch-gated until the miss is serviced. Returns false if no such load is
// in flight.
func (m *Machine) FlushThread(t int) bool {
	r := m.rob[t]
	for ds := r.headSeq; ds < r.tailSeq; ds++ {
		e := r.at(ds)
		if e.u.Class == isa.OpLoad && e.l2Counted && e.state == stateIssued && !e.u.WrongPath {
			if ds+1 == r.tailSeq && m.fe[t].empty() {
				return false // nothing younger to reclaim
			}
			m.squashAfter(t, ds, e.u.Index+1)
			m.st.Threads[t].Flushes++
			return true
		}
	}
	return false
}
