package cpu

import "dcra/internal/isa"

// iqEntry is one slot of an issue queue. Entries wait until their pending
// operand count drops to zero, then issue oldest-first.
type iqEntry struct {
	used    bool
	stamp   uint64 // unique allocation stamp, invalidates stale waiter refs
	thread  int16
	class   isa.OpClass
	pending int8
	age     uint64 // dispatch order, global across threads
	dseq    uint64 // position in the thread's ROB
	gen     uint32 // squash generation of the ROB entry
}

// readyRef is one node of the ready heap. The age snapshot taken at
// markReady time doubles as a validity check: a freed-and-reallocated entry
// gets a fresh age, so stale heap nodes are detected without bookkeeping.
type readyRef struct {
	age uint64
	idx int32
}

// issueQueue is a fixed-capacity pool of iqEntries with a free list and a
// ready min-heap ordered by age. The heap may contain stale nodes after
// squashes or issues; selectOldest pops them lazily, so every operation is
// O(log n) instead of the former full ready-list scan per issue slot.
type issueQueue struct {
	entries  []iqEntry
	freeList []int32
	ready    []readyRef // binary min-heap on age
	count    int
	stampGen uint64
}

func newIssueQueue(size int) *issueQueue {
	q := &issueQueue{
		entries:  make([]iqEntry, size),
		freeList: make([]int32, size),
		ready:    make([]readyRef, 0, size),
	}
	for i := range q.freeList {
		q.freeList[i] = int32(size - 1 - i)
	}
	return q
}

// full reports whether the queue has no free entries.
func (q *issueQueue) full() bool { return len(q.freeList) == 0 }

// alloc claims an entry; the caller fills the fields it returns.
func (q *issueQueue) alloc() (int32, *iqEntry) {
	n := len(q.freeList)
	idx := q.freeList[n-1]
	q.freeList = q.freeList[:n-1]
	q.stampGen++
	e := &q.entries[idx]
	*e = iqEntry{used: true, stamp: q.stampGen}
	q.count++
	return idx, e
}

// freeEntry releases an entry (issue or squash).
func (q *issueQueue) freeEntry(idx int32) {
	e := &q.entries[idx]
	if !e.used {
		return
	}
	e.used = false
	q.freeList = append(q.freeList, idx)
	q.count--
}

// markReady queues idx for issue selection. The entry's age must be final.
func (q *issueQueue) markReady(idx int32) {
	q.ready = append(q.ready, readyRef{age: q.entries[idx].age, idx: idx})
	i := len(q.ready) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q.ready[parent].age <= q.ready[i].age {
			break
		}
		q.ready[parent], q.ready[i] = q.ready[i], q.ready[parent]
		i = parent
	}
}

// stale reports whether a heap node no longer refers to a live ready entry
// (it issued, was squashed, or its slot was recycled).
func (q *issueQueue) stale(r readyRef) bool {
	e := &q.entries[r.idx]
	return !e.used || e.pending != 0 || e.age != r.age
}

// selectOldest returns the index of the oldest valid ready entry, or -1.
// Stale heap nodes are popped on the way; the returned entry stays at the
// heap root until the caller issues it (removeFromReady) — repeated calls
// per cycle implement multi-issue.
func (q *issueQueue) selectOldest() int32 {
	for len(q.ready) > 0 {
		if q.stale(q.ready[0]) {
			q.popRoot()
			continue
		}
		return q.ready[0].idx
	}
	return -1
}

// removeFromReady drops idx from the ready heap after it issues. The issued
// entry is always the heap root (issue selects via selectOldest), so this
// is a root pop; the linear fallback only guards against misuse.
func (q *issueQueue) removeFromReady(idx int32) {
	if len(q.ready) > 0 && q.ready[0].idx == idx {
		q.popRoot()
		return
	}
	for i, r := range q.ready {
		if r.idx == idx {
			q.deleteAt(i)
			return
		}
	}
}

// popRoot removes the heap root and restores heap order.
func (q *issueQueue) popRoot() { q.deleteAt(0) }

// deleteAt removes node i, re-establishing the heap invariant.
func (q *issueQueue) deleteAt(i int) {
	last := len(q.ready) - 1
	q.ready[i] = q.ready[last]
	q.ready = q.ready[:last]
	if i >= last {
		return
	}
	// Sift up (the moved node may be smaller than its new parent)...
	j := i
	for j > 0 {
		parent := (j - 1) / 2
		if q.ready[parent].age <= q.ready[j].age {
			break
		}
		q.ready[parent], q.ready[j] = q.ready[j], q.ready[parent]
		j = parent
	}
	if j != i {
		return
	}
	// ...or down.
	for {
		l, r := 2*j+1, 2*j+2
		small := j
		if l < last && q.ready[l].age < q.ready[small].age {
			small = l
		}
		if r < last && q.ready[r].age < q.ready[small].age {
			small = r
		}
		if small == j {
			return
		}
		q.ready[j], q.ready[small] = q.ready[small], q.ready[j]
		j = small
	}
}

// reset restores the queue to its post-construction state — every entry
// free, the free list in original pop order, the ready heap empty, stamps
// rewound — without reallocating. A reset queue behaves bit-identically to a
// freshly built one.
func (q *issueQueue) reset() {
	clear(q.entries)
	q.freeList = q.freeList[:len(q.entries)]
	for i := range q.freeList {
		q.freeList[i] = int32(len(q.entries) - 1 - i)
	}
	q.ready = q.ready[:0]
	q.count = 0
	q.stampGen = 0
}

// squashThread frees all entries belonging to thread t with dseq > after.
// Ready-heap nodes of squashed entries go stale and are dropped lazily.
// Returns per-queue count removed so the caller can fix usage counters.
func (q *issueQueue) squashThread(t int, after uint64) int {
	removed := 0
	for i := range q.entries {
		e := &q.entries[i]
		if e.used && int(e.thread) == t && e.dseq > after {
			q.freeEntry(int32(i))
			removed++
		}
	}
	return removed
}
