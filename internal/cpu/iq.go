package cpu

import "dcra/internal/isa"

// iqEntry is one slot of an issue queue. Entries wait until their pending
// operand count drops to zero, then issue oldest-first.
type iqEntry struct {
	used    bool
	stamp   uint64 // unique allocation stamp, invalidates stale waiter refs
	thread  int16
	class   isa.OpClass
	pending int8
	age     uint64 // dispatch order, global across threads
	dseq    uint64 // position in the thread's ROB
	gen     uint32 // squash generation of the ROB entry
}

// issueQueue is a fixed-capacity pool of iqEntries with a free list and a
// ready list. The ready list may contain stale indices after squashes; the
// issue scan validates entries before selecting them.
type issueQueue struct {
	entries  []iqEntry
	freeList []int32
	ready    []int32
	count    int
	stampGen uint64
}

func newIssueQueue(size int) *issueQueue {
	q := &issueQueue{
		entries:  make([]iqEntry, size),
		freeList: make([]int32, size),
		ready:    make([]int32, 0, size),
	}
	for i := range q.freeList {
		q.freeList[i] = int32(size - 1 - i)
	}
	return q
}

// full reports whether the queue has no free entries.
func (q *issueQueue) full() bool { return len(q.freeList) == 0 }

// alloc claims an entry; the caller fills the fields it returns.
func (q *issueQueue) alloc() (int32, *iqEntry) {
	n := len(q.freeList)
	idx := q.freeList[n-1]
	q.freeList = q.freeList[:n-1]
	q.stampGen++
	e := &q.entries[idx]
	*e = iqEntry{used: true, stamp: q.stampGen}
	q.count++
	return idx, e
}

// freeEntry releases an entry (issue or squash).
func (q *issueQueue) freeEntry(idx int32) {
	e := &q.entries[idx]
	if !e.used {
		return
	}
	e.used = false
	q.freeList = append(q.freeList, idx)
	q.count--
}

// markReady queues idx for issue selection.
func (q *issueQueue) markReady(idx int32) {
	q.ready = append(q.ready, idx)
}

// selectOldest scans the ready list, removes stale entries, and returns the
// index of the oldest valid ready entry, or -1. The caller issues it and
// calls freeEntry; repeated calls per cycle implement multi-issue.
func (q *issueQueue) selectOldest() int32 {
	best := int32(-1)
	var bestAge uint64
	w := 0
	for _, idx := range q.ready {
		e := &q.entries[idx]
		if !e.used || e.pending != 0 {
			continue // stale (squashed or already issued)
		}
		q.ready[w] = idx
		w++
		if best == -1 || e.age < bestAge {
			best = idx
			bestAge = e.age
		}
	}
	q.ready = q.ready[:w]
	return best
}

// removeFromReady drops idx from the ready list after it issues.
func (q *issueQueue) removeFromReady(idx int32) {
	for i, v := range q.ready {
		if v == idx {
			q.ready[i] = q.ready[len(q.ready)-1]
			q.ready = q.ready[:len(q.ready)-1]
			return
		}
	}
}

// squashThread frees all entries belonging to thread t with dseq > after.
// Returns per-queue count removed so the caller can fix usage counters.
func (q *issueQueue) squashThread(t int, after uint64) int {
	removed := 0
	for i := range q.entries {
		e := &q.entries[i]
		if e.used && int(e.thread) == t && e.dseq > after {
			q.freeEntry(int32(i))
			removed++
		}
	}
	return removed
}
