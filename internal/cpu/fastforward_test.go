package cpu

import (
	"reflect"
	"testing"
)

// TestFastForwardBitReproducible checks a run interleaving detailed and
// fast-forward execution is a pure function of the seed and call sequence:
// two same-seed machines driven identically end bit-identical. (Note the
// round-robin interleave realigns per call, so e.g. one 5000-uop jump and
// two 2500-uop jumps are NOT interchangeable — only identical call
// sequences are.)
func TestFastForwardBitReproducible(t *testing.T) {
	run := func() *Machine {
		m := newTestMachine(t, "gzip", "mcf", "art", "eon")
		m.Run(2_000)
		m.FastForward(2_500)
		m.Run(1_000)
		m.FastForwardBudgets([]uint64{1_000, 2_000, 3_000, 500})
		m.Run(2_000)
		return m
	}
	sa, sb := run().Stats(), run().Stats()
	if sa.Cycles != sb.Cycles || !reflect.DeepEqual(sa.Threads, sb.Threads) {
		t.Fatalf("same-seed fast-forward runs diverged:\n%s\nvs\n%s", sa, sb)
	}
	if sa.Threads[0].FastForwarded != 3_500 || sa.Threads[2].FastForwarded != 5_500 {
		t.Errorf("FastForwarded totals wrong: %+v", sa.Threads)
	}
}

// TestFastForwardMatchesDetailedStream checks fast-forward keeps threads on
// the canonical uop sequence: a machine that fast-forwards mid-run commits
// the same uop indices afterwards as one that ran detailed throughout.
func TestFastForwardMatchesDetailedStream(t *testing.T) {
	detailed := newTestMachine(t, "gzip", "mcf")
	detailed.Run(30_000)
	ff := newTestMachine(t, "gzip", "mcf")
	ff.Run(5_000)
	ff.FastForward(4_000)
	ff.Run(5_000)
	sd, sf := detailed.Stats(), ff.Stats()
	for i := range sf.Threads {
		total := sf.Threads[i].Committed + sf.Threads[i].FastForwarded
		if sf.Threads[i].FastForwarded != 4_000 {
			t.Errorf("thread %d: FastForwarded = %d, want 4000", i, sf.Threads[i].FastForwarded)
		}
		// The fast-forwarded machine cannot have advanced past what an
		// uninterrupted detailed run would reach given the same seed: both
		// walk one canonical stream, so positions stay comparable.
		if total == 0 || sd.Threads[i].Committed == 0 {
			t.Fatalf("thread %d starved (ff total %d, detailed %d)", i, total, sd.Threads[i].Committed)
		}
	}
}

// TestFastForwardBudgetsSkipsParked checks parked threads neither advance
// nor count fast-forwarded uops.
func TestFastForwardBudgetsSkipsParked(t *testing.T) {
	m := newTestMachine(t, "gzip", "mcf")
	m.Run(1_000)
	m.ParkThread(1)
	m.FastForwardBudgets([]uint64{2_000, 2_000})
	st := m.Stats()
	if st.Threads[0].FastForwarded != 2_000 {
		t.Errorf("active thread FastForwarded = %d, want 2000", st.Threads[0].FastForwarded)
	}
	if st.Threads[1].FastForwarded != 0 {
		t.Errorf("parked thread FastForwarded = %d, want 0", st.Threads[1].FastForwarded)
	}
}
