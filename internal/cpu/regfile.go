package cpu

// waiterRef identifies an issue-queue entry waiting on a physical register.
// The stamp detects stale references left behind by squashes: a wakeup only
// fires if the entry's allocation stamp still matches.
type waiterRef struct {
	queue int32
	idx   int32
	stamp uint64
}

// regFile models one physical register file (integer or FP) as a free list
// plus a ready scoreboard and per-register waiter lists.
//
// The allocatable pool holds only the *rename* registers: the architectural
// registers backing each thread's committed state are reserved off the top
// and never circulate, matching the paper's "physical = architectural x
// threads + rename" accounting.
type regFile struct {
	free    []int32
	ready   []bool
	waiters [][]waiterRef
}

// newRegFile builds a file with `rename` allocatable registers.
func newRegFile(rename int) *regFile {
	f := &regFile{
		free:    make([]int32, rename),
		ready:   make([]bool, rename),
		waiters: make([][]waiterRef, rename),
	}
	for i := range f.free {
		// Pop order is LIFO; seed so register 0 comes out first (cosmetic).
		f.free[i] = int32(rename - 1 - i)
	}
	return f
}

// available returns the number of free registers.
func (f *regFile) available() int { return len(f.free) }

// alloc pops a free register, marking it not-ready. ok is false when the
// pool is exhausted (the caller stalls dispatch).
func (f *regFile) alloc() (reg int32, ok bool) {
	n := len(f.free)
	if n == 0 {
		return -1, false
	}
	reg = f.free[n-1]
	f.free = f.free[:n-1]
	f.ready[reg] = false
	f.waiters[reg] = f.waiters[reg][:0]
	return reg, true
}

// release returns a register to the pool. Its value is architecturally
// committed (or squashed), so readiness is irrelevant until reallocation.
func (f *regFile) release(reg int32) {
	f.ready[reg] = true // consumers that already captured it see "ready"
	f.free = append(f.free, reg)
}

// markReady flips the scoreboard bit and returns the waiter list for the
// caller to process (stale refs are filtered by stamp at wake time). The
// backing array stays with the register for reuse — nilling it out here
// made every waiter chain reallocate from scratch, ~25% of all bytes
// allocated by a full experiment run. No waiter is added between this
// truncation and the caller finishing with the returned slice: addWaiter
// only runs during dispatch, behind an isReady check that now fails.
func (f *regFile) markReady(reg int32) []waiterRef {
	f.ready[reg] = true
	w := f.waiters[reg]
	f.waiters[reg] = w[:0]
	return w
}

// addWaiter registers an issue-queue entry to be woken when reg completes.
func (f *regFile) addWaiter(reg int32, w waiterRef) {
	f.waiters[reg] = append(f.waiters[reg], w)
}

// isReady reports whether reg has produced its value.
func (f *regFile) isReady(reg int32) bool { return f.ready[reg] }

// reset restores the file to its post-construction state — all registers
// free in the original pop order, scoreboard cleared, waiter chains
// truncated (their backing arrays stay with the register for reuse).
func (f *regFile) reset() {
	f.free = f.free[:len(f.ready)]
	for i := range f.free {
		f.free[i] = int32(len(f.free) - 1 - i)
	}
	clear(f.ready)
	for i := range f.waiters {
		f.waiters[i] = f.waiters[i][:0]
	}
}
