package cpu

// eventKind distinguishes scheduled pipeline events.
type eventKind uint8

const (
	// evComplete marks a uop finishing execution.
	evComplete eventKind = iota
	// evDetectL1 fires when an L1D miss becomes architecturally visible
	// (after the L1 lookup), incrementing the thread's pending counter.
	// Modelling the detection delay matters: STALL/FLUSH's weakness in the
	// paper is precisely that L2-miss detection "may be too late".
	evDetectL1
	// evDetectL2 fires when the L2 lookup identifies a main-memory miss.
	evDetectL2
)

// event schedules the completion of an in-flight uop. Squashed uops leave
// stale events behind; validity is re-checked against the ROB generation at
// delivery time, which is cheaper than heap removal.
type event struct {
	at     uint64
	thread int32
	kind   eventKind
	dseq   uint64
	gen    uint32
}

// eventHeap is a binary min-heap on completion time. A hand-rolled heap
// (rather than container/heap) keeps the hot path free of interface calls
// and allocations.
type eventHeap struct {
	es []event
}

func (h *eventHeap) len() int { return len(h.es) }

func (h *eventHeap) push(e event) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.es[parent].at <= h.es[i].at {
			break
		}
		h.es[parent], h.es[i] = h.es[i], h.es[parent]
		i = parent
	}
}

// peekAt returns the earliest completion time; ok is false when empty.
func (h *eventHeap) peekAt() (uint64, bool) {
	if len(h.es) == 0 {
		return 0, false
	}
	return h.es[0].at, true
}

func (h *eventHeap) pop() event {
	top := h.es[0]
	last := len(h.es) - 1
	h.es[0] = h.es[last]
	h.es = h.es[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l <= last-1 && h.es[l].at < h.es[small].at {
			small = l
		}
		if r <= last-1 && h.es[r].at < h.es[small].at {
			small = r
		}
		if small == i {
			break
		}
		h.es[i], h.es[small] = h.es[small], h.es[i]
		i = small
	}
	return top
}
