package cpu

// eventKind distinguishes scheduled pipeline events.
type eventKind uint8

const (
	// evComplete marks a uop finishing execution.
	evComplete eventKind = iota
	// evDetectL1 fires when an L1D miss becomes architecturally visible
	// (after the L1 lookup), incrementing the thread's pending counter.
	// Modelling the detection delay matters: STALL/FLUSH's weakness in the
	// paper is precisely that L2-miss detection "may be too late".
	evDetectL1
	// evDetectL2 fires when the L2 lookup identifies a main-memory miss.
	evDetectL2
)

// event schedules the completion of an in-flight uop. Squashed uops leave
// stale events behind; validity is re-checked against the ROB generation at
// delivery time, which is cheaper than removal.
type event struct {
	at     uint64
	thread int32
	kind   eventKind
	dseq   uint64
	gen    uint32
}

const (
	// eventRingSize bounds how far ahead an event may be scheduled while
	// staying O(1): the longest access chain (TLB penalty + L1 + L2 + main
	// memory + MSHR-full serialisation) stays under 2048 cycles for every
	// configuration the experiments sweep. Farther events spill into the
	// overflow list, which stays empty in practice.
	eventRingSize = 2048
	eventRingMask = eventRingSize - 1
)

// eventQueue is a calendar queue: one FIFO bucket per future cycle in a
// fixed ring. Push and pop are O(1) with zero steady-state allocation
// (bucket slices keep their capacity), replacing a binary heap whose
// sift-up/down was ~10% of simulation time. Within a cycle, events deliver
// in push order, which is deterministic.
type eventQueue struct {
	buckets  [][]event
	base     uint64 // all events at cycles < base have been delivered
	overflow []event
}

func newEventQueue() eventQueue {
	// Carve every bucket's initial capacity out of one contiguous block:
	// growing 2048 buckets individually from nil costs a few reallocations
	// each, which dominated the per-machine allocation count.
	const perBucket = 8
	backing := make([]event, eventRingSize*perBucket)
	buckets := make([][]event, eventRingSize)
	for i := range buckets {
		buckets[i] = backing[i*perBucket : i*perBucket : (i+1)*perBucket]
	}
	return eventQueue{buckets: buckets}
}

// reset drains the calendar back to its post-construction state, keeping
// every bucket's capacity.
func (q *eventQueue) reset() {
	for i := range q.buckets {
		q.buckets[i] = q.buckets[i][:0]
	}
	q.base = 0
	q.overflow = q.overflow[:0]
}

// push schedules e; e.at must be >= the current drain cycle.
func (q *eventQueue) push(e event) {
	if e.at-q.base < eventRingSize {
		b := e.at & eventRingMask
		q.buckets[b] = append(q.buckets[b], e)
		return
	}
	q.overflow = append(q.overflow, e)
}

// ripen moves overflow events that now fit the ring horizon into their
// buckets. Called as base advances; overflow is empty in practice.
func (q *eventQueue) ripen() {
	w := 0
	for _, e := range q.overflow {
		if e.at-q.base < eventRingSize {
			b := e.at & eventRingMask
			q.buckets[b] = append(q.buckets[b], e)
			continue
		}
		q.overflow[w] = e
		w++
	}
	q.overflow = q.overflow[:w]
}
