package cpu

import (
	"testing"
	"testing/quick"

	"dcra/internal/config"
	"dcra/internal/isa"
	"dcra/internal/trace"
)

// checkConservation asserts every resource counter matches structural
// occupancy and nothing leaked.
func checkConservation(t *testing.T, m *Machine, context string) {
	t.Helper()
	for q := 0; q < 3; q++ {
		sum := 0
		for tid := 0; tid < m.nt; tid++ {
			if m.iqCount[tid][q] < 0 {
				t.Fatalf("%s: negative iqCount[%d][%d]", context, tid, q)
			}
			sum += m.iqCount[tid][q]
		}
		if sum != m.iqs[q].count {
			t.Fatalf("%s: queue %d per-thread sum %d != pool %d", context, q, sum, m.iqs[q].count)
		}
	}
	for c := 0; c < 2; c++ {
		used := 0
		for tid := 0; tid < m.nt; tid++ {
			if m.regCount[tid][c] < 0 {
				t.Fatalf("%s: negative regCount", context)
			}
			used += m.regCount[tid][c]
		}
		if m.regs[c].available()+used != m.cfg.RenameRegs(m.nt) {
			t.Fatalf("%s: reg class %d leaked: free %d + used %d != %d",
				context, c, m.regs[c].available(), used, m.cfg.RenameRegs(m.nt))
		}
	}
	robSum := 0
	for tid := 0; tid < m.nt; tid++ {
		if m.robCount[tid] != m.rob[tid].count() {
			t.Fatalf("%s: robCount[%d]=%d != ring %d", context, tid, m.robCount[tid], m.rob[tid].count())
		}
		robSum += m.robCount[tid]
	}
	if robSum != m.robUsed {
		t.Fatalf("%s: rob leaked: %d != %d", context, robSum, m.robUsed)
	}
	for tid := 0; tid < m.nt; tid++ {
		if m.pendingL1D[tid] < 0 || m.pendingL2[tid] < 0 {
			t.Fatalf("%s: negative pending counters t%d: %d/%d",
				context, tid, m.pendingL1D[tid], m.pendingL2[tid])
		}
	}
}

// TestConservationUnderFlush stresses the squash paths: FLUSH squashes
// plus mispredict recovery must never leak or double-free resources.
func TestConservationUnderFlush(t *testing.T) {
	pol := flushLike{}
	profiles := []trace.Profile{trace.MustProfile("mcf"), trace.MustProfile("art")}
	m, err := New(config.Baseline(), profiles, pol, 0xabc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		m.Run(500)
		checkConservation(t, m, "flush stress")
	}
	if m.st.Threads[0].Flushes == 0 && m.st.Threads[1].Flushes == 0 {
		t.Fatal("flush stress never flushed")
	}
}

// flushLike triggers FlushThread aggressively (in-package FLUSH clone that
// flushes on every tick with a pending L2 miss, harsher than the policy).
type flushLike struct{}

func (flushLike) Name() string { return "flush-stress" }
func (flushLike) Tick(m *Machine) {
	for t := 0; t < m.NumThreads(); t++ {
		if m.PendingL2(t) > 0 {
			m.FlushThread(t)
		}
	}
}
func (flushLike) Rank(m *Machine, ts []int)   { RankByICount(m, ts) }
func (flushLike) Gate(m *Machine, t int) bool { return m.PendingL2(t) > 0 }

// TestCommittedStreamIsSequential verifies the fundamental squash/replay
// invariant: each thread commits exactly its canonical uop sequence, in
// order, no gaps and no duplicates, regardless of mispredicts and flushes.
func TestCommittedStreamIsSequential(t *testing.T) {
	profiles := []trace.Profile{trace.MustProfile("mcf"), trace.MustProfile("gzip")}
	m, err := New(config.Baseline(), profiles, flushLike{}, 0x77)
	if err != nil {
		t.Fatal(err)
	}
	next := make([]uint64, m.nt)
	for i := 0; i < 40_000; i++ {
		m.step()
		// Inspect commits through the ROB head movement: recompute from
		// stats and the stream release point instead. The stream's base
		// only advances on commit, so headSeq-vs-committed consistency is
		// the cheap proxy:
		for tid := 0; tid < m.nt; tid++ {
			com := m.st.Threads[tid].Committed
			if com < next[tid] {
				t.Fatalf("committed count went backwards on thread %d", tid)
			}
			next[tid] = com
		}
	}
	for tid := 0; tid < m.nt; tid++ {
		if m.st.Threads[tid].Committed == 0 {
			t.Fatalf("thread %d committed nothing", tid)
		}
		// The stream's release point equals the number of committed uops:
		// exactly the canonical prefix has retired.
		if got := m.threads[tid].stream.Frontier(); got < m.st.Threads[tid].Committed {
			t.Fatalf("thread %d frontier %d < committed %d", tid, got, m.st.Threads[tid].Committed)
		}
	}
}

// TestWrongPathNeverCommits: wrong-path uops must be squashed, not retired.
func TestWrongPathNeverCommits(t *testing.T) {
	profiles := []trace.Profile{trace.MustProfile("gcc")}
	m, err := New(config.Baseline(), profiles, icountPolicy{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30_000; i++ {
		m.step()
		for tid := 0; tid < m.nt; tid++ {
			if e := m.rob[tid].head(); e != nil && e.state == stateDone && e.u.WrongPath {
				// A done wrong-path uop at the head would commit next
				// cycle — the resolution squash must have removed it.
				t.Fatal("wrong-path uop reached ROB head in done state")
			}
		}
	}
	if m.st.Threads[0].WrongPath == 0 {
		t.Fatal("no wrong-path fetch observed — test vacuous")
	}
}

// TestPropertyConservationAcrossSeeds runs short simulations with random
// seeds and thread mixes, checking conservation at the end of each.
func TestPropertyConservationAcrossSeeds(t *testing.T) {
	names := trace.Names()
	err := quick.Check(func(seed uint64, aRaw, bRaw uint8) bool {
		a := names[int(aRaw)%len(names)]
		b := names[int(bRaw)%len(names)]
		m, err := New(config.Baseline(),
			[]trace.Profile{trace.MustProfile(a), trace.MustProfile(b)},
			icountPolicy{}, seed)
		if err != nil {
			return false
		}
		m.Run(4_000)
		for q := 0; q < 3; q++ {
			sum := 0
			for tid := 0; tid < 2; tid++ {
				sum += m.iqCount[tid][q]
			}
			if sum != m.iqs[q].count {
				return false
			}
		}
		used := 0
		for tid := 0; tid < 2; tid++ {
			used += m.regCount[tid][0]
		}
		return m.regs[0].available()+used == m.cfg.RenameRegs(2)
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSquashRestoresFetchIndex: after a flush, fetch resumes exactly after
// the offending load and eventually recommits the same uops.
func TestSquashRestoresFetchIndex(t *testing.T) {
	profiles := []trace.Profile{trace.MustProfile("mcf")}
	m, err := New(config.Baseline(), profiles, icountPolicy{}, 0x31)
	if err != nil {
		t.Fatal(err)
	}
	// Run until a flushable L2 miss exists, flush, then ensure progress.
	flushed := false
	for i := 0; i < 60_000 && !flushed; i++ {
		m.step()
		if m.PendingL2(0) > 0 {
			flushed = m.FlushThread(0)
		}
	}
	if !flushed {
		t.Skip("no flushable window materialised (acceptable with a short run)")
	}
	before := m.st.Threads[0].Committed
	m.Run(20_000)
	if m.st.Threads[0].Committed <= before {
		t.Fatal("no forward progress after flush")
	}
	checkConservation(t, m, "post-flush")
}

// TestICacheStallReleases: an I-cache miss blocks fetch only temporarily.
func TestICacheStallReleases(t *testing.T) {
	cfg := config.Baseline()
	m, err := New(cfg, []trace.Profile{trace.MustProfile("gcc")}, icountPolicy{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(30_000)
	if m.st.Threads[0].Fetched == 0 {
		t.Fatal("fetch never recovered from I-cache stalls")
	}
}

// TestPerfectCachesFaster: Figure 2's premise — a perfect L1D must not be
// slower than the real hierarchy.
func TestPerfectCachesFaster(t *testing.T) {
	run := func(perfect bool) float64 {
		cfg := config.Baseline()
		cfg.PerfectDCache = perfect
		m, err := New(cfg, []trace.Profile{trace.MustProfile("swim")}, icountPolicy{}, 21)
		if err != nil {
			t.Fatal(err)
		}
		m.Run(60_000)
		return m.Stats().Threads[0].IPC(m.Stats().Cycles)
	}
	real, perfect := run(false), run(true)
	if perfect < real {
		t.Fatalf("perfect L1D slower than real: %.3f < %.3f", perfect, real)
	}
}

// TestStatsSanity cross-checks the stats relationships after a long run.
func TestStatsSanity(t *testing.T) {
	m := newTestMachine(t, "twolf", "gap")
	m.Run(50_000)
	st := m.Stats()
	for i := range st.Threads {
		ts := &st.Threads[i]
		if ts.Committed > ts.Dispatched || ts.Dispatched > ts.Fetched {
			t.Errorf("thread %d: committed %d > dispatched %d > fetched %d impossible",
				i, ts.Committed, ts.Dispatched, ts.Fetched)
		}
		if ts.BranchMispred > ts.Branches {
			t.Errorf("thread %d: more mispredicts than branches", i)
		}
		if ts.L2DMisses > ts.L1DMisses {
			t.Errorf("thread %d: more L2 misses than L1 misses", i)
		}
		if ts.Issued > ts.Dispatched {
			t.Errorf("thread %d: issued %d > dispatched %d", i, ts.Issued, ts.Dispatched)
		}
	}
	if st.Cycles != 50_000 {
		t.Errorf("cycles %d, want 50000", st.Cycles)
	}
}

// TestUopClassesReachFUs: every op class must flow through the pipeline.
func TestUopClassesReachFUs(t *testing.T) {
	m := newTestMachine(t, "swim") // FP benchmark exercises all classes
	m.Run(40_000)
	st := &m.Stats().Threads[0]
	if st.Loads == 0 || st.Stores == 0 || st.Branches == 0 {
		t.Fatalf("class starved: loads=%d stores=%d branches=%d", st.Loads, st.Stores, st.Branches)
	}
	_ = isa.OpFPALU // FP compute is implied by swim's profile mix
}
