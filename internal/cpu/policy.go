package cpu

import "dcra/internal/isa"

// Policy is the decision interface the pipeline consults every cycle. It
// subsumes both classic instruction-fetch policies (which only rank threads
// and gate fetch) and resource allocation policies like DCRA (which also
// observe and bound per-thread resource usage through the Machine's
// counters).
//
// Implementations live in internal/policy and internal/core; the interface
// is defined here, on the consumer side, so the pipeline carries no
// dependency on any particular policy.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string

	// Tick runs once per cycle after dispatch and before fetch. Policies
	// use it to refresh classifications, trigger flushes, or recompute
	// allocation limits.
	Tick(m *Machine)

	// Rank orders the candidate thread IDs in ts by descending fetch
	// priority, in place.
	Rank(m *Machine, ts []int)

	// Gate reports whether thread t must not fetch this cycle.
	Gate(m *Machine, t int) bool
}

// RankByICount orders ts ascending by the ICOUNT statistic (fewest pre-issue
// instructions first), the fetch priority shared by every policy in the
// paper except ROUND-ROBIN. Ties break by thread ID for determinism.
func RankByICount(m *Machine, ts []int) {
	// Insertion sort: ts has at most a handful of hardware contexts.
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0; j-- {
			a, b := ts[j-1], ts[j]
			if m.ICount(a) > m.ICount(b) || (m.ICount(a) == m.ICount(b) && a > b) {
				ts[j-1], ts[j] = b, a
			} else {
				break
			}
		}
	}
}

// Partitioner is implemented by policies that impose hard per-thread caps on
// shared resources, enforced by the dispatch stage (SRA). Cap returns the
// maximum number of entries of r thread t may hold; values <= 0 mean
// "unlimited".
type Partitioner interface {
	Cap(m *Machine, t int, r Resource) int
}

// DispatchCapper is an optional refinement of Partitioner for policies whose
// cap enforcement can be switched off by construction (DCRA enforces at fetch
// only unless the dispatch-enforcement ablation is on). When EnforcesCaps
// reports false, every Cap call would return 0 ("unlimited") for the life of
// the policy, so the machine drops the partitioner at bind time and dispatch
// skips both the per-cycle cap hoist and the per-uop cap checks —
// observationally identical, measurably cheaper.
type DispatchCapper interface {
	Partitioner
	EnforcesCaps() bool
}

// FetchObserver is implemented by policies that react to individual fetched
// uops (PDG predicts L1 misses at fetch time).
type FetchObserver interface {
	UopFetched(m *Machine, t int, u *isa.Uop)
}

// LoadObserver is implemented by policies that learn from resolved loads
// (PDG trains its miss predictor; FLUSH++ could track miss behaviour).
type LoadObserver interface {
	LoadResolved(m *Machine, t int, pc uint64, l1Miss, l2Miss bool)
}
