// Package cpu implements the simulated SMT out-of-order core: an 8-wide,
// 12-stage pipeline with three shared issue queues, shared physical register
// files, a shared reorder buffer, functional units, branch prediction and a
// cache hierarchy — the substrate on which the paper's fetch and resource
// allocation policies run.
package cpu

import "fmt"

// Resource enumerates the shared resources that allocation policies control.
// The first five are the paper's DCRA-managed resources; the ROB is included
// so static partitioning (SRA) can cap it as well.
type Resource int

// Shared resources.
const (
	RIntIQ Resource = iota
	RFPIQ
	RLSIQ
	RIntRegs
	RFPRegs
	RROB
	NumResources
)

var resourceNames = [...]string{"intIQ", "fpIQ", "lsIQ", "intRegs", "fpRegs", "rob"}

func (r Resource) String() string {
	if r >= 0 && int(r) < len(resourceNames) {
		return resourceNames[r]
	}
	return fmt.Sprintf("Resource(%d)", int(r))
}

// DCRAResources lists the five resources DCRA's sharing model manages.
var DCRAResources = [...]Resource{RIntIQ, RFPIQ, RLSIQ, RIntRegs, RFPRegs}

// IsFP reports whether the resource belongs to the floating-point subsystem
// (the paper tracks activity only for FP resources).
func (r Resource) IsFP() bool { return r == RFPIQ || r == RFPRegs }
