package cpu

import "dcra/internal/isa"

// fetch runs the front end for one cycle: the policy ranks threads, up to
// FetchMaxTh threads share the FetchWidth slots (ICOUNT2.8-style), and each
// thread fetches sequentially until a taken branch, an I-cache line
// boundary, a full front-end pipe, or the width limit.
func (m *Machine) fetch() {
	m.rankBuf = m.rankBuf[:0]
	for t := 0; t < m.nt; t++ {
		m.rankBuf = append(m.rankBuf, t)
	}
	m.pol.Rank(m, m.rankBuf)
	m.fetchRR = (m.fetchRR + 1) % m.nt

	budget := m.cfg.FetchWidth
	threadsUsed := 0
	for _, t := range m.rankBuf {
		if budget == 0 || threadsUsed == m.cfg.FetchMaxTh {
			break
		}
		ts := &m.threads[t]
		if ts.parked {
			continue
		}
		if ts.icacheReadyAt > m.cycle || m.fe[t].full() {
			continue
		}
		if m.pol.Gate(m, t) {
			m.st.Threads[t].FetchStalled++
			continue
		}
		n := m.fetchThread(t, budget)
		if n > 0 {
			budget -= n
			threadsUsed++
		}
	}
}

// fetchThread fetches up to max uops from thread t's current path.
func (m *Machine) fetchThread(t, max int) int {
	ts := &m.threads[t]
	fe := &m.fe[t]

	var pc uint64
	if ts.wrongPath {
		pc = ts.wpPC
	} else {
		pc = ts.stream.At(ts.fetchIdx).PC
	}
	lat, miss := m.hier.AccessI(pc, m.cycle)
	if miss {
		ts.icacheReadyAt = m.cycle + uint64(lat)
		m.st.Threads[t].L1IMisses++
		return 0
	}

	line := pc >> 6
	readyAt := m.cycle + uint64(m.cfg.FrontEndDepth)
	n := 0
	for n < max && !fe.full() {
		if ts.wrongPath {
			u := ts.stream.WrongPath(ts.wpPC)
			if u.PC>>6 != line {
				break
			}
			ts.wpPC = ts.stream.NextWrongPC(&u)
			fe.push(feEntry{u: u, readyAt: readyAt, rasTop: m.pred.RASTop(t)})
			m.st.Threads[t].Fetched++
			m.st.Threads[t].WrongPath++
			n++
			if u.Class == isa.OpBranch && u.Taken {
				break // taken branch ends the fetch group, wrong path included
			}
			continue
		}

		// Work through a pointer into the stream's retained window: copying
		// the uop into a local that is later passed to interface methods
		// (Predict, UopFetched) forces a heap allocation per fetched uop —
		// formerly ~70% of all bytes allocated by a full experiment suite.
		// The pointer stays valid through this iteration; the next At call
		// (which may grow the window) happens only after the copy into the
		// front-end ring below.
		u := ts.stream.At(ts.fetchIdx)
		if u.PC>>6 != line {
			break
		}
		rasTop := m.pred.RASTop(t)
		mispredicted := false
		predTaken := false
		var predTarget uint64
		targetKnown := false
		if u.Class == isa.OpBranch {
			pr := m.pred.Predict(t, u)
			predTaken, predTarget, targetKnown = pr.Taken, pr.Target, pr.TargetKnown
			switch {
			case predTaken != u.Taken:
				mispredicted = true
				m.st.Threads[t].MispredDir++
			case predTaken && u.Taken && (!targetKnown || predTarget != u.Target):
				mispredicted = true
				m.st.Threads[t].MispredTarget++
			}
		}
		fe.push(feEntry{u: *u, readyAt: readyAt, mispredicted: mispredicted, rasTop: rasTop})
		ts.fetchIdx++
		m.st.Threads[t].Fetched++
		if m.fetchObs != nil {
			m.fetchObs.UopFetched(m, t, u)
		}
		n++

		if u.Class == isa.OpBranch {
			if mispredicted {
				// Continue down the predicted (wrong) path next cycle.
				ts.wrongPath = true
				if predTaken && targetKnown {
					ts.wpPC = predTarget
				} else {
					ts.wpPC = u.PC + 4
				}
				break
			}
			if predTaken {
				break // cannot fetch past a taken branch in the same cycle
			}
		}
	}
	return n
}
