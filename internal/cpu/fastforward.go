package cpu

import "dcra/internal/isa"

// This file implements the functional fast-forward path behind SMARTS-style
// sampled simulation (internal/sample): advance a thread's canonical stream
// by committed-uop count while exercising only the long-lived
// microarchitectural state that carries across measurement windows — cache
// and TLB contents and the branch predictor's tables — and skipping the
// detailed front-end/dispatch/issue/commit pipeline entirely.
//
// Determinism is the same contract as everywhere else: fast-forward consumes
// the identical canonical uop sequence the detailed pipeline would commit
// (wrong-path fetch never advances the canonical cursor), so two same-seed
// runs with identical fast-forward schedules are bit-identical.

// nextCommitIndex returns the canonical stream index of thread t's oldest
// in-flight uop — the uop the thread would commit next — falling back to the
// fetch cursor when nothing canonical is in flight. Wrong-path entries carry
// no canonical index and are skipped.
func (m *Machine) nextCommitIndex(t int) uint64 {
	r := m.rob[t]
	for ds := r.headSeq; ds < r.tailSeq; ds++ {
		if e := r.at(ds); !e.u.WrongPath {
			return e.u.Index
		}
	}
	fe := &m.fe[t]
	for i := 0; i < fe.count; i++ {
		if u := &fe.ring[(fe.head+i)&fe.mask].u; !u.WrongPath {
			return u.Index
		}
	}
	return m.threads[t].fetchIdx
}

// FastForwardThread functionally advances thread t by n committed uops.
// In-flight state is drained first (squashed back to the commit point, the
// fetch cursor rewound to the next-to-commit uop), then each skipped uop
// touches the I-cache once per line, trains the branch predictor, and
// touches the data hierarchy for loads and stores. Timing state — cycle
// count, bank ports, MSHRs, event calendar — does not advance; the next
// detailed window resumes from warm contents and an empty pipeline.
//
// Statistics other than FastForwarded and the drain's Squashed count are
// untouched: fast-forwarded uops are not Committed.
func (m *Machine) FastForwardThread(t int, n uint64) {
	m.ffRewind(t)
	m.ffAdvance(t, n)
}

// ffRewind squashes thread t's in-flight state back to the commit point and
// rewinds the fetch cursor to the next-to-commit uop.
func (m *Machine) ffRewind(t int) {
	idx := m.nextCommitIndex(t)
	m.drainThread(t)
	m.threads[t].fetchIdx = idx
	m.threads[t].icacheReadyAt = 0
}

// ffAdvance walks n canonical uops of a rewound thread through the
// functional-warming path. Uops already synthesised (between the commit
// point and the generation frontier) are consumed from the retained window;
// past the frontier Stream.SkipUop takes over, generating each uop without
// retention — identical draws, so the canonical stream is preserved
// bit-for-bit, minus the buffer bookkeeping.
func (m *Machine) ffAdvance(t int, n uint64) {
	ts := &m.threads[t]
	stream := ts.stream
	lastLine := ^uint64(0)
	lastData := ^uint64(0)
	var scratch isa.Uop
	for i := uint64(0); i < n; i++ {
		u := &scratch
		if ts.fetchIdx < stream.Frontier() {
			u = stream.At(ts.fetchIdx)
			ts.fetchIdx++
			stream.Release(ts.fetchIdx)
		} else {
			stream.SkipUop(&scratch)
			ts.fetchIdx++
		}
		if line := u.PC >> 6; line != lastLine {
			m.hier.TouchI(u.PC)
			lastLine = line
		}
		switch u.Class {
		case isa.OpBranch:
			m.pred.Predict(t, u)
		case isa.OpLoad, isa.OpStore:
			// Back-to-back accesses to one line (sequential walks) collapse
			// into a single touch; the skipped re-touches would only refresh
			// an already-MRU LRU stamp.
			if line := u.Addr >> 6; line != lastData {
				m.hier.TouchD(u.Addr)
				lastData = line
			}
		}
	}
	m.st.Threads[t].FastForwarded += n
}

// ffChunk is the round-robin quantum of a multi-thread fast-forward: threads
// advance in interleaved chunks so the shared caches see all threads'
// footprints mingled, as concurrent detailed execution would leave them. A
// thread-at-a-time walk would let the last thread's working set evict the
// others' lines before every measurement window, biasing sampled IPC low.
const ffChunk = 128

// FastForward advances every non-parked thread by n committed uops,
// interleaved in ffChunk-uop round-robin quanta. The schedule is a pure
// function of (n, thread count), so same-seed sampled runs reproduce
// bit-identically.
func (m *Machine) FastForward(n uint64) {
	rem := m.ffBuf[:0]
	for t := 0; t < m.nt; t++ {
		rem = append(rem, n)
	}
	m.ffRun(rem)
}

// FastForwardBudgets advances thread t by budgets[t] committed uops (parked
// threads and missing entries skip nothing), interleaved like FastForward so
// threads with unequal budgets — e.g. rate-proportional sampling gaps —
// still mingle their cache footprints. Every non-parked thread is rewound to
// its commit point even on a zero budget, so the machine restarts uniformly.
// The schedule is a pure function of the budget vector, keeping same-seed
// sampled runs bit-identical.
func (m *Machine) FastForwardBudgets(budgets []uint64) {
	rem := m.ffBuf[:0]
	for t := 0; t < m.nt; t++ {
		b := uint64(0)
		if t < len(budgets) {
			b = budgets[t]
		}
		rem = append(rem, b)
	}
	m.ffRun(rem)
}

// ffRun rewinds every non-parked thread and walks the remaining budgets in
// interleaved ffChunk-uop round-robin quanta. rem aliases the machine's
// scratch buffer and is consumed.
func (m *Machine) ffRun(rem []uint64) {
	var total uint64
	for t := 0; t < m.nt; t++ {
		if m.threads[t].parked {
			rem[t] = 0
			continue
		}
		m.ffRewind(t)
		total += rem[t]
	}
	for total > 0 {
		for t := 0; t < m.nt; t++ {
			step := rem[t]
			if step == 0 {
				continue
			}
			if step > ffChunk {
				step = ffChunk
			}
			m.ffAdvance(t, step)
			rem[t] -= step
			total -= step
		}
	}
}
