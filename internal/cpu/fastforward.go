package cpu

import "dcra/internal/isa"

// This file implements the functional fast-forward path behind SMARTS-style
// sampled simulation (internal/sample): advance a thread's canonical stream
// by committed-uop count while exercising only the long-lived
// microarchitectural state that carries across measurement windows — cache
// and TLB contents and the branch predictor's tables — and skipping the
// detailed front-end/dispatch/issue/commit pipeline entirely.
//
// Determinism is the same contract as everywhere else: fast-forward consumes
// the identical canonical uop sequence the detailed pipeline would commit
// (wrong-path fetch never advances the canonical cursor), so two same-seed
// runs with identical fast-forward schedules are bit-identical.

// nextCommitIndex returns the canonical stream index of thread t's oldest
// in-flight uop — the uop the thread would commit next — falling back to the
// fetch cursor when nothing canonical is in flight. Wrong-path entries carry
// no canonical index and are skipped.
func (m *Machine) nextCommitIndex(t int) uint64 {
	r := m.rob[t]
	for ds := r.headSeq; ds < r.tailSeq; ds++ {
		if e := r.at(ds); !e.u.WrongPath {
			return e.u.Index
		}
	}
	fe := &m.fe[t]
	for i := 0; i < fe.count; i++ {
		if u := &fe.ring[(fe.head+i)&fe.mask].u; !u.WrongPath {
			return u.Index
		}
	}
	return m.threads[t].fetchIdx
}

// FastForwardThread functionally advances thread t by n committed uops.
// In-flight state is drained first (squashed back to the commit point, the
// fetch cursor rewound to the next-to-commit uop), then each skipped uop
// touches the I-cache once per line, trains the branch predictor, and
// touches the data hierarchy for loads and stores. Timing state — cycle
// count, bank ports, MSHRs, event calendar — does not advance; the next
// detailed window resumes from warm contents and an empty pipeline.
//
// Statistics other than FastForwarded and the drain's Squashed count are
// untouched: fast-forwarded uops are not Committed.
func (m *Machine) FastForwardThread(t int, n uint64) {
	m.ffRewind(t)
	m.ffAdvance(t, n)
}

// ffRewind squashes thread t's in-flight state back to the commit point and
// rewinds the fetch cursor to the next-to-commit uop.
func (m *Machine) ffRewind(t int) {
	idx := m.nextCommitIndex(t)
	m.drainThread(t)
	m.threads[t].fetchIdx = idx
	m.threads[t].icacheReadyAt = 0
	m.threads[t].ffLastLine = ^uint64(0)
	m.threads[t].ffLastData = ^uint64(0)
}

// ffAdvance walks n canonical uops of a rewound thread through the
// functional-warming path. Uops already synthesised (between the commit
// point and the generation frontier) are consumed from the retained window;
// past the frontier Stream.SkipUop takes over, generating each uop without
// retention — identical draws, so the canonical stream is preserved
// bit-for-bit, minus the buffer bookkeeping.
func (m *Machine) ffAdvance(t int, n uint64) {
	ts := &m.threads[t]
	stream := ts.stream
	// The same-line collapse cursors live in the thread state so the
	// suppression carries across interleave quanta: a sequential walk that
	// straddles a quantum boundary still collapses to one touch per line.
	// (Another thread may have touched the hierarchy in between, but a
	// re-touch would only refresh a near-MRU LRU stamp — the same argument
	// that justifies the collapse within a quantum.)
	lastLine := ts.ffLastLine
	lastData := ts.ffLastData
	var scratch isa.Uop
	for i := uint64(0); i < n; i++ {
		u := &scratch
		if ts.fetchIdx < stream.Frontier() {
			u = stream.At(ts.fetchIdx)
			ts.fetchIdx++
			stream.Release(ts.fetchIdx)
		} else {
			stream.SkipUopWarm(&scratch)
			ts.fetchIdx++
		}
		if line := u.PC >> 6; line != lastLine {
			m.hier.TouchI(u.PC)
			lastLine = line
		}
		switch u.Class {
		case isa.OpBranch:
			m.pred.Predict(t, u)
		case isa.OpLoad, isa.OpStore:
			// Back-to-back accesses to one line (sequential walks) collapse
			// into a single touch; the skipped re-touches would only refresh
			// an already-MRU LRU stamp.
			if line := u.Addr >> 6; line != lastData {
				m.hier.TouchD(u.Addr)
				lastData = line
			}
		}
	}
	ts.ffLastLine = lastLine
	ts.ffLastData = lastData
	m.st.Threads[t].FastForwarded += n
}

// ffSkim advances thread t's canonical stream by n uops with no functional
// warming at all: the stream cursor and its RNG state move (identical draws,
// so uop N keeps identical content), but caches, TLBs and the predictor see
// nothing. This is the warm-tail bulk path — cache state is neither refreshed
// nor perturbed, it simply ages in place until the warm tail re-trains
// recency right before the measurement window.
func (m *Machine) ffSkim(t int, n uint64) {
	ts := &m.threads[t]
	stream := ts.stream
	if ts.fetchIdx < stream.Frontier() {
		// Consume what the detailed pipeline already synthesised first.
		k := stream.Frontier() - ts.fetchIdx
		if k > n {
			k = n
		}
		ts.fetchIdx += k
		stream.Release(ts.fetchIdx)
		n -= k
		m.st.Threads[t].FastForwarded += k
	}
	if n > 0 {
		var scratch isa.Uop
		stream.SkipUops(n, &scratch)
		ts.fetchIdx += n
		m.st.Threads[t].FastForwarded += n
	}
}

// ffChunk is the round-robin quantum of a multi-thread fast-forward: threads
// advance in interleaved chunks so the shared caches see all threads'
// footprints mingled, as concurrent detailed execution would leave them. A
// thread-at-a-time walk would let the last thread's working set evict the
// others' lines before every measurement window, biasing sampled IPC low.
const ffChunk = 128

// FastForward advances every non-parked thread by n committed uops,
// interleaved in ffChunk-uop round-robin quanta. The schedule is a pure
// function of (n, thread count), so same-seed sampled runs reproduce
// bit-identically.
func (m *Machine) FastForward(n uint64) {
	rem := m.ffBuf[:0]
	for t := 0; t < m.nt; t++ {
		rem = append(rem, n)
	}
	m.ffRun(rem)
}

// FastForwardBudgets advances thread t by budgets[t] committed uops (parked
// threads and missing entries skip nothing), interleaved like FastForward so
// threads with unequal budgets — e.g. rate-proportional sampling gaps —
// still mingle their cache footprints. Every non-parked thread is rewound to
// its commit point even on a zero budget, so the machine restarts uniformly.
// The schedule is a pure function of the budget vector, keeping same-seed
// sampled runs bit-identical.
func (m *Machine) FastForwardBudgets(budgets []uint64) {
	rem := m.ffBuf[:0]
	for t := 0; t < m.nt; t++ {
		b := uint64(0)
		if t < len(budgets) {
			b = budgets[t]
		}
		rem = append(rem, b)
	}
	m.ffRun(rem)
}

// FastForwardBudgetsTail is FastForwardBudgets with warm-tail warming: each
// thread's gap body beyond the last tail uops advances with ffSkim (stream
// draws only — no cache, TLB or predictor training), and only the final tail
// uops before the next measurement window run the full functional-warming
// path. tail == 0 skims everything; a tail at least as large as every budget
// degenerates to FastForwardBudgets exactly.
//
// The parity argument: during the skim the hierarchy is neither refreshed
// nor perturbed, so lines resident at gap entry stay resident; the warm tail
// then replays the most recent working set, restoring LRU recency and
// predictor history before measurement. What the skim loses is the gap
// body's evictions and insertions — long-lived L2 state barely turns over
// within one gap, so a tail covering a few L1 reloads of the hot set holds
// parity (verified across the Figure 5 sweep; see PERFORMANCE.md).
func (m *Machine) FastForwardBudgetsTail(budgets []uint64, tail uint64) {
	rem := m.ffBuf[:0]
	for t := 0; t < m.nt; t++ {
		b := uint64(0)
		if t < len(budgets) {
			b = budgets[t]
		}
		rem = append(rem, b)
	}
	var total uint64
	for t := 0; t < m.nt; t++ {
		if m.threads[t].parked {
			rem[t] = 0
			continue
		}
		m.ffRewind(t)
		total += rem[t]
	}
	// Skim phase: straight per-thread, no interleave — ffSkim touches no
	// shared state, so quantum mingling buys nothing and the schedule stays
	// a pure function of the budget vector either way.
	for t := 0; t < m.nt; t++ {
		if skim := rem[t]; skim > tail {
			skim -= tail
			m.ffSkim(t, skim)
			rem[t] = tail
			total -= skim
		}
	}
	m.ffWalk(rem, total)
}

// ffRun rewinds every non-parked thread and walks the remaining budgets in
// interleaved ffChunk-uop round-robin quanta. rem aliases the machine's
// scratch buffer and is consumed.
func (m *Machine) ffRun(rem []uint64) {
	var total uint64
	for t := 0; t < m.nt; t++ {
		if m.threads[t].parked {
			rem[t] = 0
			continue
		}
		m.ffRewind(t)
		total += rem[t]
	}
	m.ffWalk(rem, total)
}

// ffWalk drains the remaining budgets through full functional warming in
// interleaved ffChunk-uop round-robin quanta.
func (m *Machine) ffWalk(rem []uint64, total uint64) {
	for total > 0 {
		for t := 0; t < m.nt; t++ {
			step := rem[t]
			if step == 0 {
				continue
			}
			if step > ffChunk {
				step = ffChunk
			}
			m.ffAdvance(t, step)
			rem[t] -= step
			total -= step
		}
	}
}
