package cpu

import (
	"dcra/internal/isa"
)

// step advances the machine one cycle. Stages run back-to-front (commit
// first, fetch last) so each stage sees the state the previous cycle left.
func (m *Machine) step() {
	m.cycle++
	m.processEvents()
	m.commit()
	m.issue()
	m.dispatch()
	m.pol.Tick(m)
	m.fetch()
	m.sample()
	m.st.Cycles++
}

// ---- completion and miss-detection events ----

// processEvents delivers every event scheduled at or before the current
// cycle, walking the calendar ring one bucket per cycle. Delivery never
// pushes new events (issue is the only producer), so draining a bucket
// in-place is safe.
func (m *Machine) processEvents() {
	q := &m.events
	for q.base <= m.cycle {
		b := q.base & eventRingMask
		bucket := q.buckets[b]
		for i := range bucket {
			m.deliver(&bucket[i])
		}
		q.buckets[b] = bucket[:0]
		q.base++
		if len(q.overflow) > 0 {
			q.ripen()
		}
	}
}

func (m *Machine) deliver(ev *event) {
	t := int(ev.thread)
	r := m.rob[t]
	if !r.valid(ev.dseq, ev.gen) {
		return // squashed
	}
	e := r.at(ev.dseq)
	switch ev.kind {
	case evDetectL1:
		if e.state != stateDone && !e.l1Counted {
			e.l1Counted = true
			m.pendingL1D[t]++
		}
	case evDetectL2:
		if e.state != stateDone && !e.l2Counted {
			e.l2Counted = true
			m.pendingL2[t]++
		}
	case evComplete:
		m.complete(t, e)
	}
}

func (m *Machine) complete(t int, e *robEntry) {
	e.state = stateDone
	if e.l1Counted {
		e.l1Counted = false
		m.pendingL1D[t]--
	}
	if e.l2Counted {
		e.l2Counted = false
		m.pendingL2[t]--
	}
	if e.destPhys >= 0 {
		rf := m.regs[regIndex(e.destClass)]
		for _, w := range rf.markReady(e.destPhys) {
			q := m.iqs[w.queue]
			ent := &q.entries[w.idx]
			if !ent.used || ent.stamp != w.stamp {
				continue // stale waiter from a squashed consumer
			}
			ent.pending--
			if ent.pending == 0 {
				q.markReady(w.idx)
			}
		}
	}
	if e.u.Class == isa.OpLoad && m.loadObs != nil && !e.u.WrongPath {
		m.loadObs.LoadResolved(m, t, e.u.PC, e.hadL1Miss, e.hadL2Miss)
	}
	if e.u.Class == isa.OpBranch && !e.u.WrongPath {
		m.pred.Update(t, &e.u, e.mispredicted)
		if e.mispredicted {
			m.pred.FixupHistory(t, e.u.Taken)
			m.squashAfter(t, e.dseq, e.u.Index+1)
		}
	}
}

// ---- commit ----

func (m *Machine) commit() {
	budget := m.cfg.CommitWidth
	start := m.commitRR
	m.commitRR++
	if m.commitRR == m.nt {
		m.commitRR = 0
	}
	// Gather the threads with a committable head once, in rotation order.
	// Completion events only land in processEvents, so a head that is not
	// done now cannot become done within this cycle: the repeated passes
	// below walk only live candidates instead of re-probing parked and
	// empty threads.
	live := m.commitBuf[:0]
	for i := 0; i < m.nt; i++ {
		t := start + i
		if t >= m.nt {
			t -= m.nt
		}
		if e := m.rob[t].head(); e != nil && e.state == stateDone {
			live = append(live, int32(t))
		}
	}
	for budget > 0 && len(live) > 0 {
		n := 0
		for _, t32 := range live {
			if budget == 0 {
				break
			}
			t := int(t32)
			r := m.rob[t] // one ring lookup per committed uop, not three
			m.commitEntry(t, r.head())
			r.popHead()
			budget--
			if e := r.head(); e != nil && e.state == stateDone {
				live[n] = t32
				n++
			}
		}
		live = live[:n]
	}
}

func (m *Machine) commitEntry(t int, e *robEntry) {
	m.robUsed--
	m.robCount[t]--
	if e.destPhys >= 0 {
		m.regs[regIndex(e.destClass)].release(e.destPhys)
		m.regCount[t][regIndex(e.destClass)]--
	}
	u := &e.u
	// Clear the producer-ring slot; consumers dispatched from now on read
	// the value as architecturally committed (always ready).
	pe := &m.prod[t][u.Index&prodRingMask]
	if pe.idx == u.Index {
		pe.idx = ^uint64(0)
	}
	m.threads[t].stream.Release(u.Index + 1)

	if m.commitObs != nil {
		m.commitObs(t, u)
	}

	ts := &m.st.Threads[t]
	ts.Committed++
	switch u.Class {
	case isa.OpBranch:
		ts.Branches++
		if e.mispredicted {
			ts.BranchMispred++
		}
	case isa.OpLoad:
		ts.Loads++
	case isa.OpStore:
		ts.Stores++
	}
	if e.hadL1Miss {
		ts.L1DMisses++
	}
	if e.hadL2Miss {
		ts.L2DMisses++
	}
}

// ---- issue ----

func (m *Machine) issue() {
	fuLeft := [3]int{m.cfg.IntUnits, m.cfg.FPUnits, m.cfg.LSUnits}
	budget := m.cfg.IssueWidth
	// Peek each queue's oldest ready entry once and re-peek only the queue
	// that issued: nothing during issue makes new entries ready (completion
	// wakeups land in processEvents, dispatch runs later), so the cached
	// heads of the other queues cannot change. A queue whose ports are
	// exhausted is retired from the tournament outright.
	var oldest [3]int32
	for q := 0; q < 3; q++ {
		if fuLeft[q] > 0 {
			oldest[q] = m.iqs[q].selectOldest()
		} else {
			oldest[q] = -1
		}
	}
	for budget > 0 {
		bestQ := -1
		var bestAge uint64
		for q := 0; q < 3; q++ {
			idx := oldest[q]
			if idx < 0 {
				continue
			}
			age := m.iqs[q].entries[idx].age
			if bestQ == -1 || age < bestAge {
				bestQ, bestAge = q, age
			}
		}
		if bestQ == -1 {
			return
		}
		m.issueEntry(bestQ, oldest[bestQ])
		fuLeft[bestQ]--
		budget--
		if fuLeft[bestQ] > 0 {
			oldest[bestQ] = m.iqs[bestQ].selectOldest()
		} else {
			oldest[bestQ] = -1
		}
	}
}

func (m *Machine) issueEntry(q int, idx int32) {
	iq := m.iqs[q]
	ent := &iq.entries[idx]
	t := int(ent.thread)
	e := m.rob[t].at(ent.dseq)
	iq.removeFromReady(idx)
	iq.freeEntry(idx)
	m.iqCount[t][q]--
	e.state = stateIssued
	e.iqQueue = -1
	m.st.Threads[t].Issued++

	// The bypass network forwards results to dependents as they complete,
	// so producer-to-consumer latency is the execution latency alone; the
	// register-read stages add to the branch-resolution penalty (squash
	// happens later) but not to dependence chains.
	base := uint64(0)
	now := m.cycle
	var done uint64
	switch e.u.Class {
	case isa.OpIntALU:
		done = now + uint64(m.cfg.IntALULat)
	case isa.OpBranch:
		done = now + uint64(m.cfg.RegReadCycle) + uint64(m.cfg.IntALULat)
	case isa.OpIntMul:
		done = now + uint64(m.cfg.IntMulLat)
	case isa.OpFPALU:
		done = now + uint64(m.cfg.FPALULat)
	case isa.OpFPMul:
		done = now + uint64(m.cfg.FPMulLat)
	case isa.OpLoad:
		res := m.hier.AccessD(e.u.Addr, now+base)
		done = res.DoneAt
		e.hadL1Miss = res.L1Miss
		e.hadL2Miss = res.L2Miss
		if !e.u.WrongPath {
			if res.L1Miss {
				m.events.push(event{
					at: now + base + uint64(m.cfg.DCache.Latency) + 1, thread: int32(t),
					kind: evDetectL1, dseq: e.dseq, gen: e.gen,
				})
			}
			if res.L2Miss {
				m.events.push(event{
					at: now + base + uint64(m.cfg.DCache.Latency+m.cfg.L2.Latency) + 1, thread: int32(t),
					kind: evDetectL2, dseq: e.dseq, gen: e.gen,
				})
			}
		}
		if res.TLBMiss {
			m.st.Threads[t].TLBMisses++
		}
	case isa.OpStore:
		// Stores update the hierarchy for occupancy/statistics but retire
		// into a store buffer: they do not hold the pipeline for the miss.
		res := m.hier.AccessD(e.u.Addr, now+base)
		e.hadL1Miss = res.L1Miss
		e.hadL2Miss = res.L2Miss
		done = now + base + 1
	default: // OpNop
		done = now + 1
	}
	if done <= now {
		done = now + 1
	}
	m.events.push(event{at: done, thread: int32(t), kind: evComplete, dseq: e.dseq, gen: e.gen})
}

// ---- dispatch (rename + allocate) ----

func regIndex(c isa.RegClass) int {
	if c == isa.RegFP {
		return 1
	}
	return 0
}

func (m *Machine) dispatch() {
	for t := 0; t < m.nt; t++ {
		m.allocFlags[t] = [NumResources]bool{}
	}
	if m.part != nil {
		// Hoist the per-thread caps once per cycle. Cap is a pure function
		// of state computed in the policy's Tick (DCRA's classification,
		// SRA's constants), so sampling it per dispatch attempt would only
		// repeat identical interface calls.
		for t := 0; t < m.nt; t++ {
			caps := &m.capBuf[t]
			for r := Resource(0); r < NumResources; r++ {
				caps[r] = m.part.Cap(m, t, r)
			}
		}
	}
	budget := m.cfg.FetchWidth
	start := m.fetchRR // reuse rotation for fairness
	// Gather the threads with a dispatchable head once, in rotation order.
	// Fetch runs after dispatch and readyAt only decreases with time, so a
	// thread with an empty pipe or a not-yet-decoded head cannot become
	// dispatchable within this cycle; a thread that stalls on resources is
	// dropped from the list (it stays stalled until something frees, which
	// only commit/issue — earlier stages — can do).
	live := m.dispBuf[:0]
	for i := 0; i < m.nt; i++ {
		t := start + i
		if t >= m.nt {
			t -= m.nt
		}
		fe := &m.fe[t]
		if fe.empty() || fe.peek().readyAt > m.cycle {
			continue
		}
		live = append(live, int32(t))
	}
	if m.robUsed >= m.cfg.ROBSize {
		// The shared ROB is exhausted and commit has already run this cycle,
		// so every live thread would fail tryDispatch at the first check.
		// Charge the stalls (exactly what the attempt loop would record: one
		// failed attempt per live thread) and skip the loop.
		for _, t32 := range live {
			m.st.Threads[t32].DispatchStalls++
		}
		return
	}
	for budget > 0 && len(live) > 0 {
		n := 0
		for _, t32 := range live {
			if budget == 0 {
				break
			}
			t := int(t32)
			fe := &m.fe[t]
			if !m.tryDispatch(t, fe.peek()) {
				m.st.Threads[t].DispatchStalls++
				continue
			}
			fe.pop()
			budget--
			if !fe.empty() && fe.peek().readyAt <= m.cycle {
				live[n] = t32
				n++
			}
		}
		live = live[:n]
	}
}

// tryDispatch allocates every back-end resource the uop needs, atomically.
func (m *Machine) tryDispatch(t int, fe *feEntry) bool {
	// Shared-pool availability, cheapest check first; the queue and register
	// class are derived only once the preceding check has passed, so a
	// stalled thread pays for no more classification than it needs.
	if m.robUsed >= m.cfg.ROBSize {
		return false
	}
	u := &fe.u
	q := isa.QueueOf(u.Class)
	if m.iqs[q].full() {
		return false
	}
	destCls := u.DestRegClass()
	ri := -1
	if destCls != isa.RegNone {
		ri = regIndex(destCls)
		if m.regs[ri].available() == 0 {
			return false
		}
	}
	// Per-thread caps (SRA-style partitioning), hoisted by dispatch.
	if m.part != nil {
		caps := &m.capBuf[t]
		if c := caps[RROB]; c > 0 && m.robCount[t] >= c {
			return false
		}
		if c := caps[Resource(q)]; c > 0 && m.iqCount[t][q] >= c {
			return false
		}
		if ri >= 0 {
			if c := caps[RIntRegs+Resource(ri)]; c > 0 && m.regCount[t][ri] >= c {
				return false
			}
		}
	}

	// Allocate ROB.
	r := m.rob[t]
	e := r.push()
	e.u = *u
	e.gen = m.threads[t].gen
	e.state = stateDispatched
	e.mispredicted = fe.mispredicted
	e.rasTop = fe.rasTop
	m.robUsed++
	m.robCount[t]++
	m.allocFlags[t][RROB] = true

	// Allocate destination register.
	if ri >= 0 {
		phys, _ := m.regs[ri].alloc()
		e.destPhys = phys
		e.destClass = destCls
		m.regCount[t][ri]++
		m.allocFlags[t][RIntRegs+Resource(ri)] = true
		if !u.WrongPath {
			m.prod[t][u.Index&prodRingMask] = prodEntry{idx: u.Index, phys: phys, cls: destCls}
		}
	}

	// Allocate the issue-queue entry and resolve operands.
	idx, ent := m.iqs[q].alloc()
	ent.thread = int16(t)
	ent.class = u.Class
	ent.dseq = e.dseq
	ent.gen = e.gen
	m.ageStamp++
	ent.age = m.ageStamp
	e.iqQueue = int32(q)
	e.iqIdx = idx
	e.iqStamp = ent.stamp
	m.iqCount[t][q]++
	m.allocFlags[t][Resource(q)] = true

	if !u.WrongPath {
		m.resolveOperand(t, u, u.Dep1, int32(q), idx, ent)
		m.resolveOperand(t, u, u.Dep2, int32(q), idx, ent)
	}
	if ent.pending == 0 {
		m.iqs[q].markReady(idx)
	}
	m.st.Threads[t].Dispatched++
	return true
}

// resolveOperand links one positional dependence to its producer's physical
// register, if that producer is still in flight and not yet ready.
func (m *Machine) resolveOperand(t int, u *isa.Uop, dep uint16, q, idx int32, ent *iqEntry) {
	if dep == 0 || uint64(dep) > u.Index {
		return
	}
	pidx := u.Index - uint64(dep)
	pe := &m.prod[t][pidx&prodRingMask]
	if pe.idx != pidx {
		return // producer committed (or never tracked): value ready
	}
	rf := m.regs[regIndex(pe.cls)]
	if rf.isReady(pe.phys) {
		return
	}
	ent.pending++
	rf.addWaiter(pe.phys, waiterRef{queue: q, idx: idx, stamp: ent.stamp})
}

// ---- per-cycle sampling ----

func (m *Machine) sample() {
	if out := m.hier.OutstandingMem(m.cycle); out > 0 {
		m.st.MLPSum += uint64(out)
		m.st.MLPCycles++
	}
	if m.nt == 2 {
		slow := 0
		if m.pendingL1D[0] > 0 {
			slow++
		}
		if m.pendingL1D[1] > 0 {
			slow++
		}
		m.st.PhasePairCycles[slow]++
	}
}
