package cpu

import (
	"testing"

	"dcra/internal/config"
	"dcra/internal/trace"
)

// icountPolicy is a minimal in-package policy for tests.
type icountPolicy struct{}

func (icountPolicy) Name() string              { return "ICOUNT" }
func (icountPolicy) Tick(*Machine)             {}
func (icountPolicy) Rank(m *Machine, ts []int) { RankByICount(m, ts) }
func (icountPolicy) Gate(*Machine, int) bool   { return false }

func newTestMachine(t testing.TB, names ...string) *Machine {
	t.Helper()
	profiles := make([]trace.Profile, len(names))
	for i, n := range names {
		profiles[i] = trace.MustProfile(n)
	}
	m, err := New(config.Baseline(), profiles, icountPolicy{}, 42)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestSmokeSingleThread(t *testing.T) {
	m := newTestMachine(t, "gzip")
	m.Run(20_000)
	st := m.Stats()
	if st.Threads[0].Committed == 0 {
		t.Fatalf("no instructions committed in 20k cycles:\n%s", st)
	}
	ipc := st.Threads[0].IPC(st.Cycles)
	if ipc < 0.2 || ipc > 8 {
		t.Fatalf("implausible single-thread IPC %.3f for gzip", ipc)
	}
}

func TestSmokeFourThreads(t *testing.T) {
	m := newTestMachine(t, "gzip", "mcf", "art", "eon")
	m.Run(20_000)
	st := m.Stats()
	for i := range st.Threads {
		if st.Threads[i].Committed == 0 {
			t.Fatalf("thread %d starved completely:\n%s", i, st)
		}
	}
	if tp := st.Throughput(); tp <= 0 || tp > 8 {
		t.Fatalf("implausible throughput %.3f", tp)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() string {
		m := newTestMachine(t, "gzip", "mcf")
		m.Run(15_000)
		return m.Stats().String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestConservation checks resource counters return to a consistent state:
// after a long run, every usage counter matches the occupancy implied by
// the structures, and nothing leaked.
func TestConservation(t *testing.T) {
	m := newTestMachine(t, "mcf", "gcc")
	m.Run(30_000)
	for q := 0; q < 3; q++ {
		sum := 0
		for tid := 0; tid < m.nt; tid++ {
			sum += m.iqCount[tid][q]
		}
		if sum != m.iqs[q].count {
			t.Errorf("queue %d: per-thread counts %d != pool count %d", q, sum, m.iqs[q].count)
		}
		if m.iqs[q].count < 0 || m.iqs[q].count > len(m.iqs[q].entries) {
			t.Errorf("queue %d count %d out of range", q, m.iqs[q].count)
		}
	}
	for c := 0; c < 2; c++ {
		used := 0
		for tid := 0; tid < m.nt; tid++ {
			used += m.regCount[tid][c]
		}
		total := m.regs[c].available() + used
		if total != m.cfg.RenameRegs(m.nt) {
			t.Errorf("reg class %d: free %d + used %d != rename pool %d",
				c, m.regs[c].available(), used, m.cfg.RenameRegs(m.nt))
		}
	}
	robSum := 0
	for tid := 0; tid < m.nt; tid++ {
		robSum += m.robCount[tid]
		if m.robCount[tid] != m.rob[tid].count() {
			t.Errorf("thread %d: robCount %d != rob entries %d", tid, m.robCount[tid], m.rob[tid].count())
		}
	}
	if robSum != m.robUsed {
		t.Errorf("rob: per-thread sum %d != robUsed %d", robSum, m.robUsed)
	}
	for tid := 0; tid < m.nt; tid++ {
		if m.pendingL1D[tid] < 0 || m.pendingL2[tid] < 0 {
			t.Errorf("thread %d: negative pending miss counters (%d, %d)",
				tid, m.pendingL1D[tid], m.pendingL2[tid])
		}
	}
}

func BenchmarkCycle4Threads(b *testing.B) {
	m := newTestMachine(b, "gzip", "mcf", "art", "eon")
	m.Run(5_000) // warm structures
	b.ResetTimer()
	m.Run(uint64(b.N))
}
