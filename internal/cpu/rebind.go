package cpu

import (
	"fmt"

	"dcra/internal/isa"
	"dcra/internal/trace"
)

// This file implements the mid-run thread lifecycle the open-system job
// scheduler (internal/sched) drives: a hardware context can be drained and
// parked when its job departs, then rebound to a fresh instruction stream
// when the next job is placed on it — all without disturbing the other
// contexts, whose committed streams stay bit-identical to a run that never
// rebinds (TestRebindThreadLeavesOthersIntact).

// CommitObserver receives every committed uop of every thread, in commit
// order. The rebind bit-identity tests install one to compare committed
// streams uop for uop; the hook is nil (and free) everywhere else.
type CommitObserver func(t int, u *isa.Uop)

// SetCommitObserver installs fn as the machine's commit hook (nil removes
// it). Reinit clears the hook: an observer belongs to one run.
func (m *Machine) SetCommitObserver(fn CommitObserver) { m.commitObs = fn }

// drainThread squashes every in-flight uop of thread t — the whole ROB
// window plus the front-end pipe — returning their entries to the shared
// pools (see reclaim). Shared structures belonging to other threads are
// untouched.
func (m *Machine) drainThread(t int) {
	m.reclaim(t, m.rob[t].headSeq)
	m.rob[t].drain()
}

// ParkThread drains context t and marks it idle: a parked thread fetches
// nothing, holds no shared resources and commits nothing until RebindThread
// reactivates it. The scheduler parks a context the cycle its job departs.
func (m *Machine) ParkThread(t int) {
	m.drainThread(t)
	m.threads[t].parked = true
}

// Parked reports whether context t is idle.
func (m *Machine) Parked(t int) bool { return m.threads[t].parked }

// RebindThread drains context t and rebinds it to a fresh canonical stream
// for (profile, seed), leaving every other context undisturbed: their
// streams, in-flight windows and committed sequences are exactly those of a
// run that never rebound t (timing may shift through the shared caches and
// queues, content may not). The new job's resident working set is prewarmed
// like New's, modelling the slice-of-a-long-run measurement convention, and
// the thread's RAS is emptied — the new stream's call stack starts empty.
func (m *Machine) RebindThread(t int, profile trace.Profile, seed uint64) error {
	if t < 0 || t >= m.nt {
		return fmt.Errorf("cpu: rebind of thread %d on a %d-context machine", t, m.nt)
	}
	if err := profile.Validate(); err != nil {
		return err
	}
	m.drainThread(t)

	ts := &m.threads[t]
	stream := ts.stream
	stream.Rebind(profile, t, seed)
	*ts = threadState{stream: stream, gen: ts.gen}

	prod := m.prod[t]
	for i := range prod {
		prod[i].idx = ^uint64(0)
	}
	m.allocFlags[t] = [NumResources]bool{}
	m.pred.SetRASTop(t, 0)

	fp := stream.Footprint()
	m.hier.PrewarmCode(fp.CodeBase, fp.CodeBytes)
	m.hier.PrewarmData(fp.HotBase, fp.HotBytes, true)
	m.hier.PrewarmData(fp.WarmBase, fp.WarmBytes, false)
	return nil
}

// RunToTargets advances the machine until some thread t with a target
// (targets[t] != NoTarget) reaches targets[t] cumulative committed uops, or
// budget cycles elapse, whichever is first. It returns the cycles consumed.
// Targets are absolute (against Stats().Threads[t].Committed), so a caller
// tracking per-job budgets sets target = committed-at-dispatch + budget.
func (m *Machine) RunToTargets(targets []uint64, budget uint64) uint64 {
	start := m.cycle
	for m.cycle-start < budget {
		m.step()
		for t := range targets {
			if m.st.Threads[t].Committed >= targets[t] {
				return m.cycle - start
			}
		}
	}
	return m.cycle - start
}

// NoTarget disables a thread's slot in RunToTargets.
const NoTarget = ^uint64(0)
