package cpu

import (
	"reflect"
	"testing"

	"dcra/internal/config"
	"dcra/internal/trace"
)

// reinitCell is one (cfg, profiles, seed) point of the reuse matrix.
type reinitCell struct {
	name     string
	cfg      config.Config
	profiles []string
	seed     uint64
}

func reinitCells() []reinitCell {
	base := config.Baseline()
	return []reinitCell{
		{"base-2t", base, []string{"gzip", "mcf"}, 1},
		{"memlat-2t", base.WithMemLatency(500, 25), []string{"gzip", "mcf"}, 1},
		{"base-2t-otherwork", base, []string{"art", "eon"}, 1},
		{"base-2t-otherseed", base, []string{"gzip", "mcf"}, 99},
		{"regs-2t", base.WithPhysRegs(288), []string{"swim", "twolf"}, 7},
		{"base-4t", base, []string{"gzip", "mcf", "art", "eon"}, 1},
	}
}

func runCell(t *testing.T, m *Machine, cycles uint64) *Machine {
	t.Helper()
	m.Run(cycles / 4)
	m.ResetStats()
	m.Run(cycles)
	return m
}

// TestReinitBitIdentical proves the reuse lifecycle is invisible to results:
// running a mixed sequence of cells on ONE machine via Reinit produces
// statistics deep-equal to running each cell on a freshly constructed
// machine. The sequence deliberately crosses shapes (2-thread vs 4-thread,
// different register-file sizes) to exercise both the in-place path and the
// fresh-construction fallback.
func TestReinitBitIdentical(t *testing.T) {
	const cycles = 20_000
	cells := reinitCells()

	fresh := make([]*Machine, len(cells))
	for i, c := range cells {
		profiles := make([]trace.Profile, len(c.profiles))
		for j, n := range c.profiles {
			profiles[j] = trace.MustProfile(n)
		}
		m, err := New(c.cfg, profiles, icountPolicy{}, c.seed)
		if err != nil {
			t.Fatalf("%s: New: %v", c.name, err)
		}
		fresh[i] = runCell(t, m, cycles)
	}

	// Dirty a machine with an unrelated run, then walk the whole cell
	// sequence on it via Reinit.
	reused := newTestMachine(t, "mcf", "art")
	reused.Run(3_000)
	for i, c := range cells {
		profiles := make([]trace.Profile, len(c.profiles))
		for j, n := range c.profiles {
			profiles[j] = trace.MustProfile(n)
		}
		if err := reused.Reinit(c.cfg, profiles, icountPolicy{}, c.seed); err != nil {
			t.Fatalf("%s: Reinit: %v", c.name, err)
		}
		runCell(t, reused, cycles)
		if !reflect.DeepEqual(reused.Stats(), fresh[i].Stats()) {
			t.Errorf("%s: reused machine diverged from fresh construction:\nfresh:  %vreused: %v",
				c.name, fresh[i].Stats(), reused.Stats())
		}
		if reused.Hierarchy().L1D.Accesses != fresh[i].Hierarchy().L1D.Accesses ||
			reused.Hierarchy().MemMisses != fresh[i].Hierarchy().MemMisses {
			t.Errorf("%s: hierarchy counters diverged", c.name)
		}
	}
}

// TestReinitShapeFallback checks the explicit contract: a shape change
// rebuilds the machine rather than erroring, and the rebuilt machine carries
// the new configuration.
func TestReinitShapeFallback(t *testing.T) {
	m := newTestMachine(t, "gzip", "mcf")
	oldShape := m.Shape()
	cfg := config.Baseline()
	cfg.ROBSize = 256 // shrinks the ROB ring: shape mismatch
	if ShapeOf(cfg, 2) == oldShape {
		t.Fatal("test config does not change the shape")
	}
	if err := m.Reinit(cfg, []trace.Profile{trace.MustProfile("gzip"), trace.MustProfile("mcf")}, icountPolicy{}, 1); err != nil {
		t.Fatalf("Reinit across shapes: %v", err)
	}
	if m.Config().ROBSize != 256 || m.Shape() == oldShape {
		t.Fatal("fallback did not adopt the new configuration")
	}
	m.Run(5_000)
	if m.Stats().TotalCommitted() == 0 {
		t.Fatal("rebuilt machine does not simulate")
	}
}

// TestReinitPreservesPriorStats pins the pooling contract that makes reuse
// safe for the experiment harness: statistics extracted from a run are never
// mutated by a later Reinit of the same machine.
func TestReinitPreservesPriorStats(t *testing.T) {
	m := newTestMachine(t, "gzip", "mcf")
	m.Run(5_000)
	st := m.Stats()
	committed := st.TotalCommitted()
	cycles := st.Cycles
	if err := m.Reinit(config.Baseline(), []trace.Profile{trace.MustProfile("art"), trace.MustProfile("eon")}, icountPolicy{}, 5); err != nil {
		t.Fatal(err)
	}
	m.Run(5_000)
	if st == m.Stats() {
		t.Fatal("Reinit must hand out a fresh Stats object")
	}
	if st.TotalCommitted() != committed || st.Cycles != cycles {
		t.Fatal("Reinit mutated statistics retained from an earlier run")
	}
}
