package cpu

import "dcra/internal/isa"

// entryState tracks a uop's progress through the back end.
type entryState uint8

const (
	stateDispatched entryState = iota // waiting in an issue queue
	stateIssued                       // executing
	stateDone                         // completed, awaiting commit
)

// robEntry is one reorder-buffer slot.
type robEntry struct {
	u    isa.Uop
	dseq uint64 // per-thread dispatch sequence number
	gen  uint32 // squash generation at dispatch

	state     entryState
	destPhys  int32 // physical register allocated for the destination, -1 if none
	destClass isa.RegClass

	iqQueue int32  // queue holding the entry while waiting (-1 once issued)
	iqIdx   int32  // index within that queue
	iqStamp uint64 // allocation stamp for validation

	mispredicted bool  // branch resolved against its prediction
	hadL1Miss    bool  // load missed L1D
	hadL2Miss    bool  // load went to main memory
	l1Counted    bool  // pendingL1D incremented for this load
	l2Counted    bool  // pendingL2 incremented for this load
	rasTop       int32 // RAS depth snapshot at fetch, restored on squash
}

// threadROB is a per-thread FIFO window into the shared ROB pool. Entries
// are addressed by dseq; the ring is sized for the whole shared ROB so a
// single thread may fill it.
type threadROB struct {
	ring    []robEntry
	mask    uint64
	headSeq uint64 // oldest in-flight dseq
	tailSeq uint64 // next dseq to allocate
}

func newThreadROB(capacity int) *threadROB {
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &threadROB{ring: make([]robEntry, size), mask: uint64(size - 1)}
}

func (r *threadROB) count() int { return int(r.tailSeq - r.headSeq) }

// at returns the entry with the given dseq; the caller must ensure it is in
// [headSeq, tailSeq).
func (r *threadROB) at(dseq uint64) *robEntry { return &r.ring[dseq&r.mask] }

// valid reports whether dseq names a live entry of generation gen.
func (r *threadROB) valid(dseq uint64, gen uint32) bool {
	return dseq >= r.headSeq && dseq < r.tailSeq && r.ring[dseq&r.mask].gen == gen
}

// push allocates the next entry and returns it.
func (r *threadROB) push() *robEntry {
	e := &r.ring[r.tailSeq&r.mask]
	*e = robEntry{dseq: r.tailSeq, destPhys: -1, iqQueue: -1}
	r.tailSeq++
	return e
}

// head returns the oldest entry, or nil when empty.
func (r *threadROB) head() *robEntry {
	if r.headSeq == r.tailSeq {
		return nil
	}
	return r.at(r.headSeq)
}

// popHead retires the oldest entry.
func (r *threadROB) popHead() { r.headSeq++ }

// drain empties the window without rewinding the sequence counters, so dseqs
// of dropped entries are never reissued: stale calendar events referencing
// them fail the valid() range check forever.
func (r *threadROB) drain() { r.headSeq = r.tailSeq }

// reset empties the window and rewinds the sequence counters to zero. Ring
// contents need no clearing: push fully overwrites an entry before any read,
// and valid() only consults the live [headSeq, tailSeq) range.
func (r *threadROB) reset() { r.headSeq, r.tailSeq = 0, 0 }

// rollbackTo discards entries with dseq > after (squash). The caller walks
// the discarded range first to release their resources.
func (r *threadROB) rollbackTo(after uint64) {
	if after+1 < r.tailSeq {
		r.tailSeq = after + 1
	}
}
