package cpu

import (
	"testing"

	"dcra/internal/isa"
	"dcra/internal/trace"
)

// commitRec is the observable identity of one committed uop.
type commitRec struct {
	idx   uint64
	pc    uint64
	class isa.OpClass
	addr  uint64
	taken bool
}

// recordCommits installs an observer capturing thread `watch`'s committed
// stream.
func recordCommits(m *Machine, watch int) *[]commitRec {
	var recs []commitRec
	m.SetCommitObserver(func(t int, u *isa.Uop) {
		if t == watch {
			recs = append(recs, commitRec{u.Index, u.PC, u.Class, u.Addr, u.Taken})
		}
	})
	return &recs
}

// TestRebindThreadLeavesOthersIntact is the satellite bit-identity proof:
// parking and rebinding context 1 repeatedly must leave context 0's
// committed stream identical (uop for uop) to a run that never rebinds.
// Timing may shift through the shared caches and queues — content may not.
func TestRebindThreadLeavesOthersIntact(t *testing.T) {
	ref := newTestMachine(t, "gzip", "mcf")
	refRecs := recordCommits(ref, 0)
	ref.Run(40_000)

	m := newTestMachine(t, "gzip", "mcf")
	recs := recordCommits(m, 0)
	m.Run(10_000)
	if err := m.RebindThread(1, trace.MustProfile("art"), 7); err != nil {
		t.Fatalf("RebindThread: %v", err)
	}
	checkConservation(t, m, "after rebind to art")
	m.Run(8_000)
	m.ParkThread(1)
	checkConservation(t, m, "after park")
	m.Run(6_000)
	if err := m.RebindThread(1, trace.MustProfile("swim"), 99); err != nil {
		t.Fatalf("RebindThread: %v", err)
	}
	checkConservation(t, m, "after rebind to swim")
	m.Run(16_000)

	n := min(len(*refRecs), len(*recs))
	if n < 1_000 {
		t.Fatalf("too few committed uops to compare: ref %d, rebind %d", len(*refRecs), len(*recs))
	}
	for i := 0; i < n; i++ {
		if (*refRecs)[i] != (*recs)[i] {
			t.Fatalf("thread 0 committed stream diverged at uop %d: ref %+v, rebind-run %+v",
				i, (*refRecs)[i], (*recs)[i])
		}
	}
	if m.Stats().Threads[0].Committed == 0 {
		t.Fatal("thread 0 committed nothing")
	}
}

// TestRebindThreadMatchesFreshStream: after a rebind, the context's
// committed stream must be exactly the canonical stream of a fresh
// NewStream(profile, t, seed) — index 0 upward, same PCs, classes,
// addresses and branch outcomes.
func TestRebindThreadMatchesFreshStream(t *testing.T) {
	const seed = 1234
	m := newTestMachine(t, "gzip", "mcf")
	m.Run(12_000)

	recs := recordCommits(m, 1)
	if err := m.RebindThread(1, trace.MustProfile("eon"), seed); err != nil {
		t.Fatalf("RebindThread: %v", err)
	}
	m.Run(20_000)

	if len(*recs) < 1_000 {
		t.Fatalf("rebound thread committed only %d uops", len(*recs))
	}
	want := trace.NewStream(trace.MustProfile("eon"), 1, seed)
	for i, r := range *recs {
		if r.idx != uint64(i) {
			t.Fatalf("committed index %d at position %d: rebound stream did not restart at 0", r.idx, i)
		}
		u := want.At(uint64(i))
		if r.pc != u.PC || r.class != u.Class || r.addr != u.Addr || r.taken != u.Taken {
			t.Fatalf("committed uop %d differs from fresh stream: got %+v, want {%d %d %v %d %t}",
				i, r, u.Index, u.PC, u.Class, u.Addr, u.Taken)
		}
		want.Release(uint64(i))
	}
}

// TestParkThreadGoesQuiet: a parked context holds nothing, fetches nothing
// and commits nothing, while the other context keeps running.
func TestParkThreadGoesQuiet(t *testing.T) {
	m := newTestMachine(t, "gzip", "mcf")
	m.Run(10_000)
	m.ParkThread(1)
	checkConservation(t, m, "after park")
	if !m.Parked(1) || m.Parked(0) {
		t.Fatalf("park flags wrong: %v %v", m.Parked(0), m.Parked(1))
	}
	if n := m.ICount(1); n != 0 {
		t.Fatalf("parked thread still holds %d pre-issue uops", n)
	}
	if n := m.Usage(1, RROB); n != 0 {
		t.Fatalf("parked thread still holds %d ROB entries", n)
	}

	before0 := m.Stats().Threads[0].Committed
	before1 := m.Stats().Threads[1].Committed
	fetched1 := m.Stats().Threads[1].Fetched
	m.Run(10_000)
	if got := m.Stats().Threads[1].Committed; got != before1 {
		t.Fatalf("parked thread committed %d uops", got-before1)
	}
	if got := m.Stats().Threads[1].Fetched; got != fetched1 {
		t.Fatalf("parked thread fetched %d uops", got-fetched1)
	}
	if got := m.Stats().Threads[0].Committed; got == before0 {
		t.Fatal("running thread made no progress alongside a parked one")
	}
	checkConservation(t, m, "after running parked")
}

// TestRebindThreadRejectsBadArgs guards the error paths.
func TestRebindThreadRejectsBadArgs(t *testing.T) {
	m := newTestMachine(t, "gzip")
	if err := m.RebindThread(1, trace.MustProfile("mcf"), 1); err == nil {
		t.Fatal("rebind of out-of-range context succeeded")
	}
	if err := m.RebindThread(0, trace.Profile{}, 1); err == nil {
		t.Fatal("rebind to an invalid profile succeeded")
	}
}
