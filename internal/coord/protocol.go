package coord

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"dcra/internal/campaign"
)

// Lease response states.
const (
	// StateLease grants work: the response carries a Grant.
	StateLease = "lease"
	// StateWait means no range is currently leasable (everything is leased
	// or backing off); the worker should retry after RetryMs.
	StateWait = "wait"
	// StateDone means the campaign has nothing left to hand out — every cell
	// is either complete or out of retry budget (Missing counts the latter)
	// — or the coordinator is draining. Workers exit.
	StateDone = "done"
)

// LeaseRequest asks the coordinator for a range of cells to compute.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// Grant is one lease: a contiguous range of the campaign's canonical cell
// order, minus cells already completed. The worker must heartbeat before the
// TTL elapses or the coordinator reclaims and re-leases the range.
type Grant struct {
	LeaseID   string          `json:"lease_id"`
	Campaign  string          `json:"campaign"`
	SweepHash string          `json:"sweep_hash"`
	Params    campaign.Params `json:"params"`
	Range     [2]int          `json:"range"` // [start, end) in canonical order
	Attempt   int             `json:"attempt"`
	TTLMs     int64           `json:"ttl_ms"`
	Cells     []campaign.Cell `json:"cells"`
}

// TTL returns the grant's heartbeat deadline interval.
func (g *Grant) TTL() time.Duration { return time.Duration(g.TTLMs) * time.Millisecond }

// LeaseResponse is the coordinator's answer to a lease request.
type LeaseResponse struct {
	State   string `json:"state"`
	RetryMs int64  `json:"retry_ms,omitempty"`
	Missing int    `json:"missing,omitempty"` // cells given up on (StateDone)
	Grant   *Grant `json:"grant,omitempty"`
}

// HeartbeatRequest extends a lease's deadline. Completions do not extend the
// deadline — heartbeats are the only keepalive — so a worker that streams
// results but whose control loop has stalled still loses its lease.
type HeartbeatRequest struct {
	Worker  string `json:"worker"`
	LeaseID string `json:"lease_id"`
}

// HeartbeatResponse acknowledges a heartbeat. OK is false when the lease is
// unknown (expired and reclaimed, or from a previous coordinator life).
// Cancel tells the worker to abandon the lease: every cell it covers has
// already been completed by someone else, or the coordinator is draining.
type HeartbeatResponse struct {
	OK     bool `json:"ok"`
	Cancel bool `json:"cancel,omitempty"`
}

// CompleteRequest streams finished cells home. Workers send one request per
// cell as results arrive, with Done set on the last cell of the lease. Sum is
// the integrity digest of Cells (PayloadSum); the coordinator rejects
// payloads whose digest does not match, so a corrupted result cannot poison
// the store with a wrong-but-well-formed number.
type CompleteRequest struct {
	Worker  string                `json:"worker"`
	LeaseID string                `json:"lease_id"`
	Done    bool                  `json:"done"`
	Cells   []campaign.CellResult `json:"cells"`
	Sum     string                `json:"sum"`

	// CellMs carries the worker-measured compute duration of each cell
	// in Cells, in milliseconds, for the coordinator's trace and
	// latency histogram. Telemetry only: it rides outside the sealed
	// payload (Sum digests Cells alone), so a missing or garbled timing
	// can skew a trace but never a result.
	CellMs []float64 `json:"cell_ms,omitempty"`
}

// CompleteResponse acknowledges (or rejects) a completion payload.
type CompleteResponse struct {
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
}

// FailRequest surrenders a lease after a compute error or a rejected
// completion; the coordinator re-queues the lease's incomplete cells with
// backoff, exactly as if the lease had expired.
type FailRequest struct {
	Worker  string `json:"worker"`
	LeaseID string `json:"lease_id"`
	Reason  string `json:"reason"`
}

// FailResponse acknowledges a surrender.
type FailResponse struct {
	OK bool `json:"ok"`
}

// LeaseInfo describes one active lease in a status report.
type LeaseInfo struct {
	LeaseID  string `json:"lease_id"`
	Worker   string `json:"worker"`
	Range    [2]int `json:"range"`
	AgeMs    int64  `json:"age_ms"`
	ExpireMs int64  `json:"expire_ms"` // until deadline; negative = overdue
}

// StatusResponse is the coordinator's live progress report.
type StatusResponse struct {
	Campaign  string          `json:"campaign"`
	SweepHash string          `json:"sweep_hash"`
	Params    campaign.Params `json:"params"`

	Total     int `json:"total"`
	Done      int `json:"done"`
	Leased    int `json:"leased"`  // incomplete cells under at least one active lease
	Pending   int `json:"pending"` // incomplete cells under no lease
	Exhausted int `json:"exhausted"`
	Retries   int `json:"retries"` // lease expiries + failures so far

	Draining bool        `json:"draining"`
	Leases   []LeaseInfo `json:"leases,omitempty"`

	// Quarantined counts corrupt cell files the coordinator's store has
	// moved aside this run — silent data-loss recovery made visible.
	Quarantined int64 `json:"quarantined,omitempty"`

	// MissingKeys lists cells that are out of retry budget (capped at 20;
	// Exhausted is the full count).
	MissingKeys []string `json:"missing_keys,omitempty"`

	// Health carries windowed control-plane rates and the cell-latency SLO
	// verdict, present once the coordinator's health ring has ticked.
	Health *HealthInfo `json:"health,omitempty"`
}

// Complete reports whether the campaign has nothing left to schedule.
func (s StatusResponse) Complete() bool { return s.Done+s.Exhausted == s.Total }

// Transport is the worker's view of the coordinator. The HTTP client and the
// in-process loopback both implement it, which is what lets the fault
// harness wrap either one and chaos tests run without real processes. The
// error return is transport failure only (connection refused, coordinator
// down); protocol-level rejections ride in the response types.
type Transport interface {
	Lease(LeaseRequest) (LeaseResponse, error)
	Heartbeat(HeartbeatRequest) (HeartbeatResponse, error)
	Complete(CompleteRequest) (CompleteResponse, error)
	Fail(FailRequest) (FailResponse, error)
	Status() (StatusResponse, error)
}

// PayloadSum digests a completion payload: sha256 over the canonical JSON of
// the cell results. Workers seal payloads with it; the coordinator recomputes
// and refuses mismatches.
func PayloadSum(cells []campaign.CellResult) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	if err := enc.Encode(cells); err != nil {
		// CellResult is a fixed schema of scalars; encoding cannot fail.
		panic(fmt.Sprintf("coord: encoding completion payload: %v", err))
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
