package coord

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dcra/internal/campaign"
	"dcra/internal/obs"
)

// ErrKilled is returned by a fault-injection hook to simulate a hard worker
// crash: the worker exits mid-lease without failing or surrendering it, so
// only the coordinator's heartbeat deadline can reclaim the work.
var ErrKilled = errors.New("coord: worker killed (injected fault)")

// RunnerFactory builds the cell evaluator for a campaign's measurement
// protocol. Workers carry no protocol flags of their own: the first lease
// tells them the campaign's warmup/measure/seed and the factory builds a
// matching runner (the CLI builds an experiments.Suite; tests use doubles).
type RunnerFactory func(p campaign.Params) (campaign.Runner, error)

// WorkerHooks are fault-injection points; nil hooks are skipped.
type WorkerHooks struct {
	// BeforeCell runs before the worker's n-th cell (counted across leases).
	// Returning an error aborts the worker as if it crashed: no Fail call,
	// no cleanup, mirroring a kill -9.
	BeforeCell func(n int, c campaign.Cell) error
}

// Worker pulls leases from a coordinator, computes cells and streams each
// result home as it finishes (so a crash loses at most the cell in flight).
// A heartbeat goroutine keeps each lease alive while computing. Transport
// errors — a restarting coordinator — are retried with exponential backoff
// before giving up.
type Worker struct {
	ID        string
	Transport Transport
	NewRunner RunnerFactory

	// Clock defaults to the wall clock.
	Clock Clock
	// RetryWindow bounds how long consecutive transport failures are
	// retried before the worker gives up (default 60s).
	RetryWindow time.Duration
	// Hooks inject faults; zero value injects nothing.
	Hooks WorkerHooks
	// Flight, when set, records the worker's lease/cell lifecycle into a
	// bounded ring for postmortem dumps on failure; nil disables.
	Flight *obs.FlightRecorder

	// Cells counts cells computed; Missing is the coordinator's count of
	// given-up cells when the campaign ended. Valid after Run returns.
	Cells   int
	Missing int

	runner campaign.Runner
	params campaign.Params
}

func (w *Worker) clock() Clock {
	if w.Clock == nil {
		return realClock{}
	}
	return w.Clock
}

// Run serves the campaign until the coordinator reports it done (returns
// nil), the transport stays down past RetryWindow, or a fault hook kills the
// worker.
func (w *Worker) Run() error {
	retryWindow := w.RetryWindow
	if retryWindow <= 0 {
		retryWindow = 60 * time.Second
	}
	var downSince time.Time
	backoff := 50 * time.Millisecond
	for {
		resp, err := w.Transport.Lease(LeaseRequest{Worker: w.ID})
		if err != nil {
			now := w.clock().Now()
			if downSince.IsZero() {
				downSince = now
			} else if now.Sub(downSince) > retryWindow {
				w.Flight.Record("outage", "coordinator unreachable for %v, giving up: %v", now.Sub(downSince), err)
				return fmt.Errorf("coord: worker %s: coordinator unreachable for %v: %w", w.ID, now.Sub(downSince), err)
			}
			w.clock().Sleep(backoff)
			backoff = min(2*backoff, 2*time.Second)
			continue
		}
		downSince, backoff = time.Time{}, 50*time.Millisecond
		switch resp.State {
		case StateDone:
			w.Missing = resp.Missing
			return nil
		case StateWait:
			w.clock().Sleep(time.Duration(resp.RetryMs) * time.Millisecond)
		case StateLease:
			if err := w.serve(resp.Grant); err != nil {
				return err
			}
		default:
			return fmt.Errorf("coord: worker %s: unknown lease state %q", w.ID, resp.State)
		}
	}
}

// serve computes one lease's cells. Compute errors and rejected completions
// surrender the lease (Fail) and return nil — the worker moves on to the
// next lease; the coordinator owns the retry. Only injected kills propagate.
func (w *Worker) serve(g *Grant) error {
	w.Flight.Record("lease", "lease %s: %d cells [%d,%d), attempt %d", g.LeaseID, len(g.Cells), g.Range[0], g.Range[1], g.Attempt)
	if w.runner == nil || w.params != g.Params {
		r, err := w.NewRunner(g.Params)
		if err != nil {
			return fmt.Errorf("coord: worker %s: building runner for %+v: %w", w.ID, g.Params, err)
		}
		w.runner, w.params = r, g.Params
	}

	// Heartbeat at a third of the TTL until the lease's work is over or the
	// coordinator cancels it (drain, or a twin finished the range first).
	cancel := make(chan struct{})
	stop := make(chan struct{})
	var once sync.Once
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			w.clock().Sleep(g.TTL() / 3)
			select {
			case <-stop:
				return
			default:
			}
			resp, err := w.Transport.Heartbeat(HeartbeatRequest{Worker: w.ID, LeaseID: g.LeaseID})
			if err == nil && resp.Cancel {
				once.Do(func() { close(cancel) })
				return
			}
		}
	}()
	defer func() {
		close(stop)
		hb.Wait()
	}()

	for i, cell := range g.Cells {
		select {
		case <-cancel:
			return nil
		default:
		}
		if hook := w.Hooks.BeforeCell; hook != nil {
			if err := hook(w.Cells, cell); err != nil {
				return err
			}
		}
		t0 := w.clock().Now()
		r, err := w.runner.RunCell(cell)
		if err != nil {
			w.Flight.Record("cell-failed", "cell %s: %v", cell, err)
			w.Transport.Fail(FailRequest{Worker: w.ID, LeaseID: g.LeaseID, Reason: err.Error()})
			return nil
		}
		elapsed := w.clock().Now().Sub(t0)
		w.Cells++
		cells := []campaign.CellResult{{Key: cell.Key(), Cell: cell, Result: r}}
		req := CompleteRequest{
			Worker:  w.ID,
			LeaseID: g.LeaseID,
			Done:    i == len(g.Cells)-1,
			Cells:   cells,
			Sum:     PayloadSum(cells),
			CellMs:  []float64{float64(elapsed.Microseconds()) / 1e3},
		}
		resp, err := w.Transport.Complete(req)
		if err != nil {
			// Transport broke mid-lease: abandon it; undelivered cells are
			// recomputed under the re-lease.
			w.Flight.Record("abandon", "lease %s: completion transport error: %v", g.LeaseID, err)
			return nil
		}
		if !resp.OK {
			w.Flight.Record("rejected", "lease %s: completion rejected: %s", g.LeaseID, resp.Reason)
			w.Transport.Fail(FailRequest{Worker: w.ID, LeaseID: g.LeaseID, Reason: "completion rejected: " + resp.Reason})
			return nil
		}
	}
	return nil
}
