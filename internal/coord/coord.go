// Package coord is the campaign control plane: a coordinator leases
// contiguous cell ranges of one experiment's sweep to worker processes,
// tracks lease heartbeats against deadlines, reclaims and re-leases expired
// or failed ranges with exponential backoff and seeded jitter under a
// per-cell retry budget, re-dispatches stragglers speculatively, and streams
// completed cells into the campaign store as they arrive. Coordinator state
// is checkpointed to disk so a killed coordinator resumes exactly where it
// left off: completion is re-derived from the store itself (the durable
// record), retry accounting from the checkpoint, and lost leases simply
// expire into re-leases.
//
// Everything is duplicate-safe by construction. The store's content-keyed
// atomic Put makes double-completion idempotent, so speculative re-dispatch,
// late completions from expired leases and coordinator restarts can only
// waste work, never corrupt results: a coordinated campaign's store is
// bit-identical to a single-process run (asserted by the chaos tests).
package coord

import (
	"fmt"
	"sync"
	"time"

	"dcra/internal/campaign"
	"dcra/internal/obs"
	"dcra/internal/rng"
)

// Clock abstracts wall time so tests can compress lease TTLs and backoff
// windows; the zero value of every consumer uses the real clock.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// RealClock returns the wall clock.
func RealClock() Clock { return realClock{} }

// Options tune the coordinator. The zero value gets sensible defaults.
type Options struct {
	// RangeSize is the number of cells per lease (default 8).
	RangeSize int
	// LeaseTTL is the heartbeat deadline: a lease not heartbeated for this
	// long is reclaimed and its incomplete cells re-leased (default 15s).
	LeaseTTL time.Duration
	// RetryBudget is the per-cell attempt budget: a cell whose leases have
	// failed or expired this many times is given up on and reported missing
	// (default 5).
	RetryBudget int
	// BackoffBase/BackoffMax bound the exponential backoff applied to a
	// range after each failure: base*2^(attempt-1), jittered to [50%,150%]
	// by the seeded RNG, capped at max (defaults 500ms, 30s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// SpeculateAfter re-dispatches stragglers: when an idle worker asks for
	// work and no range is pending, a range whose sole lease has been out
	// longer than this is leased a second time (default 2*LeaseTTL).
	SpeculateAfter time.Duration
	// PollInterval is the retry hint handed to workers when nothing is
	// leasable right now (default 500ms).
	PollInterval time.Duration
	// Seed fixes the backoff jitter stream (default 1).
	Seed uint64
	// Clock defaults to the wall clock; chaos tests compress time.
	Clock Clock
	// Checkpoint is the path retry accounting is persisted to after every
	// state change; empty disables checkpointing (restart then resets retry
	// budgets but still resumes completion from the store).
	Checkpoint string
	// Logf, when set, receives one line per control-plane event (lease,
	// expiry, rejection, ...).
	Logf func(format string, args ...any)
	// Obs, when set, receives control-plane metrics (leases granted/
	// expired/failed, re-leases, heartbeats, speculative dispatches,
	// payload verify failures, per-worker cell throughput). The HTTP
	// handler additionally serves its snapshot at /metrics.
	Obs *obs.Registry
	// Tracer, when set, records lease lifecycles and worker-reported
	// cell execution as Chrome trace-event spans, one lane per worker.
	Tracer *obs.Tracer
	// Flight, when set, receives control-plane events (lease grants,
	// expiries, retries, exhaustions, rejected payloads, drains, SLO
	// breaches) into a bounded ring; abort paths dump it for postmortems.
	Flight *obs.FlightRecorder
	// CellSLO, when declared (and Obs is set), is the wall-clock
	// cell-latency objective HealthTick evaluates over the health ring.
	CellSLO CellSLO
}

func (o Options) withDefaults() Options {
	if o.RangeSize <= 0 {
		o.RangeSize = 8
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 15 * time.Second
	}
	if o.RetryBudget <= 0 {
		o.RetryBudget = 5
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 500 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 30 * time.Second
	}
	if o.SpeculateAfter <= 0 {
		o.SpeculateAfter = 2 * o.LeaseTTL
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 500 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Clock == nil {
		o.Clock = realClock{}
	}
	return o
}

// cellState tracks one cell's lifecycle.
type cellState struct {
	cell      campaign.Cell
	key       string
	done      bool
	attempts  int
	exhausted bool
}

// rangeState tracks one contiguous lease unit of the canonical cell order.
type rangeState struct {
	start, end int
	attempts   int       // failed leases so far, drives backoff
	notBefore  time.Time // backoff gate; zero = leasable now
}

// lease is one outstanding grant.
type lease struct {
	id       string
	worker   string
	r        int
	cells    []int // indices incomplete at issue time
	issued   time.Time
	deadline time.Time
}

// Coordinator runs one campaign. All methods are safe for concurrent use;
// the HTTP handler and the in-process loopback call them directly.
type Coordinator struct {
	opts     Options
	name     string
	hash     string
	store    *campaign.Store
	cellByKy map[string]int

	mu       sync.Mutex
	cells    []cellState
	ranges   []rangeState
	leases   map[string]*lease
	leaseSeq int
	jitter   *rng.Source
	draining bool
	done     int
	exhaust  int
	retries  int

	o      coordObs
	lanes  map[string]int // trace lane per worker, in first-contact order
	health *obs.Ring      // wall-clock ring of Obs snapshots; nil uninstrumented
}

// Trace pid lane groups of a coordinator trace: lease lifecycles and
// worker-reported cell execution, one tid per worker in each group.
const (
	TracePIDLeases = 0
	TracePIDCells  = 1
)

// coordObs holds the coordinator's pre-resolved instruments; the zero
// value (nil counters) is the disabled state.
type coordObs struct {
	leasesGranted, leasesExpired, leasesFailed, speculated *obs.Counter
	heartbeats, verifyFailures                             *obs.Counter
	cellsDone, cellsDuplicate, sloBreaches                 *obs.Counter
	cellUS                                                 *obs.Histogram
}

// laneForLocked returns worker's stable trace lane, naming it in both
// pid groups on first contact.
func (c *Coordinator) laneForLocked(worker string) int {
	lane, ok := c.lanes[worker]
	if !ok {
		lane = len(c.lanes)
		c.lanes[worker] = lane
		c.opts.Tracer.Lane(TracePIDLeases, lane, worker)
		c.opts.Tracer.Lane(TracePIDCells, lane, worker)
	}
	return lane
}

// traceLeaseLocked closes a lease's lifecycle span: issue to now, on
// the owning worker's lane.
func (c *Coordinator) traceLeaseLocked(l *lease, now time.Time, outcome string) {
	tr := c.opts.Tracer
	if tr == nil {
		return
	}
	name := fmt.Sprintf("lease %s r%d %s", l.id, l.r, outcome)
	tr.CompleteAt(TracePIDLeases, c.laneForLocked(l.worker), name, "lease",
		tr.Since(l.issued), float64(now.Sub(l.issued).Microseconds()))
}

// New builds a coordinator for one experiment sweep over the given store.
// The sweep's distinct cells, in enumeration order, form the canonical cell
// order ranges are cut from — deterministic, so a restarted coordinator cuts
// identical ranges. Cells already in the store count as done immediately
// (resumption, or a partially merged earlier campaign); a checkpoint file at
// opts.Checkpoint, if present, must describe the same campaign and restores
// retry accounting.
func New(name string, sweep campaign.Sweep, st *campaign.Store, opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	c := &Coordinator{
		opts:     opts,
		name:     name,
		hash:     sweep.Hash(),
		store:    st,
		cellByKy: make(map[string]int),
		leases:   make(map[string]*lease),
		jitter:   rng.New(opts.Seed ^ 0xc00d),
		lanes:    make(map[string]int),
	}
	c.o = coordObs{
		leasesGranted:  opts.Obs.Counter("coord.leases.granted"),
		leasesExpired:  opts.Obs.Counter("coord.leases.expired"),
		leasesFailed:   opts.Obs.Counter("coord.leases.failed"),
		speculated:     opts.Obs.Counter("coord.leases.speculated"),
		heartbeats:     opts.Obs.Counter("coord.heartbeats"),
		verifyFailures: opts.Obs.Counter("coord.verify.failures"),
		cellsDone:      opts.Obs.Counter("coord.cells.done"),
		cellsDuplicate: opts.Obs.Counter("coord.cells.duplicate"),
		sloBreaches:    opts.Obs.Counter("coord.slo.breaches"),
		cellUS:         opts.Obs.Histogram("coord.cell.us", obs.DurationBounds),
	}
	if opts.Obs != nil {
		c.health = obs.NewRing(coordHealthRingCap)
	}
	opts.Tracer.Process(TracePIDLeases, "coordinator leases")
	opts.Tracer.Process(TracePIDCells, "worker cells")
	seen := make(map[campaign.Cell]struct{}, len(sweep.Cells))
	for _, cell := range sweep.Cells {
		if _, dup := seen[cell]; dup {
			continue
		}
		seen[cell] = struct{}{}
		cs := cellState{cell: cell, key: cell.Key(), done: st.Has(cell)}
		if cs.done {
			c.done++
		}
		c.cellByKy[cs.key] = len(c.cells)
		c.cells = append(c.cells, cs)
	}
	if len(c.cells) == 0 {
		return nil, fmt.Errorf("coord: campaign %s has no cells", name)
	}
	for start := 0; start < len(c.cells); start += opts.RangeSize {
		end := min(start+opts.RangeSize, len(c.cells))
		c.ranges = append(c.ranges, rangeState{start: start, end: end})
	}
	if err := c.loadCheckpoint(); err != nil {
		return nil, err
	}
	c.logf("campaign %s (%s): %d cells in %d ranges, %d already complete",
		name, c.hash, len(c.cells), len(c.ranges), c.done)
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// now returns the coordinator clock's current time.
func (c *Coordinator) now() time.Time { return c.opts.Clock.Now() }

// reapLocked expires overdue leases, re-queueing their incomplete cells.
func (c *Coordinator) reapLocked(now time.Time) {
	for id, l := range c.leases {
		if l.deadline.After(now) {
			continue
		}
		delete(c.leases, id)
		c.o.leasesExpired.Inc()
		c.traceLeaseLocked(l, now, "expired")
		c.flightf("lease-expired", "lease %s (%s, range %d) missed its heartbeat deadline", l.id, l.worker, l.r)
		c.failLeaseLocked(l, now, "lease expired")
	}
}

// failLeaseLocked charges a dead lease's incomplete cells one attempt each
// and puts the range behind an exponential-backoff gate.
func (c *Coordinator) failLeaseLocked(l *lease, now time.Time, why string) {
	incomplete := 0
	for _, i := range l.cells {
		cs := &c.cells[i]
		if cs.done || cs.exhausted {
			continue
		}
		incomplete++
		cs.attempts++
		if cs.attempts >= c.opts.RetryBudget {
			cs.exhausted = true
			c.exhaust++
			c.logf("cell %s exhausted its retry budget (%d attempts)", cs.cell, cs.attempts)
			c.flightf("cell-exhausted", "cell %s gave up after %d attempts", cs.cell, cs.attempts)
		}
	}
	r := &c.ranges[l.r]
	r.attempts++
	backoff := c.backoffLocked(r.attempts)
	r.notBefore = now.Add(backoff)
	c.retries++
	c.logf("lease %s (%s, range %d, %d cells left): %s; range backs off %v",
		l.id, l.worker, l.r, incomplete, why, backoff)
	c.flightf("retry", "lease %s (%s, range %d, %d cells left): %s; backoff %v",
		l.id, l.worker, l.r, incomplete, why, backoff)
	c.saveCheckpointLocked()
}

// backoffLocked computes the jittered exponential backoff for an attempt.
func (c *Coordinator) backoffLocked(attempt int) time.Duration {
	d := c.opts.BackoffBase
	for i := 1; i < attempt && d < c.opts.BackoffMax; i++ {
		d *= 2
	}
	d = min(d, c.opts.BackoffMax)
	// Jitter to [50%, 150%] so reclaimed ranges don't re-lease in lockstep.
	return d/2 + time.Duration(c.jitter.Float64()*float64(d))
}

// pendingLocked returns r's incomplete, unexhausted cell indices.
func (c *Coordinator) pendingLocked(r rangeState) []int {
	var idx []int
	for i := r.start; i < r.end; i++ {
		if !c.cells[i].done && !c.cells[i].exhausted {
			idx = append(idx, i)
		}
	}
	return idx
}

// leaseCountLocked counts active leases per range index.
func (c *Coordinator) leaseCountLocked() map[int]int {
	counts := make(map[int]int, len(c.leases))
	for _, l := range c.leases {
		counts[l.r]++
	}
	return counts
}

// Lease hands out the next leasable range: the first range with incomplete
// cells, no active lease and an elapsed backoff gate. When none is pending,
// a straggler range (sole lease older than SpeculateAfter) is speculatively
// double-leased; otherwise the worker is told to wait or, when every cell is
// done or given up on (or the coordinator is draining), to exit.
func (c *Coordinator) Lease(req LeaseRequest) LeaseResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.reapLocked(now)

	if c.draining || c.done+c.exhaust == len(c.cells) {
		return LeaseResponse{State: StateDone, Missing: len(c.cells) - c.done}
	}

	counts := c.leaseCountLocked()
	for ri, r := range c.ranges {
		if counts[ri] > 0 || r.notBefore.After(now) {
			continue
		}
		if idx := c.pendingLocked(r); len(idx) > 0 {
			return c.grantLocked(req.Worker, ri, idx, r.attempts, now)
		}
	}

	// Nothing pending: speculate on the oldest straggler not already
	// double-leased. First completion wins; the store makes the loser's
	// results harmless duplicates.
	var straggler *lease
	for _, l := range c.leases {
		if counts[l.r] != 1 || now.Sub(l.issued) < c.opts.SpeculateAfter {
			continue
		}
		if len(c.pendingLocked(c.ranges[l.r])) == 0 {
			continue
		}
		if straggler == nil || l.issued.Before(straggler.issued) {
			straggler = l
		}
	}
	if straggler != nil && straggler.worker != req.Worker {
		r := c.ranges[straggler.r]
		c.logf("straggler: range %d leased to %s for %v, re-dispatching to %s",
			straggler.r, straggler.worker, c.now().Sub(straggler.issued), req.Worker)
		c.o.speculated.Inc()
		c.flightf("speculate", "range %d straggling on %s for %v, re-dispatched to %s",
			straggler.r, straggler.worker, now.Sub(straggler.issued), req.Worker)
		return c.grantLocked(req.Worker, straggler.r, c.pendingLocked(r), r.attempts, now)
	}

	return LeaseResponse{State: StateWait, RetryMs: c.opts.PollInterval.Milliseconds()}
}

// grantLocked issues one lease over the given cell indices.
func (c *Coordinator) grantLocked(worker string, ri int, idx []int, attempt int, now time.Time) LeaseResponse {
	c.leaseSeq++
	l := &lease{
		id:       fmt.Sprintf("%s-%d", worker, c.leaseSeq),
		worker:   worker,
		r:        ri,
		cells:    idx,
		issued:   now,
		deadline: now.Add(c.opts.LeaseTTL),
	}
	c.leases[l.id] = l
	c.o.leasesGranted.Inc()
	g := &Grant{
		LeaseID:   l.id,
		Campaign:  c.name,
		SweepHash: c.hash,
		Params:    c.store.Params(),
		Range:     [2]int{c.ranges[ri].start, c.ranges[ri].end},
		Attempt:   attempt,
		TTLMs:     c.opts.LeaseTTL.Milliseconds(),
	}
	for _, i := range idx {
		g.Cells = append(g.Cells, c.cells[i].cell)
	}
	c.logf("lease %s: range %d [%d,%d) -> %s (%d cells, attempt %d)",
		l.id, ri, g.Range[0], g.Range[1], worker, len(g.Cells), attempt)
	c.flightf("lease", "lease %s: range %d [%d,%d) -> %s (%d cells, attempt %d)",
		l.id, ri, g.Range[0], g.Range[1], worker, len(g.Cells), attempt)
	return LeaseResponse{State: StateLease, Grant: g}
}

// Heartbeat extends a live lease's deadline.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) HeartbeatResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.reapLocked(now)
	l, ok := c.leases[req.LeaseID]
	if !ok {
		return HeartbeatResponse{OK: false}
	}
	c.o.heartbeats.Inc()
	l.deadline = now.Add(c.opts.LeaseTTL)
	// Cancel leases whose remaining work evaporated (a speculative twin or a
	// late completion finished the cells) and all leases while draining.
	cancel := c.draining
	if !cancel {
		cancel = true
		for _, i := range l.cells {
			if !c.cells[i].done && !c.cells[i].exhausted {
				cancel = false
				break
			}
		}
	}
	return HeartbeatResponse{OK: true, Cancel: cancel}
}

// Complete verifies and stores a completion payload. Integrity is checked
// twice: the payload digest must match (in-flight corruption) and every
// cell's recorded key must match its recomputed content key and belong to
// this campaign (wrong-campaign or hand-edited payloads). Valid completions
// are accepted even from expired or unknown leases — the work is done and
// the store write is idempotent, so late and duplicate arrivals are kept,
// never wasted.
func (c *Coordinator) Complete(req CompleteRequest) CompleteResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.reapLocked(now)

	if got := PayloadSum(req.Cells); got != req.Sum {
		c.logf("rejecting completion from %s (lease %s): payload digest %s, sealed %s",
			req.Worker, req.LeaseID, got, req.Sum)
		c.o.verifyFailures.Inc()
		c.flightf("reject", "completion from %s (lease %s): payload digest %s, sealed %s",
			req.Worker, req.LeaseID, got, req.Sum)
		return CompleteResponse{Reason: "payload digest mismatch"}
	}
	for _, cr := range req.Cells {
		if got := cr.Cell.Key(); got != cr.Key {
			c.o.verifyFailures.Inc()
			return CompleteResponse{Reason: fmt.Sprintf("cell %s recorded under key %s (recomputed %s)", cr.Cell, cr.Key, got)}
		}
		if _, ok := c.cellByKy[cr.Key]; !ok {
			c.o.verifyFailures.Inc()
			return CompleteResponse{Reason: fmt.Sprintf("cell %s is not part of campaign %s", cr.Cell, c.name)}
		}
	}
	for ci, cr := range req.Cells {
		i := c.cellByKy[cr.Key]
		cs := &c.cells[i]
		c.traceCellLocked(req, ci, now)
		if cs.done {
			c.o.cellsDuplicate.Inc()
			continue // duplicate (speculation or late completion): idempotent
		}
		if err := c.store.Put(cr.Cell, cr.Result); err != nil {
			return CompleteResponse{Reason: fmt.Sprintf("storing cell: %v", err)}
		}
		cs.done = true
		if cs.exhausted {
			// A late completion rescued a given-up cell.
			cs.exhausted = false
			c.exhaust--
		}
		c.done++
		c.o.cellsDone.Inc()
		c.opts.Obs.Counter("coord.worker.cells." + req.Worker).Inc()
	}
	if req.Done {
		if l, ok := c.leases[req.LeaseID]; ok {
			c.traceLeaseLocked(l, now, "done")
			delete(c.leases, req.LeaseID)
		}
	}
	return CompleteResponse{OK: true}
}

// traceCellLocked records the worker-reported execution span of one
// completed cell: the worker measured the duration, the coordinator
// anchors it so the span ends at receipt time. Workers without timings
// (an older binary) simply yield no cell spans.
func (c *Coordinator) traceCellLocked(req CompleteRequest, ci int, now time.Time) {
	if ci >= len(req.CellMs) {
		return
	}
	us := int64(req.CellMs[ci] * 1e3)
	c.o.cellUS.Observe(us)
	tr := c.opts.Tracer
	if tr == nil {
		return
	}
	end := tr.Since(now)
	tr.CompleteAt(TracePIDCells, c.laneForLocked(req.Worker),
		"cell "+req.Cells[ci].Cell.String(), "cell", end-float64(us), float64(us))
}

// Fail surrenders a lease: its incomplete cells are charged an attempt and
// re-queued behind the range's backoff gate.
func (c *Coordinator) Fail(req FailRequest) FailResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.reapLocked(now)
	if l, ok := c.leases[req.LeaseID]; ok {
		delete(c.leases, req.LeaseID)
		c.o.leasesFailed.Inc()
		c.traceLeaseLocked(l, now, "failed")
		c.flightf("lease-failed", "lease %s surrendered by %s: %s", l.id, l.worker, req.Reason)
		c.failLeaseLocked(l, now, "worker failed: "+req.Reason)
	}
	return FailResponse{OK: true}
}

// Status reports live progress.
func (c *Coordinator) Status() StatusResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.reapLocked(now)

	resp := StatusResponse{
		Campaign:    c.name,
		SweepHash:   c.hash,
		Params:      c.store.Params(),
		Total:       len(c.cells),
		Done:        c.done,
		Exhausted:   c.exhaust,
		Retries:     c.retries,
		Draining:    c.draining,
		Quarantined: c.store.Quarantined(),
		Health:      c.healthLocked(),
	}
	leased := make(map[int]bool)
	for _, l := range c.leases {
		for _, i := range l.cells {
			leased[i] = true
		}
		resp.Leases = append(resp.Leases, LeaseInfo{
			LeaseID:  l.id,
			Worker:   l.worker,
			Range:    [2]int{c.ranges[l.r].start, c.ranges[l.r].end},
			AgeMs:    now.Sub(l.issued).Milliseconds(),
			ExpireMs: l.deadline.Sub(now).Milliseconds(),
		})
	}
	for i, cs := range c.cells {
		switch {
		case cs.done:
		case cs.exhausted:
			if len(resp.MissingKeys) < 20 {
				resp.MissingKeys = append(resp.MissingKeys, cs.key)
			}
		case leased[i]:
			resp.Leased++
		default:
			resp.Pending++
		}
	}
	return resp
}

// Obs returns the registry the coordinator was built with (nil when
// uninstrumented); the HTTP handler serves its snapshot at /metrics.
func (c *Coordinator) Obs() *obs.Registry { return c.opts.Obs }

// Drain stops the coordinator handing out work: subsequent lease requests
// answer StateDone and heartbeats ask their workers to abandon. In-flight
// completions are still accepted, so WaitIdle can harvest what finishes
// within the grace window.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.draining {
		c.draining = true
		c.logf("draining: no further leases; %d/%d cells complete", c.done, len(c.cells))
		c.flightf("drain", "draining: no further leases; %d/%d cells complete", c.done, len(c.cells))
	}
}

// WaitIdle blocks until no leases are outstanding (their workers completed,
// failed or expired) or the grace period elapses.
func (c *Coordinator) WaitIdle(grace time.Duration) {
	deadline := c.now().Add(grace)
	for {
		c.mu.Lock()
		c.reapLocked(c.now())
		idle := len(c.leases) == 0
		c.mu.Unlock()
		if idle || !c.now().Before(deadline) {
			return
		}
		c.opts.Clock.Sleep(min(50*time.Millisecond, grace/10+time.Millisecond))
	}
}

// Missing returns the cells not in the store, in canonical order.
func (c *Coordinator) Missing() []campaign.Cell {
	c.mu.Lock()
	defer c.mu.Unlock()
	var missing []campaign.Cell
	for _, cs := range c.cells {
		if !cs.done {
			missing = append(missing, cs.cell)
		}
	}
	return missing
}
