package coord

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"dcra/internal/obs"
)

// HTTP wire paths. The coordinator serves them; HTTPTransport calls them.
const (
	pathLease     = "/v1/lease"
	pathHeartbeat = "/v1/heartbeat"
	pathComplete  = "/v1/complete"
	pathFail      = "/v1/fail"
	pathStatus      = "/v1/status"
	pathMetrics     = "/metrics"
	pathMetricsProm = "/metrics.prom"
)

// NewHTTPHandler exposes a coordinator over HTTP: JSON requests in, JSON
// responses out, one path per Transport method.
func NewHTTPHandler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+pathLease, func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, r, c.Lease)
	})
	mux.HandleFunc("POST "+pathHeartbeat, func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, r, c.Heartbeat)
	})
	mux.HandleFunc("POST "+pathComplete, func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, r, c.Complete)
	})
	mux.HandleFunc("POST "+pathFail, func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, r, c.Fail)
	})
	mux.HandleFunc("GET "+pathStatus, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Status())
	})
	// Live introspection: a deterministic JSON snapshot of the
	// coordinator's metrics registry (an empty object when the
	// coordinator runs uninstrumented) and the standard pprof surface,
	// mounted explicitly — the coordinator mux never touches
	// DefaultServeMux.
	mux.HandleFunc("GET "+pathMetrics, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		c.Obs().Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("GET "+pathMetricsProm, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.PromContentType)
		c.Obs().Snapshot().WriteProm(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveJSON decodes one request body, applies handle and writes the reply.
func serveJSON[Req, Resp any](w http.ResponseWriter, r *http.Request, handle func(Req) Resp) {
	var req Req
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("decoding request: %v", err), http.StatusBadRequest)
		return
	}
	writeJSON(w, handle(req))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The response writer already committed; nothing useful to do.
		return
	}
}

// HTTPTransport is the worker-side client of a coordinator's HTTP API.
type HTTPTransport struct {
	// Base is the coordinator's base URL, e.g. "http://10.0.0.5:8344".
	Base string
	// Client defaults to a client with a 2-minute timeout (completion
	// payloads can be large; leases and heartbeats are tiny).
	Client *http.Client
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return &http.Client{Timeout: 2 * time.Minute}
}

func (t *HTTPTransport) url(path string) string {
	return strings.TrimSuffix(t.Base, "/") + path
}

// post round-trips one JSON request.
func post[Req, Resp any](t *HTTPTransport, path string, req Req) (Resp, error) {
	var resp Resp
	body, err := json.Marshal(req)
	if err != nil {
		return resp, fmt.Errorf("coord: encoding %s request: %w", path, err)
	}
	hr, err := t.client().Post(t.url(path), "application/json", bytes.NewReader(body))
	if err != nil {
		return resp, err
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hr.Body, 4096))
		return resp, fmt.Errorf("coord: %s: %s: %s", path, hr.Status, bytes.TrimSpace(msg))
	}
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		return resp, fmt.Errorf("coord: decoding %s response: %w", path, err)
	}
	return resp, nil
}

func (t *HTTPTransport) Lease(req LeaseRequest) (LeaseResponse, error) {
	return post[LeaseRequest, LeaseResponse](t, pathLease, req)
}

func (t *HTTPTransport) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	return post[HeartbeatRequest, HeartbeatResponse](t, pathHeartbeat, req)
}

func (t *HTTPTransport) Complete(req CompleteRequest) (CompleteResponse, error) {
	return post[CompleteRequest, CompleteResponse](t, pathComplete, req)
}

func (t *HTTPTransport) Fail(req FailRequest) (FailResponse, error) {
	return post[FailRequest, FailResponse](t, pathFail, req)
}

func (t *HTTPTransport) Status() (StatusResponse, error) {
	var resp StatusResponse
	hr, err := t.client().Get(t.url(pathStatus))
	if err != nil {
		return resp, err
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		return resp, fmt.Errorf("coord: %s: %s", pathStatus, hr.Status)
	}
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		return resp, fmt.Errorf("coord: decoding status: %w", err)
	}
	return resp, nil
}
