package coord

import (
	"errors"
	"sync/atomic"
)

// ErrUnreachable is what a Loopback returns while its coordinator is down,
// standing in for the HTTP transport's connection-refused errors.
var ErrUnreachable = errors.New("coord: coordinator unreachable")

// Loopback is the in-process Transport: calls go straight to a coordinator,
// no sockets, no serialization. The target is swappable — Swap(nil) takes
// the coordinator "down", Swap(next) brings a restarted one up — so chaos
// tests model coordinator crashes and restarts inside a single `go test`
// process. It implements the same Transport interface as HTTPTransport,
// which is the seam the fault harness wraps.
type Loopback struct {
	c atomic.Pointer[Coordinator]
}

// NewLoopback wires a loopback transport to c.
func NewLoopback(c *Coordinator) *Loopback {
	l := &Loopback{}
	l.c.Store(c)
	return l
}

// Swap repoints the transport; nil simulates a dead coordinator.
func (l *Loopback) Swap(c *Coordinator) { l.c.Store(c) }

func (l *Loopback) Lease(req LeaseRequest) (LeaseResponse, error) {
	c := l.c.Load()
	if c == nil {
		return LeaseResponse{}, ErrUnreachable
	}
	return c.Lease(req), nil
}

func (l *Loopback) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	c := l.c.Load()
	if c == nil {
		return HeartbeatResponse{}, ErrUnreachable
	}
	return c.Heartbeat(req), nil
}

func (l *Loopback) Complete(req CompleteRequest) (CompleteResponse, error) {
	c := l.c.Load()
	if c == nil {
		return CompleteResponse{}, ErrUnreachable
	}
	return c.Complete(req), nil
}

func (l *Loopback) Fail(req FailRequest) (FailResponse, error) {
	c := l.c.Load()
	if c == nil {
		return FailResponse{}, ErrUnreachable
	}
	return c.Fail(req), nil
}

func (l *Loopback) Status() (StatusResponse, error) {
	c := l.c.Load()
	if c == nil {
		return StatusResponse{}, ErrUnreachable
	}
	return c.Status(), nil
}
