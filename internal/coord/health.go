package coord

import (
	"dcra/internal/obs"
)

// coordHealthRingCap bounds the coordinator's wall-clock health ring: at the
// default 2s tick that is ~8.5 minutes of history, enough for `campaign top`
// windows and the status report without unbounded growth.
const coordHealthRingCap = 256

// CellSLO declares the coordinator's wall-clock cell-latency objective: the
// Quantile-quantile of worker-reported cell execution time (coord.cell.us),
// over the last Window health intervals, must stay at or below TargetMs.
// The zero value disables the objective.
type CellSLO struct {
	Quantile float64 `json:"quantile"`
	TargetMs int64   `json:"target_ms"`
	Window   int     `json:"window"` // health intervals; <= 0 means all history held
}

// Enabled reports whether the objective is declared.
func (s CellSLO) Enabled() bool { return s.Quantile > 0 && s.TargetMs > 0 }

// HealthInfo is the windowed-health slice of a status report: recent
// control-plane rates derived from the coordinator's time-series ring, plus
// the cell-latency SLO verdict when one is declared.
type HealthInfo struct {
	Intervals int   `json:"intervals"` // intervals currently held
	WindowMs  int64 `json:"window_ms"` // span the rates below cover

	CellsDone     int64   `json:"cells_done"` // within the window
	CellsPerSec   float64 `json:"cells_per_sec"`
	LeasesGranted int64   `json:"leases_granted"`
	LeasesExpired int64   `json:"leases_expired"`
	LeasesFailed  int64   `json:"leases_failed"`
	Speculated    int64   `json:"speculated"`
	Heartbeats    int64   `json:"heartbeats"`

	SLO *obs.SLOStatus `json:"slo,omitempty"`
}

// HealthTick snapshots the coordinator's metrics registry into its
// wall-clock health ring. The caller owns the cadence (cmdCoordinate ticks
// on its wait loop); without an Obs registry the tick is a no-op. A breach
// of the declared cell SLO is charged to coord.slo.breaches and recorded in
// the flight recorder once per breaching tick.
func (c *Coordinator) HealthTick() {
	if c.health == nil {
		return
	}
	c.health.Record(c.now().UnixMilli(), c.opts.Obs.Snapshot())
	if !c.opts.CellSLO.Enabled() {
		return
	}
	st := c.health.EvalSLO(obs.SLO{
		Metric:   "coord.cell.us",
		Quantile: c.opts.CellSLO.Quantile,
		Target:   c.opts.CellSLO.TargetMs * 1_000, // the histogram is microseconds
		Window:   c.opts.CellSLO.Window,
	})
	if st.Met || st.Observations == 0 {
		return
	}
	c.o.sloBreaches.Inc()
	c.flightf("slo-breach", "cell latency p%g=%.0fus over target %dms: attained %.4f of %d cells, burn %.2fx",
		c.opts.CellSLO.Quantile*100, st.QuantileValue, c.opts.CellSLO.TargetMs,
		st.Attained, st.Observations, st.Burn)
}

// healthLocked assembles the status report's health slice from the ring:
// deltas over the trailing window (up to the whole ring) plus the SLO
// verdict. Nil when the coordinator runs uninstrumented or never ticked.
func (c *Coordinator) healthLocked() *HealthInfo {
	if c.health == nil || c.health.Len() == 0 {
		return nil
	}
	// For rates, the window is clamped to "oldest held interval to newest"
	// — both an unbounded window and one wider than the history held would
	// otherwise hit Window's zero baseline and date the span from the
	// epoch. A single interval has no measurable span; its cumulative
	// counts are still reported, with the rate left at zero.
	win := c.opts.CellSLO.Window
	if win <= 0 || win > c.health.Len()-1 {
		win = c.health.Len() - 1
	}
	delta, fromMs, toMs, ok := c.health.Window(win)
	if !ok {
		return nil
	}
	if win == 0 {
		fromMs = toMs
	}
	h := &HealthInfo{
		Intervals:     c.health.Len(),
		WindowMs:      toMs - fromMs,
		CellsDone:     delta.Counters["coord.cells.done"],
		LeasesGranted: delta.Counters["coord.leases.granted"],
		LeasesExpired: delta.Counters["coord.leases.expired"],
		LeasesFailed:  delta.Counters["coord.leases.failed"],
		Speculated:    delta.Counters["coord.leases.speculated"],
		Heartbeats:    delta.Counters["coord.heartbeats"],
	}
	if h.WindowMs > 0 {
		h.CellsPerSec = float64(h.CellsDone) / (float64(h.WindowMs) / 1e3)
	}
	if c.opts.CellSLO.Enabled() {
		st := c.health.EvalSLO(obs.SLO{
			Metric:   "coord.cell.us",
			Quantile: c.opts.CellSLO.Quantile,
			Target:   c.opts.CellSLO.TargetMs * 1_000,
			Window:   c.opts.CellSLO.Window, // the declared window, as HealthTick judges it
		})
		h.SLO = &st
	}
	return h
}

// flightf records one control-plane event in the flight recorder; a no-op
// without one.
func (c *Coordinator) flightf(kind, format string, args ...any) {
	c.opts.Flight.Record(kind, format, args...)
}

// Flight returns the recorder the coordinator was built with (nil when
// disabled); abort paths dump it.
func (c *Coordinator) Flight() *obs.FlightRecorder { return c.opts.Flight }
