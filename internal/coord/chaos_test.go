package coord_test

import (
	"fmt"
	"testing"
	"time"

	"dcra/internal/campaign"
	"dcra/internal/coord"
	"dcra/internal/coord/faults"
)

// TestChaosMatrixBitIdentical is the contract the whole control plane is
// built around: every fault plan (kind × seed), injected into a 3-worker
// in-process fleet, must end with a store bit-identical to an unfaulted
// single-process run — 100% of cells present, every byte equal. Crashes,
// expiries, stragglers, corruption and coordinator restarts may only cost
// duplicated work, never results.
func TestChaosMatrixBitIdentical(t *testing.T) {
	const workers = 3
	sweep := chaosSweep(18)
	want := referenceCells(t, sweep)

	for _, kind := range faults.Kinds() {
		for _, seed := range []uint64{1, 2} {
			t.Run(fmt.Sprintf("%s/seed%d", kind, seed), func(t *testing.T) {
				t.Parallel()
				f := faults.Derive(kind, seed, workers, 120*time.Millisecond)
				t.Logf("fault plan: %s", f)

				dir := t.TempDir()
				st, err := campaign.Open(dir, chaosParams)
				if err != nil {
					t.Fatal(err)
				}
				opts := fastOpts(t, dir, seed)
				co, err := coord.New("chaos", sweep, st, opts)
				if err != nil {
					t.Fatal(err)
				}
				lb := coord.NewLoopback(co)
				runner := newSlowRunner(10 * time.Millisecond)

				// CoordinatorRestart is a harness-level fault: kill the
				// coordinator once the campaign-wide completion count
				// reaches the trigger, keep it down long enough for workers
				// to notice, then restart it from checkpoint + store.
				restartDone := make(chan struct{})
				if f.Kind == faults.CoordinatorRestart {
					go func() {
						defer close(restartDone)
						for co.Status().Done < f.After {
							time.Sleep(2 * time.Millisecond)
						}
						lb.Swap(nil)
						time.Sleep(30 * time.Millisecond)
						st2, err := campaign.Open(dir, chaosParams)
						if err != nil {
							t.Errorf("reopening store: %v", err)
							return
						}
						co2, err := coord.New("chaos", sweep, st2, opts)
						if err != nil {
							t.Errorf("restarting coordinator: %v", err)
							return
						}
						lb.Swap(co2)
					}()
				} else {
					close(restartDone)
				}

				done := make(chan error, workers)
				for i := 0; i < workers; i++ {
					w := &coord.Worker{
						ID:        fmt.Sprintf("w%d", i),
						Transport: lb,
						NewRunner: runnerFactory(runner),
					}
					if f.Kind != faults.CoordinatorRestart && f.Worker == i {
						in := faults.NewInjector(f, nil)
						w.Hooks = in.Hooks()
						w.Transport = in.Wrap(lb)
					}
					go func() { done <- w.Run() }()
				}
				for i := 0; i < workers; i++ {
					if err := <-done; err != nil && err != coord.ErrKilled {
						t.Errorf("worker exited: %v", err)
					}
				}
				<-restartDone

				assertStoresIdentical(t, want, readCells(t, dir))
			})
		}
	}
}
