package faults

import (
	"testing"
	"time"
)

func TestDeriveDeterministic(t *testing.T) {
	for _, kind := range Kinds() {
		a := Derive(kind, 7, 3, time.Second)
		b := Derive(kind, 7, 3, time.Second)
		if a != b {
			t.Errorf("%s: same seed derived %v and %v", kind, a, b)
		}
		if a.Worker < 0 || a.Worker >= 3 {
			t.Errorf("%s: worker %d out of fleet range", kind, a.Worker)
		}
		if a.After < 1 || a.After > 3 {
			t.Errorf("%s: trigger %d out of range", kind, a.After)
		}
	}
	// Different seeds explore different victims/triggers for at least one kind.
	varied := false
	for _, kind := range Kinds() {
		if Derive(kind, 1, 3, 0) != Derive(kind, 2, 3, 0) {
			varied = true
		}
	}
	if !varied {
		t.Error("seeds 1 and 2 derive identical plans for every kind")
	}
}

func TestParse(t *testing.T) {
	f, err := Parse("worker-crash:after=3")
	if err != nil || f.Kind != WorkerCrash || f.After != 3 {
		t.Fatalf("Parse = %+v, %v", f, err)
	}
	f, err = Parse("slow-loris:after=1:delay=250ms")
	if err != nil || f.Kind != SlowLoris || f.Delay != 250*time.Millisecond {
		t.Fatalf("Parse = %+v, %v", f, err)
	}
	if f, err = Parse("slow-loris"); err != nil || f.Delay == 0 {
		t.Fatalf("slow-loris default delay missing: %+v, %v", f, err)
	}
	for _, bad := range []string{"", "meteor-strike", "worker-crash:after=x", "worker-crash:nope=1", "worker-crash:after"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}
