// Package faults is the campaign control plane's deterministic
// fault-injection harness. A seeded Plan decides which worker misbehaves,
// how, and when; the faults are injected at the two seams every deployment
// already has — the worker's Transport (both the HTTP client and the
// in-process loopback implement it) and the worker's cell hooks — so chaos
// tests drive coordinator + workers inside one `go test` process, no real
// processes, and assert the final store is bit-identical to an unfaulted
// run.
package faults

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"dcra/internal/campaign"
	"dcra/internal/coord"
	"dcra/internal/rng"
)

// Kind names one fault mode.
type Kind string

const (
	// WorkerCrash kills the worker mid-lease (kill -9: no Fail, no
	// cleanup); the coordinator's heartbeat deadline reclaims the work.
	WorkerCrash Kind = "worker-crash"
	// StalledHeartbeat silently drops every heartbeat after the trigger
	// while the worker keeps computing: its lease expires and is re-leased,
	// and its late completions arrive as harmless duplicates.
	StalledHeartbeat Kind = "stalled-heartbeat"
	// SlowLoris keeps heartbeating but computes absurdly slowly (Delay per
	// cell after the trigger), exercising speculative straggler re-dispatch.
	SlowLoris Kind = "slow-loris"
	// CorruptPayload flips a result value inside one sealed completion
	// payload in flight, exercising the coordinator's digest rejection and
	// the retry path.
	CorruptPayload Kind = "corrupt-payload"
	// CoordinatorRestart is a harness-level fault: the test (or operator)
	// kills the coordinator after the trigger count of completed cells and
	// restarts it from its checkpoint and store. Workers see transport
	// errors and retry.
	CoordinatorRestart Kind = "coordinator-restart"
)

// Kinds lists every fault mode, for chaos matrices.
func Kinds() []Kind {
	return []Kind{WorkerCrash, StalledHeartbeat, SlowLoris, CorruptPayload, CoordinatorRestart}
}

// KindList renders the fault modes for flag help text.
func KindList() string {
	var b strings.Builder
	for i, k := range Kinds() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(string(k))
	}
	return b.String()
}

// Fault is one concrete injection.
type Fault struct {
	Kind Kind
	// Worker indexes which worker misbehaves (harness-assigned).
	Worker int
	// After is the trigger: cells computed (WorkerCrash, SlowLoris),
	// heartbeats sent (StalledHeartbeat), completions sent
	// (CorruptPayload), or cells completed campaign-wide
	// (CoordinatorRestart).
	After int
	// Delay is SlowLoris's per-cell stall.
	Delay time.Duration
}

func (f Fault) String() string {
	s := fmt.Sprintf("%s:worker=%d:after=%d", f.Kind, f.Worker, f.After)
	if f.Delay > 0 {
		s += ":delay=" + f.Delay.String()
	}
	return s
}

// Derive builds the deterministic fault of one (kind, seed) pair for a
// fleet of `workers`: the seed picks the misbehaving worker and the trigger
// point, so a chaos matrix over kinds × seeds explores different victims and
// phases without any test-local randomness.
func Derive(kind Kind, seed uint64, workers int, slowDelay time.Duration) Fault {
	h := sha256.Sum256([]byte(kind))
	rg := rng.New(seed ^ binary.LittleEndian.Uint64(h[:8]))
	return Fault{
		Kind:   kind,
		Worker: rg.Intn(max(workers, 1)),
		After:  1 + rg.Intn(3),
		Delay:  slowDelay,
	}
}

// Parse reads the CLI fault spec "kind[:after=N][:delay=D]", e.g.
// "worker-crash:after=3" or "slow-loris:after=1:delay=500ms". Worker is left
// 0: a CLI fault applies to the process it was passed to.
func Parse(spec string) (Fault, error) {
	parts := strings.Split(spec, ":")
	f := Fault{Kind: Kind(parts[0]), After: 1}
	known := false
	for _, k := range Kinds() {
		if f.Kind == k {
			known = true
			break
		}
	}
	if !known {
		return f, fmt.Errorf("faults: unknown fault kind %q (have %v)", parts[0], Kinds())
	}
	for _, p := range parts[1:] {
		key, val, ok := strings.Cut(p, "=")
		if !ok {
			return f, fmt.Errorf("faults: malformed fault option %q in %q", p, spec)
		}
		switch key {
		case "after":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return f, fmt.Errorf("faults: bad after=%q in %q", val, spec)
			}
			f.After = n
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil {
				return f, fmt.Errorf("faults: bad delay=%q in %q: %v", val, spec, err)
			}
			f.Delay = d
		default:
			return f, fmt.Errorf("faults: unknown fault option %q in %q", key, spec)
		}
	}
	if f.Kind == SlowLoris && f.Delay == 0 {
		f.Delay = 500 * time.Millisecond
	}
	return f, nil
}

// Injector applies one fault to one worker. Hooks covers the worker-side
// faults (crash, slow compute); Wrap covers the transport-side faults
// (dropped heartbeats, corrupted payloads). CoordinatorRestart has no
// injector behaviour — the harness owns it.
type Injector struct {
	Fault Fault
	Clock coord.Clock

	heartbeats atomic.Int64
	completes  atomic.Int64
}

// NewInjector builds the injector for one fault.
func NewInjector(f Fault, clock coord.Clock) *Injector {
	if clock == nil {
		clock = coord.RealClock()
	}
	return &Injector{Fault: f, Clock: clock}
}

// Hooks returns the worker hooks implementing the fault's compute-side
// behaviour.
func (in *Injector) Hooks() coord.WorkerHooks {
	switch in.Fault.Kind {
	case WorkerCrash:
		return coord.WorkerHooks{BeforeCell: func(n int, _ campaign.Cell) error {
			if n >= in.Fault.After {
				return coord.ErrKilled
			}
			return nil
		}}
	case SlowLoris:
		return coord.WorkerHooks{BeforeCell: func(n int, _ campaign.Cell) error {
			if n >= in.Fault.After {
				in.Clock.Sleep(in.Fault.Delay)
			}
			return nil
		}}
	}
	return coord.WorkerHooks{}
}

// Wrap returns t with the fault's transport-side behaviour applied.
func (in *Injector) Wrap(t coord.Transport) coord.Transport {
	switch in.Fault.Kind {
	case StalledHeartbeat, CorruptPayload:
		return &faultyTransport{Transport: t, in: in}
	}
	return t
}

// faultyTransport intercepts the calls the fault tampers with and passes
// everything else through.
type faultyTransport struct {
	coord.Transport
	in *Injector
}

func (ft *faultyTransport) Heartbeat(req coord.HeartbeatRequest) (coord.HeartbeatResponse, error) {
	in := ft.in
	if in.Fault.Kind == StalledHeartbeat && in.heartbeats.Add(1) > int64(in.Fault.After) {
		// Swallow: the coordinator never sees it; the worker believes all is
		// well and keeps computing.
		return coord.HeartbeatResponse{OK: true}, nil
	}
	return ft.Transport.Heartbeat(req)
}

func (ft *faultyTransport) Complete(req coord.CompleteRequest) (coord.CompleteResponse, error) {
	in := ft.in
	if in.Fault.Kind == CorruptPayload && in.completes.Add(1) == int64(in.Fault.After+1) {
		// Corrupt the payload after it was sealed: the digest no longer
		// matches, exactly like bit rot on the wire.
		for i := range req.Cells {
			req.Cells[i].Result.Throughput += 1.0
		}
	}
	return ft.Transport.Complete(req)
}
