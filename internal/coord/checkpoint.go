package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"dcra/internal/campaign"
)

// checkpoint is the coordinator's crash-safe state file. Completion is
// deliberately absent: the store itself is the durable record of which cells
// are done (New re-scans it), so the checkpoint only carries what the store
// cannot reconstruct — retry accounting. Leases are absent too: they die
// with the coordinator and simply expire into re-leases on the next life.
type checkpoint struct {
	Version   int             `json:"version"`
	Campaign  string          `json:"campaign"`
	SweepHash string          `json:"sweep_hash"`
	Params    campaign.Params `json:"params"`
	Retries   int             `json:"retries"`
	Attempts  map[string]int  `json:"attempts,omitempty"`  // cell key -> failed attempts
	Exhausted []string        `json:"exhausted,omitempty"` // cell keys out of budget
}

const checkpointVersion = 1

// loadCheckpoint restores retry accounting from opts.Checkpoint, if the file
// exists. A checkpoint for a different campaign, sweep or protocol is
// refused rather than silently merged into the wrong run.
func (c *Coordinator) loadCheckpoint() error {
	path := c.opts.Checkpoint
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("coord: reading checkpoint %s: %w", path, err)
	}
	var ck checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return fmt.Errorf("coord: parsing checkpoint %s: %w", path, err)
	}
	switch {
	case ck.Version != checkpointVersion:
		return fmt.Errorf("coord: checkpoint %s has version %d, this binary speaks %d", path, ck.Version, checkpointVersion)
	case ck.Campaign != c.name:
		return fmt.Errorf("coord: checkpoint %s is for campaign %q, coordinating %q", path, ck.Campaign, c.name)
	case ck.SweepHash != c.hash:
		return fmt.Errorf("coord: checkpoint %s enumerates sweep %s, coordinating %s (spec changed? delete the checkpoint)", path, ck.SweepHash, c.hash)
	case ck.Params != c.store.Params():
		return fmt.Errorf("coord: checkpoint %s was measured with %+v, store holds %+v", path, ck.Params, c.store.Params())
	}
	c.retries = ck.Retries
	for key, n := range ck.Attempts {
		if i, ok := c.cellByKy[key]; ok && !c.cells[i].done {
			c.cells[i].attempts = n
		}
	}
	for _, key := range ck.Exhausted {
		if i, ok := c.cellByKy[key]; ok && !c.cells[i].done && !c.cells[i].exhausted {
			c.cells[i].exhausted = true
			c.exhaust++
		}
	}
	c.logf("resumed from checkpoint %s: %d prior retries, %d cells exhausted", path, c.retries, c.exhaust)
	return nil
}

// saveCheckpointLocked persists retry accounting atomically. Checkpointing
// is best-effort: a failed write costs retry history on the next restart,
// not correctness, so it logs instead of failing the campaign.
func (c *Coordinator) saveCheckpointLocked() {
	path := c.opts.Checkpoint
	if path == "" {
		return
	}
	ck := checkpoint{
		Version:   checkpointVersion,
		Campaign:  c.name,
		SweepHash: c.hash,
		Params:    c.store.Params(),
		Retries:   c.retries,
		Attempts:  make(map[string]int),
	}
	for _, cs := range c.cells {
		if cs.attempts > 0 && !cs.done {
			ck.Attempts[cs.key] = cs.attempts
		}
		if cs.exhausted {
			ck.Exhausted = append(ck.Exhausted, cs.key)
		}
	}
	data, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("coord: marshalling checkpoint: %v", err))
	}
	if err := writeFileAtomic(path, append(data, '\n')); err != nil {
		c.logf("checkpoint write failed (continuing): %v", err)
	}
}

// writeFileAtomic writes data via a temp file and rename so a crashed
// coordinator never leaves a torn checkpoint.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
