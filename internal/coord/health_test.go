package coord_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dcra/internal/campaign"
	"dcra/internal/coord"
	"dcra/internal/obs"
)

// TestCoordinatorHealthAndFlight runs an instrumented fleet, ticking the
// health ring as it goes, and checks the whole fleet-health surface: the
// status report's windowed rates, an (impossible) cell SLO breaching into
// the flight recorder and the breach counter, the lease lifecycle showing up
// as flight events, and /metrics.prom exposing parseable text format.
func TestCoordinatorHealthAndFlight(t *testing.T) {
	sweep := chaosSweep(10)
	dir := t.TempDir()
	st, err := campaign.Open(dir, chaosParams)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	flight := obs.NewFlightRecorder(256)
	opts := fastOpts(t, dir, 1)
	opts.Obs = reg
	opts.Flight = flight
	// Every cell takes ~2ms of wall clock, so a 1ms p50 target must breach.
	// The declared window is far wider than the intervals this short run
	// holds: the status report must clamp it to the held history rather
	// than falling through to Window's zero baseline and dating the span
	// from the epoch.
	opts.CellSLO = coord.CellSLO{Quantile: 0.5, TargetMs: 1, Window: 3000}
	co, err := coord.New("chaos", sweep, st, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.NewHTTPHandler(co))
	defer srv.Close()

	// Tick the ring the way cmdCoordinate does: once before work starts
	// (the zero baseline) and then periodically while the fleet runs, so
	// the windowed deltas cover the campaign's activity.
	co.HealthTick()
	tickStop := make(chan struct{})
	var ticker sync.WaitGroup
	ticker.Add(1)
	go func() {
		defer ticker.Done()
		for {
			select {
			case <-tickStop:
				return
			case <-time.After(time.Millisecond):
				co.HealthTick()
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := &coord.Worker{
			ID:        fmt.Sprintf("hw%d", i),
			Transport: &coord.HTTPTransport{Base: srv.URL},
			NewRunner: runnerFactory(newSlowRunner(2 * time.Millisecond)),
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(); err != nil {
				t.Errorf("worker %s: %v", w.ID, err)
			}
		}()
	}
	wg.Wait()
	close(tickStop)
	ticker.Wait()
	co.HealthTick() // final interval holds the completed campaign

	status := co.Status()
	if !status.Complete() {
		t.Fatalf("campaign did not complete: %+v", status)
	}
	h := status.Health
	if h == nil {
		t.Fatal("status has no health slice after HealthTick")
	}
	if h.Intervals < 2 || h.CellsDone != int64(len(sweep.Cells)) {
		t.Errorf("health window %+v, want >=2 intervals covering %d cells", h, len(sweep.Cells))
	}
	if h.LeasesGranted == 0 {
		t.Errorf("health window shows no control-plane activity: %+v", h)
	}
	if h.WindowMs <= 0 || h.WindowMs > time.Hour.Milliseconds() {
		t.Errorf("implausible window span %dms", h.WindowMs)
	}
	if h.CellsPerSec <= 0 {
		t.Errorf("cells/sec = %g, want > 0 over a %dms window", h.CellsPerSec, h.WindowMs)
	}
	if h.SLO == nil || h.SLO.Met {
		t.Errorf("impossible cell SLO reported met: %+v", h.SLO)
	}
	if reg.Snapshot().Counters["coord.slo.breaches"] == 0 {
		t.Error("no coord.slo.breaches charged for a breaching tick")
	}

	kinds := make(map[string]int)
	for _, e := range flight.Events() {
		kinds[e.Kind]++
	}
	if kinds["lease"] == 0 {
		t.Errorf("flight recorder holds no lease events: %v", kinds)
	}
	if kinds["slo-breach"] == 0 {
		t.Errorf("flight recorder holds no slo-breach events: %v", kinds)
	}

	// Prometheus exposition: right Content-Type, counters present, every
	// sample line two fields.
	resp, err := http.Get(srv.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics.prom: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("/metrics.prom Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	text := string(body)
	for _, want := range []string{
		fmt.Sprintf("coord_cells_done %d\n", len(sweep.Cells)),
		"# TYPE coord_cell_us histogram\n",
		`coord_cell_us_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics.prom missing %q:\n%s", want, text)
		}
	}
}

// TestCoordinatorHealthDisabled checks the uninstrumented path: no registry
// means no ring, HealthTick is a no-op and the status carries no health.
func TestCoordinatorHealthDisabled(t *testing.T) {
	sweep := chaosSweep(2)
	dir := t.TempDir()
	st, err := campaign.Open(dir, chaosParams)
	if err != nil {
		t.Fatal(err)
	}
	co, err := coord.New("chaos", sweep, st, fastOpts(t, dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	co.HealthTick() // must not panic
	if co.Status().Health != nil {
		t.Error("uninstrumented coordinator reported health")
	}
	if co.Flight() != nil {
		t.Error("uninstrumented coordinator has a flight recorder")
	}

	// /metrics.prom still answers (empty exposition) without a registry.
	srv := httptest.NewServer(coord.NewHTTPHandler(co))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics.prom uninstrumented: %s", resp.Status)
	}
}
