package coord_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dcra/internal/campaign"
	"dcra/internal/coord"
	"dcra/internal/obs"
)

// traceDoc mirrors the Chrome trace-event JSON schema for assertions.
type traceDoc struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		TS   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		PID  int     `json:"pid"`
		TID  int     `json:"tid"`
	} `json:"traceEvents"`
}

// TestTelemetryCoversFleet runs a healthy instrumented fleet and checks the
// acceptance bar of the telemetry layer: the span trace holds one cell span
// per completed cell plus the lease lifecycles, and the registry's counters
// agree with the coordinator's own accounting.
func TestTelemetryCoversFleet(t *testing.T) {
	sweep := chaosSweep(12)
	dir := t.TempDir()
	st, err := campaign.Open(dir, chaosParams)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tracer := obs.NewTracer()
	opts := fastOpts(t, dir, 1)
	opts.Obs = reg
	opts.Tracer = tracer
	co, err := coord.New("chaos", sweep, st, opts)
	if err != nil {
		t.Fatal(err)
	}
	lb := coord.NewLoopback(co)
	runner := newSlowRunner(2 * time.Millisecond)

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		w := &coord.Worker{ID: fmt.Sprintf("w%d", i), Transport: lb, NewRunner: runnerFactory(runner)}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(); err != nil {
				t.Errorf("worker %s: %v", w.ID, err)
			}
		}()
	}
	wg.Wait()
	if status := co.Status(); !status.Complete() || status.Done != len(sweep.Cells) {
		t.Fatalf("campaign did not complete: %+v", status)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["coord.cells.done"]; got != int64(len(sweep.Cells)) {
		t.Errorf("coord.cells.done = %d, want %d", got, len(sweep.Cells))
	}
	if snap.Counters["coord.leases.granted"] == 0 {
		t.Error("coord.leases.granted = 0, want > 0")
	}
	h := snap.Histograms["coord.cell.us"]
	if h.Count != int64(len(sweep.Cells)) {
		t.Errorf("coord.cell.us observed %d durations, want %d", h.Count, len(sweep.Cells))
	}
	var perWorker int64
	for name, v := range snap.Counters {
		if n, ok := strings.CutPrefix(name, "coord.worker.cells."); ok {
			t.Logf("worker %s completed %d cells", n, v)
			perWorker += v
		}
	}
	if perWorker != int64(len(sweep.Cells)) {
		t.Errorf("per-worker cell counters sum to %d, want %d", perWorker, len(sweep.Cells))
	}

	var buf bytes.Buffer
	if err := tracer.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	cellSpans := make(map[string]int)
	leaseSpans, leaseDone := 0, 0
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		switch e.Cat {
		case "cell":
			if e.PID != coord.TracePIDCells {
				t.Errorf("cell span %q on pid %d, want %d", e.Name, e.PID, coord.TracePIDCells)
			}
			cellSpans[e.Name]++
		case "lease":
			if e.PID != coord.TracePIDLeases {
				t.Errorf("lease span %q on pid %d, want %d", e.Name, e.PID, coord.TracePIDLeases)
			}
			leaseSpans++
			if strings.HasSuffix(e.Name, " done") {
				leaseDone++
			}
		}
	}
	// A healthy fleet computes each cell exactly once, so the trace must
	// cover every completed cell with exactly one span.
	for _, c := range sweep.Cells {
		if n := cellSpans["cell "+c.String()]; n != 1 {
			t.Errorf("cell %s has %d trace spans, want 1", c, n)
		}
	}
	if len(cellSpans) != len(sweep.Cells) {
		t.Errorf("trace holds %d distinct cell spans, want %d", len(cellSpans), len(sweep.Cells))
	}
	if leaseSpans == 0 || leaseDone == 0 {
		t.Errorf("trace holds %d lease spans (%d done), want both > 0", leaseSpans, leaseDone)
	}
}

// TestMetricsAndPprofEndpoints exercises the live introspection surface of
// an instrumented coordinator: /metrics serves the registry snapshot and the
// pprof handlers answer on the same mux.
func TestMetricsAndPprofEndpoints(t *testing.T) {
	sweep := chaosSweep(6)
	dir := t.TempDir()
	st, err := campaign.Open(dir, chaosParams)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	opts := fastOpts(t, dir, 1)
	opts.Obs = reg
	co, err := coord.New("chaos", sweep, st, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.NewHTTPHandler(co))
	defer srv.Close()

	w := &coord.Worker{
		ID:        "metrics-w",
		Transport: &coord.HTTPTransport{Base: srv.URL},
		NewRunner: runnerFactory(newSlowRunner(time.Millisecond)),
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %s", resp.Status)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics is not a JSON snapshot: %v\n%s", err, body)
	}
	if snap.Counters["coord.cells.done"] != int64(len(sweep.Cells)) {
		t.Errorf("/metrics coord.cells.done = %d, want %d", snap.Counters["coord.cells.done"], len(sweep.Cells))
	}

	pp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: %s", pp.Status)
	}
}

// TestMetricsEndpointUninstrumented checks that a coordinator built without
// a registry still answers /metrics with an empty JSON object.
func TestMetricsEndpointUninstrumented(t *testing.T) {
	sweep := chaosSweep(2)
	dir := t.TempDir()
	st, err := campaign.Open(dir, chaosParams)
	if err != nil {
		t.Fatal(err)
	}
	co, err := coord.New("chaos", sweep, st, fastOpts(t, dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.NewHTTPHandler(co))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("uninstrumented /metrics is not valid JSON: %v", err)
	}
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Errorf("uninstrumented snapshot is not empty: %+v", snap)
	}
}
