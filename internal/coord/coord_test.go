package coord_test

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dcra/internal/campaign"
	"dcra/internal/config"
	"dcra/internal/coord"
	"dcra/internal/sim"
)

// chaosSweep builds n synthetic cells; evaluation is a pure function of the
// cell (chaosResult), so any schedule of any fleet must produce the same
// store bytes.
func chaosSweep(n int) campaign.Sweep {
	s := campaign.Sweep{Name: "chaos"}
	cfg := config.Baseline()
	for i := 0; i < n; i++ {
		s.Cells = append(s.Cells, campaign.Cell{Cfg: cfg, WID: fmt.Sprintf("bench:fake%d", i), Pol: "BASE"})
	}
	return s
}

// chaosResult derives a result deterministically from the cell identity,
// with awkward floats so byte comparisons have teeth.
func chaosResult(c campaign.Cell) sim.Result {
	var f float64
	for i, b := range []byte(c.Key()) {
		f += float64(b) * float64(i+1)
	}
	return sim.Result{
		Policy:     c.Pol,
		IPCs:       []float64{f / 3.0, f / 7.0},
		Throughput: f/3.0 + f/7.0,
		Hmean:      2 / (3.0/f + 7.0/f),
	}
}

// slowRunner evaluates cells with chaosResult after a fixed delay (so leases
// live long enough for heartbeats and expiries to matter), counting computes
// per cell and optionally failing chosen cells for their first failN tries.
type slowRunner struct {
	delay time.Duration

	mu       sync.Mutex
	computes map[string]int
	failN    map[string]int
}

func newSlowRunner(delay time.Duration) *slowRunner {
	return &slowRunner{delay: delay, computes: make(map[string]int), failN: make(map[string]int)}
}

func (r *slowRunner) RunCell(c campaign.Cell) (sim.Result, error) {
	time.Sleep(r.delay)
	key := c.Key()
	r.mu.Lock()
	r.computes[key]++
	n := r.computes[key]
	fails := r.failN[key]
	r.mu.Unlock()
	if n <= fails {
		return sim.Result{}, fmt.Errorf("injected compute failure %d/%d for %s", n, fails, c)
	}
	return chaosResult(c), nil
}

func (r *slowRunner) count(key string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.computes[key]
}

func runnerFactory(r campaign.Runner) coord.RunnerFactory {
	return func(campaign.Params) (campaign.Runner, error) { return r, nil }
}

var chaosParams = campaign.Params{Warmup: 11, Measure: 22, Seed: 33}

// fastOpts compresses every control-plane time constant so chaos scenarios
// finish in tens of milliseconds.
func fastOpts(t *testing.T, dir string, seed uint64) coord.Options {
	t.Helper()
	return coord.Options{
		RangeSize:      4,
		LeaseTTL:       40 * time.Millisecond,
		RetryBudget:    10,
		BackoffBase:    time.Millisecond,
		BackoffMax:     8 * time.Millisecond,
		SpeculateAfter: 60 * time.Millisecond,
		PollInterval:   5 * time.Millisecond,
		Seed:           seed,
		Checkpoint:     filepath.Join(dir, "coordinator.json"),
		Logf:           t.Logf,
	}
}

// readCells maps cell file name -> contents for a store directory.
func readCells(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, "cells"))
	if err != nil {
		t.Fatal(err)
	}
	cells := make(map[string]string)
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, "cells", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		cells[e.Name()] = string(data)
	}
	return cells
}

// referenceCells renders the unfaulted single-process store: every cell Put
// directly, exactly what `campaign run` does without a coordinator.
func referenceCells(t *testing.T, sweep campaign.Sweep) map[string]string {
	t.Helper()
	dir := t.TempDir()
	st, err := campaign.Open(dir, chaosParams)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range sweep.Cells {
		if err := st.Put(c, chaosResult(c)); err != nil {
			t.Fatal(err)
		}
	}
	return readCells(t, dir)
}

func assertStoresIdentical(t *testing.T, want, got map[string]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("store holds %d cell files, want %d", len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("cell file %s missing", name)
			continue
		}
		if g != w {
			t.Errorf("cell file %s differs from the unfaulted run", name)
		}
	}
}

func TestCoordinatorCompletesHealthyFleet(t *testing.T) {
	sweep := chaosSweep(18)
	dir := t.TempDir()
	st, err := campaign.Open(dir, chaosParams)
	if err != nil {
		t.Fatal(err)
	}
	co, err := coord.New("chaos", sweep, st, fastOpts(t, dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	lb := coord.NewLoopback(co)
	runner := newSlowRunner(2 * time.Millisecond)

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		w := &coord.Worker{ID: fmt.Sprintf("w%d", i), Transport: lb, NewRunner: runnerFactory(runner)}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(); err != nil {
				t.Errorf("worker %s: %v", w.ID, err)
			}
			if w.Missing != 0 {
				t.Errorf("worker %s saw %d missing cells", w.ID, w.Missing)
			}
		}()
	}
	wg.Wait()

	status := co.Status()
	if !status.Complete() || status.Done != len(sweep.Cells) || status.Exhausted != 0 {
		t.Fatalf("campaign did not complete: %+v", status)
	}
	assertStoresIdentical(t, referenceCells(t, sweep), readCells(t, dir))
	// A pure healthy run computes each cell exactly once: no lease expired,
	// so no work was duplicated.
	for _, c := range sweep.Cells {
		if n := runner.count(c.Key()); n != 1 {
			t.Errorf("cell %s computed %d times, want 1", c, n)
		}
	}
}

func TestCoordinatorOverHTTP(t *testing.T) {
	sweep := chaosSweep(10)
	dir := t.TempDir()
	st, err := campaign.Open(dir, chaosParams)
	if err != nil {
		t.Fatal(err)
	}
	co, err := coord.New("chaos", sweep, st, fastOpts(t, dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.NewHTTPHandler(co))
	defer srv.Close()

	runner := newSlowRunner(time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := &coord.Worker{
			ID:        fmt.Sprintf("http-w%d", i),
			Transport: &coord.HTTPTransport{Base: srv.URL},
			NewRunner: runnerFactory(runner),
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(); err != nil {
				t.Errorf("worker %s: %v", w.ID, err)
			}
		}()
	}
	wg.Wait()

	ht := &coord.HTTPTransport{Base: srv.URL}
	status, err := ht.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !status.Complete() || status.Done != len(sweep.Cells) {
		t.Fatalf("campaign incomplete over HTTP: %+v", status)
	}
	assertStoresIdentical(t, referenceCells(t, sweep), readCells(t, dir))
}

// TestCheckpointRestartResume kills the coordinator mid-campaign (after a
// crash-faulted worker completed part of the sweep and one cell burned
// retries) and restarts it from its checkpoint and store: completion must be
// re-derived exactly (no completed cell recomputed) and retry accounting
// must survive.
func TestCheckpointRestartResume(t *testing.T) {
	sweep := chaosSweep(18)
	dir := t.TempDir()
	st, err := campaign.Open(dir, chaosParams)
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts(t, dir, 1)
	co, err := coord.New("chaos", sweep, st, opts)
	if err != nil {
		t.Fatal(err)
	}
	lb := coord.NewLoopback(co)

	runner := newSlowRunner(time.Millisecond)
	// One cell fails twice before succeeding, so the checkpoint has real
	// retry accounting to preserve.
	flaky := sweep.Cells[0].Key()
	runner.failN[flaky] = 2

	// Phase 1: a single worker that dies (kill -9 style) after 7 cells.
	w1 := &coord.Worker{
		ID: "phase1", Transport: lb, NewRunner: runnerFactory(runner),
		Hooks: coord.WorkerHooks{BeforeCell: func(n int, _ campaign.Cell) error {
			if n >= 7 {
				return coord.ErrKilled
			}
			return nil
		}},
	}
	if err := w1.Run(); err != coord.ErrKilled {
		t.Fatalf("phase-1 worker exited with %v, want ErrKilled", err)
	}
	phase1 := co.Status()
	if phase1.Done == 0 || phase1.Done == len(sweep.Cells) {
		t.Fatalf("phase 1 should end mid-campaign, done=%d", phase1.Done)
	}
	doneKeys := make(map[string]bool)
	for _, c := range sweep.Cells {
		if st.Has(c) {
			doneKeys[c.Key()] = true
		}
	}

	// Kill the coordinator: drop it and restart from checkpoint + store.
	lb.Swap(nil)
	st2, err := campaign.Open(dir, chaosParams)
	if err != nil {
		t.Fatal(err)
	}
	co2, err := coord.New("chaos", sweep, st2, opts)
	if err != nil {
		t.Fatal(err)
	}
	resumed := co2.Status()
	if resumed.Done != phase1.Done {
		t.Fatalf("restarted coordinator sees %d done, phase 1 ended at %d", resumed.Done, phase1.Done)
	}
	if resumed.Retries == 0 {
		t.Fatal("restarted coordinator lost its retry accounting")
	}
	lb.Swap(co2)

	// Phase 2: a healthy worker finishes the campaign.
	w2 := &coord.Worker{ID: "phase2", Transport: lb, NewRunner: runnerFactory(runner)}
	if err := w2.Run(); err != nil {
		t.Fatal(err)
	}
	final := co2.Status()
	if !final.Complete() || final.Done != len(sweep.Cells) || final.Exhausted != 0 {
		t.Fatalf("campaign did not complete after restart: %+v", final)
	}
	assertStoresIdentical(t, referenceCells(t, sweep), readCells(t, dir))
	// Resumes exactly where it left off: nothing completed before the
	// restart was recomputed after it.
	for key := range doneKeys {
		want := 1
		if key == flaky {
			want = 3 // two injected failures + the success
		}
		if n := runner.count(key); n != want {
			t.Errorf("cell %s computed %d times across the restart, want %d", key, n, want)
		}
	}
}

// TestExhaustedCellsReportedMissing drives one cell past its retry budget
// and checks the campaign still completes, reporting the hole explicitly
// everywhere: status, worker exit, and Missing().
func TestExhaustedCellsReportedMissing(t *testing.T) {
	sweep := chaosSweep(8)
	dir := t.TempDir()
	st, err := campaign.Open(dir, chaosParams)
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts(t, dir, 1)
	opts.RetryBudget = 2
	co, err := coord.New("chaos", sweep, st, opts)
	if err != nil {
		t.Fatal(err)
	}
	lb := coord.NewLoopback(co)

	runner := newSlowRunner(time.Millisecond)
	poisoned := sweep.Cells[3].Key()
	runner.failN[poisoned] = 1 << 30 // never succeeds

	w := &coord.Worker{ID: "w0", Transport: lb, NewRunner: runnerFactory(runner)}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if w.Missing != 1 {
		t.Fatalf("worker saw %d missing cells, want 1", w.Missing)
	}
	status := co.Status()
	if !status.Complete() || status.Exhausted != 1 || status.Done != len(sweep.Cells)-1 {
		t.Fatalf("status = %+v, want 1 exhausted", status)
	}
	if len(status.MissingKeys) != 1 || status.MissingKeys[0] != poisoned {
		t.Fatalf("missing keys = %v, want [%s]", status.MissingKeys, poisoned)
	}
	missing := co.Missing()
	if len(missing) != 1 || missing[0].Key() != poisoned {
		t.Fatalf("Missing() = %v, want the poisoned cell", missing)
	}
	if n := runner.count(poisoned); n != 2 {
		t.Errorf("poisoned cell computed %d times, want the retry budget of 2", n)
	}
}

// TestDrainStopsLeasing checks graceful degradation: after Drain, workers
// are told the campaign is over, in-flight completions are still accepted,
// and the missing set is explicit.
func TestDrainStopsLeasing(t *testing.T) {
	sweep := chaosSweep(12)
	dir := t.TempDir()
	st, err := campaign.Open(dir, chaosParams)
	if err != nil {
		t.Fatal(err)
	}
	co, err := coord.New("chaos", sweep, st, fastOpts(t, dir, 1))
	if err != nil {
		t.Fatal(err)
	}

	// Take one lease by hand, then drain.
	resp := co.Lease(coord.LeaseRequest{Worker: "hand"})
	if resp.State != coord.StateLease {
		t.Fatalf("lease state %q", resp.State)
	}
	co.Drain()
	if r := co.Lease(coord.LeaseRequest{Worker: "late"}); r.State != coord.StateDone {
		t.Fatalf("draining coordinator answered %q, want done", r.State)
	}
	// The in-flight lease still lands.
	g := resp.Grant
	cr := campaign.CellResult{Key: g.Cells[0].Key(), Cell: g.Cells[0], Result: chaosResult(g.Cells[0])}
	done := co.Complete(coord.CompleteRequest{
		Worker: "hand", LeaseID: g.LeaseID, Done: true,
		Cells: []campaign.CellResult{cr}, Sum: coord.PayloadSum([]campaign.CellResult{cr}),
	})
	if !done.OK {
		t.Fatalf("drain rejected an in-flight completion: %s", done.Reason)
	}
	co.WaitIdle(200 * time.Millisecond)
	status := co.Status()
	if status.Done != 1 || len(co.Missing()) != len(sweep.Cells)-1 {
		t.Fatalf("after drain: %+v, missing %d", status, len(co.Missing()))
	}
}

// TestCompleteRejectsCorruptPayloads covers the integrity seams one by one.
func TestCompleteRejectsCorruptPayloads(t *testing.T) {
	sweep := chaosSweep(4)
	dir := t.TempDir()
	st, err := campaign.Open(dir, chaosParams)
	if err != nil {
		t.Fatal(err)
	}
	co, err := coord.New("chaos", sweep, st, fastOpts(t, dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	resp := co.Lease(coord.LeaseRequest{Worker: "w"})
	g := resp.Grant
	cell := g.Cells[0]
	good := campaign.CellResult{Key: cell.Key(), Cell: cell, Result: chaosResult(cell)}

	// Digest mismatch (bit rot in flight).
	bad := good
	bad.Result.Throughput += 1
	if r := co.Complete(coord.CompleteRequest{
		Worker: "w", LeaseID: g.LeaseID,
		Cells: []campaign.CellResult{bad}, Sum: coord.PayloadSum([]campaign.CellResult{good}),
	}); r.OK {
		t.Fatal("corrupted payload accepted")
	}
	// Key mismatch (hand-edited payload).
	wrongKey := good
	wrongKey.Key = "0000000000000000"
	if r := co.Complete(coord.CompleteRequest{
		Worker: "w", LeaseID: g.LeaseID,
		Cells: []campaign.CellResult{wrongKey}, Sum: coord.PayloadSum([]campaign.CellResult{wrongKey}),
	}); r.OK {
		t.Fatal("mismatched cell key accepted")
	}
	// Foreign cell (wrong campaign).
	foreign := campaign.Cell{Cfg: config.Baseline(), WID: "bench:foreign", Pol: "BASE"}
	fr := campaign.CellResult{Key: foreign.Key(), Cell: foreign, Result: chaosResult(foreign)}
	if r := co.Complete(coord.CompleteRequest{
		Worker: "w", LeaseID: g.LeaseID,
		Cells: []campaign.CellResult{fr}, Sum: coord.PayloadSum([]campaign.CellResult{fr}),
	}); r.OK {
		t.Fatal("foreign cell accepted")
	}
	if st.Has(cell) || st.Has(foreign) {
		t.Fatal("a rejected payload reached the store")
	}
	// The clean payload still lands.
	if r := co.Complete(coord.CompleteRequest{
		Worker: "w", LeaseID: g.LeaseID, Done: true,
		Cells: []campaign.CellResult{good}, Sum: coord.PayloadSum([]campaign.CellResult{good}),
	}); !r.OK {
		t.Fatalf("clean payload rejected: %s", r.Reason)
	}
}
