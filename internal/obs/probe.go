package obs

// ProbeSample is one tick of the periodic machine probe: per-thread
// IPC over the interval just elapsed and instantaneous per-thread ROB
// occupancy at the tick. The probe only reads committed-uop counts and
// resource levels, so a probed run is bit-identical to an unprobed one.
type ProbeSample struct {
	Cycle  uint64    `json:"cycle"`
	IPC    []float64 `json:"ipc"`
	ROBOcc []int     `json:"rob_occ"`
}

// ProbeSeries is the time-series a probed measurement window produces;
// it rides in sim.Result behind an omitempty field so unprobed results
// serialize byte-identically to pre-telemetry builds.
type ProbeSeries struct {
	Interval uint64        `json:"interval"`
	Samples  []ProbeSample `json:"samples"`
}
