package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// FlightEvent is one entry in a flight recorder: a structured control-plane
// event (lease transition, quarantine, retry, SLO breach) with a sequence
// number and wall-clock stamp.
type FlightEvent struct {
	Seq  int64  `json:"seq"`
	At   string `json:"at"` // RFC3339Nano
	Kind string `json:"kind"`
	Msg  string `json:"msg"`
}

// FlightRecorder keeps a bounded ring of recent structured events, cheap
// enough to leave always on: recording is one mutex acquisition and a slot
// overwrite, with no I/O until a dump is requested. Its purpose is the
// postmortem nobody planned for — when a coordinator aborts or a worker
// dies, the last few hundred control-plane events are written out as JSON.
//
// A nil *FlightRecorder is a valid, disabled recorder: every method is a
// no-op or returns a zero value.
type FlightRecorder struct {
	mu    sync.Mutex
	clock func() time.Time
	slots []FlightEvent
	head  int
	n     int
	seq   int64
}

// NewFlightRecorder returns a recorder keeping the most recent capacity
// events (minimum 1).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &FlightRecorder{slots: make([]FlightEvent, capacity), clock: time.Now}
}

// SetClock replaces the recorder's wall clock; tests pin timestamps with it.
func (f *FlightRecorder) SetClock(now func() time.Time) {
	if f == nil || now == nil {
		return
	}
	f.mu.Lock()
	f.clock = now
	f.mu.Unlock()
}

// Record appends one event. No-op on a nil recorder.
func (f *FlightRecorder) Record(kind, format string, args ...any) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.seq++
	e := FlightEvent{
		Seq:  f.seq,
		At:   f.clock().UTC().Format(time.RFC3339Nano),
		Kind: kind,
		Msg:  fmt.Sprintf(format, args...),
	}
	if f.n == len(f.slots) {
		// full: overwrite the oldest
	} else {
		f.n++
	}
	f.slots[f.head] = e
	f.head = (f.head + 1) % len(f.slots)
	f.mu.Unlock()
}

// Len returns the number of events currently held; 0 on a nil recorder.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Events returns a copy of the held events, oldest first. Nil on a nil or
// empty recorder.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.n == 0 {
		return nil
	}
	out := make([]FlightEvent, f.n)
	start := (f.head - f.n + len(f.slots)) % len(f.slots)
	for i := 0; i < f.n; i++ {
		out[i] = f.slots[(start+i)%len(f.slots)]
	}
	return out
}

// FlightDump is the on-disk schema of a flight-recorder dump.
type FlightDump struct {
	WrittenAt string        `json:"written_at"`
	Reason    string        `json:"reason"`
	Recorded  int64         `json:"recorded"` // events ever recorded
	Dropped   int64         `json:"dropped"`  // recorded minus retained
	Events    []FlightEvent `json:"events"`
}

// Dump assembles the current dump document.
func (f *FlightRecorder) Dump(reason string) FlightDump {
	d := FlightDump{Reason: reason, Events: f.Events()}
	if f == nil {
		d.WrittenAt = time.Now().UTC().Format(time.RFC3339Nano)
		return d
	}
	f.mu.Lock()
	d.WrittenAt = f.clock().UTC().Format(time.RFC3339Nano)
	d.Recorded = f.seq
	d.Dropped = f.seq - int64(f.n)
	f.mu.Unlock()
	return d
}

// WriteFile dumps the recorder to path as indented JSON. Works on a nil
// recorder too (an empty dump), so abort paths need no nil guard.
func (f *FlightRecorder) WriteFile(path, reason string) error {
	data, err := json.MarshalIndent(f.Dump(reason), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding flight record: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("obs: writing flight record: %w", err)
	}
	return nil
}
