package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format this package writes.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteProm writes the snapshot in the Prometheus text exposition format
// (version 0.0.4): counters and gauges as single samples, histograms as
// cumulative _bucket/_sum/_count families with le labels. Instrument names
// map to metric names by replacing every character outside [a-zA-Z0-9_:]
// with '_' (so "coord.leases.granted" scrapes as coord_leases_granted).
// Families are emitted in sorted name order, so the output is deterministic
// for a given state — same contract as the JSON snapshot.
func (s Snapshot) WriteProm(w io.Writer) error {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := promName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", m, m, s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", m, m, s.Gauges[name])
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		m := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", m)
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", m, bound, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m, h.Count)
		fmt.Fprintf(&b, "%s_sum %d\n", m, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", m, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promName maps an instrument name to a legal Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}
