package obs

import "testing"

// BenchmarkCounterDisabled measures the disabled fast path: the nil
// check is all a call site pays with telemetry off.
func BenchmarkCounterDisabled(b *testing.B) {
	b.ReportAllocs()
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	b.ReportAllocs()
	var c Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramDisabled(b *testing.B) {
	b.ReportAllocs()
	var h *Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramEnabled(b *testing.B) {
	b.ReportAllocs()
	r := NewRegistry()
	h := r.Histogram("h", DurationBounds)
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 0xffff))
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	b.ReportAllocs()
	var t *Tracer
	for i := 0; i < b.N; i++ {
		end := t.Span(0, 0, "op", "bench")
		end()
	}
}
