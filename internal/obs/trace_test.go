package obs

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
)

func TestTracerChromeFormat(t *testing.T) {
	tr := NewTracer()
	tr.Process(0, "coordinator")
	tr.Lane(0, 1, "worker w1")
	end := tr.Span(0, 1, "lease L1", "lease")
	end()
	tr.CompleteAt(1, 1, "cell BASE/ILP2.0/DCRA", "cell", 100, 250)
	tr.Instant(0, 0, "drain", "coord")

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5", len(doc.TraceEvents))
	}
	var sawLease, sawCell bool
	for _, e := range doc.TraceEvents {
		name, _ := e["name"].(string)
		ph, _ := e["ph"].(string)
		if ph == "X" {
			if _, ok := e["dur"].(float64); !ok && name != "lease L1" {
				t.Fatalf("complete event %q missing dur", name)
			}
		}
		switch e["cat"] {
		case "lease":
			sawLease = true
		case "cell":
			sawCell = true
		}
	}
	if !sawLease || !sawCell {
		t.Fatalf("trace must contain lease and cell spans (lease=%v cell=%v)", sawLease, sawCell)
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	end := tr.Span(0, 0, "s", "c")
	end()
	tr.CompleteAt(0, 0, "x", "c", 0, 1)
	tr.Instant(0, 0, "i", "c")
	tr.Process(0, "p")
	tr.Lane(0, 0, "l")
	if tr.Len() != 0 {
		t.Fatal("nil tracer must record nothing")
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer output not valid JSON: %v", err)
	}
}
