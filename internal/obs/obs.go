// Package obs is the telemetry layer: a low-overhead metrics registry
// (atomic counters, gauges, fixed-bucket histograms), a span recorder
// emitting Chrome trace-event JSON, and probe series types for sampled
// machine introspection.
//
// Every instrument is nil-safe: a nil *Registry hands out nil
// instruments, and every method on a nil instrument is a no-op. Code
// under instrumentation resolves its instruments once and calls them
// unconditionally — when telemetry is off the calls cost a nil check
// and nothing else (no allocation, no atomics, no branches taken).
//
// Telemetry must never perturb results: instruments only ever *read*
// simulation state, all histogram values are integers so that merges
// are exact and order-independent, and nothing here touches the
// simulation's RNG or event ordering.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous level (queue depth, leases held).
type Gauge struct{ v atomic.Int64 }

// Set stores n. No-op on a nil gauge.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the level by n. No-op on a nil gauge.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current level; 0 on a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram over int64 observations.
// Bucket i counts observations v with v <= bounds[i] (and greater than
// bounds[i-1]); the final bucket is unbounded. All state is integer, so
// snapshots merge by exact elementwise addition — deterministic under
// any merge order, unlike float sums.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	sum    atomic.Int64
	n      atomic.Int64
}

// Observe records v. No-op on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(j int) bool { return v <= h.bounds[j] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations; 0 on a nil histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observations; 0 on a nil histogram.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Common bucket bounds. Durations are in microseconds, roughly
// geometric from 100µs to 100s; cycles cover simulation windows from
// 1k to 10M; depths cover small integer levels; PPM buckets hold
// dimensionless ratios scaled by 1e6 (e.g. sampled CI half-widths).
var (
	DurationBounds = []int64{100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000, 10_000_000, 30_000_000, 100_000_000}
	CycleBounds    = []int64{1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000, 10_000_000}
	DepthBounds    = []int64{0, 1, 2, 4, 8, 16, 32, 64, 128}
	PPMBounds      = []int64{1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000, 10_000_000}
)

// Registry resolves instruments by name. Resolution takes a mutex and
// is meant for setup paths; hot paths resolve once and hold the
// pointer. The zero registry value is not usable — use NewRegistry —
// but a nil *Registry is: it resolves every instrument to nil.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use. The first registration wins: later calls
// return the existing histogram regardless of bounds. Returns nil on a
// nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		b := make([]int64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}
