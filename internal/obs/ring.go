package obs

import (
	"math"
	"sync"
)

// Interval is one recorded slot of a Ring: a cumulative registry snapshot
// stamped with the tick it was taken at. The tick domain is the caller's:
// simulation-side rings record cycle counts (deterministic for a given
// seed), fleet-side rings record wall-clock milliseconds.
type Interval struct {
	At   int64    `json:"at"`
	Snap Snapshot `json:"snap"`
}

// Ring is a fixed-capacity time-series ring of registry snapshots. Writers
// call Record once per interval boundary — never on a simulation or serving
// hot path — so the mutex is cheap by construction: contention is bounded by
// the tick rate, not the event rate. Once full, the oldest interval is
// overwritten and counted as dropped.
//
// A nil *Ring is a valid, disabled ring: every method is a no-op or returns
// a zero value, matching the nil-instrument contract of the rest of the
// package.
type Ring struct {
	mu      sync.Mutex
	slots   []Interval
	head    int // next write position
	n       int // valid slots
	dropped int64
}

// NewRing returns a ring holding up to capacity intervals (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{slots: make([]Interval, capacity)}
}

// Record appends one interval. No-op on a nil ring.
func (r *Ring) Record(at int64, snap Snapshot) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.n == len(r.slots) {
		r.dropped++
	} else {
		r.n++
	}
	r.slots[r.head] = Interval{At: at, Snap: snap}
	r.head = (r.head + 1) % len(r.slots)
	r.mu.Unlock()
}

// Len returns the number of intervals currently held; 0 on a nil ring.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped returns how many intervals have been overwritten; 0 on a nil ring.
func (r *Ring) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Intervals returns a copy of the held intervals, oldest first. Nil on a nil
// or empty ring.
func (r *Ring) Intervals() []Interval {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.intervalsLocked()
}

func (r *Ring) intervalsLocked() []Interval {
	if r.n == 0 {
		return nil
	}
	out := make([]Interval, r.n)
	start := (r.head - r.n + len(r.slots)) % len(r.slots)
	for i := 0; i < r.n; i++ {
		out[i] = r.slots[(start+i)%len(r.slots)]
	}
	return out
}

// Window returns the delta snapshot spanning the most recent k intervals:
// the newest snapshot minus the snapshot k intervals back. Counters and
// histogram counts/sums subtract; gauges keep their newest level (a gauge is
// an instantaneous reading, not an accumulation). When the ring holds fewer
// than k+1 intervals the window reaches back to the oldest held interval —
// and, if nothing has been dropped yet, all the way to the zero baseline, so
// the delta is the newest cumulative snapshot itself. k <= 0 means "the
// whole ring". ok is false when the ring is nil or empty.
func (r *Ring) Window(k int) (delta Snapshot, fromAt, toAt int64, ok bool) {
	if r == nil {
		return Snapshot{}, 0, 0, false
	}
	r.mu.Lock()
	iv := r.intervalsLocked()
	dropped := r.dropped
	r.mu.Unlock()
	if len(iv) == 0 {
		return Snapshot{}, 0, 0, false
	}
	newest := iv[len(iv)-1]
	if k <= 0 || k > len(iv)-1 {
		if dropped == 0 {
			// Full history: the cumulative snapshot is its own delta from zero.
			return newest.Snap, 0, newest.At, true
		}
		k = len(iv) - 1
		if k == 0 {
			// One interval and history lost: no baseline to subtract.
			return Snapshot{}, 0, 0, false
		}
	}
	base := iv[len(iv)-1-k]
	return Delta(newest.Snap, base.Snap), base.At, newest.At, true
}

// SeriesPoint is one interval of a derived counter series: the counter's
// delta over the interval and its rate per tick unit.
type SeriesPoint struct {
	At    int64   `json:"at"`
	Delta int64   `json:"delta"`
	Rate  float64 `json:"rate"`
}

// CounterSeries derives the named counter's per-interval deltas and rates
// from adjacent snapshot pairs: len(Intervals())-1 points, oldest first.
// Nil on a nil ring or when fewer than two intervals are held.
func (r *Ring) CounterSeries(name string) []SeriesPoint {
	iv := r.Intervals()
	if len(iv) < 2 {
		return nil
	}
	out := make([]SeriesPoint, 0, len(iv)-1)
	for i := 1; i < len(iv); i++ {
		d := iv[i].Snap.Counters[name] - iv[i-1].Snap.Counters[name]
		p := SeriesPoint{At: iv[i].At, Delta: d}
		if span := iv[i].At - iv[i-1].At; span > 0 {
			p.Rate = float64(d) / float64(span)
		}
		out = append(out, p)
	}
	return out
}

// Delta returns cur minus prev: counters and histogram counts/sums subtract
// elementwise, gauges carry cur's level unchanged. Histograms present in cur
// but absent from prev (or with different bounds — a re-registered
// instrument) are taken whole. Like Merge, every quantity is an integer, so
// the result is exact.
func Delta(cur, prev Snapshot) Snapshot {
	var out Snapshot
	if len(cur.Counters) > 0 {
		out.Counters = make(map[string]int64, len(cur.Counters))
		for k, v := range cur.Counters {
			out.Counters[k] = v - prev.Counters[k]
		}
	}
	if len(cur.Gauges) > 0 {
		out.Gauges = make(map[string]int64, len(cur.Gauges))
		for k, v := range cur.Gauges {
			out.Gauges[k] = v
		}
	}
	if len(cur.Histograms) > 0 {
		out.Histograms = make(map[string]HistogramSnapshot, len(cur.Histograms))
		for name, h := range cur.Histograms {
			d := HistogramSnapshot{
				Bounds: append([]int64(nil), h.Bounds...),
				Counts: append([]int64(nil), h.Counts...),
				Sum:    h.Sum,
				Count:  h.Count,
			}
			if p, ok := prev.Histograms[name]; ok && boundsEqual(p.Bounds, h.Bounds) {
				for i := range d.Counts {
					d.Counts[i] -= p.Counts[i]
				}
				d.Sum -= p.Sum
				d.Count -= p.Count
			}
			out.Histograms[name] = d
		}
	}
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) of the histogram by linear
// interpolation inside the containing bucket: the standard
// fixed-bucket estimator (what Prometheus' histogram_quantile computes).
// Observations in the overflow bucket clamp to the last finite bound. ok is
// false on an empty histogram.
func (h HistogramSnapshot) Quantile(q float64) (float64, bool) {
	if h.Count <= 0 || len(h.Bounds) == 0 || math.IsNaN(q) {
		return 0, false
	}
	q = math.Min(math.Max(q, 0), 1)
	rank := q * float64(h.Count)
	var cum float64
	for i, c := range h.Counts {
		if c < 0 {
			c = 0 // a racy window delta can dip transiently; clamp, don't wrap
		}
		next := cum + float64(c)
		if next >= rank && c > 0 {
			if i >= len(h.Bounds) {
				return float64(h.Bounds[len(h.Bounds)-1]), true
			}
			lo := float64(0)
			if i > 0 {
				lo = float64(h.Bounds[i-1])
			}
			hi := float64(h.Bounds[i])
			if lo > hi {
				lo = hi
			}
			return lo + (hi-lo)*((rank-cum)/float64(c)), true
		}
		cum = next
	}
	return float64(h.Bounds[len(h.Bounds)-1]), true
}

// FractionAtMost estimates the fraction of observations <= v by the same
// within-bucket interpolation as Quantile. ok is false on an empty
// histogram.
func (h HistogramSnapshot) FractionAtMost(v int64) (float64, bool) {
	if h.Count <= 0 || len(h.Bounds) == 0 {
		return 0, false
	}
	var cum float64
	for i, c := range h.Counts {
		if c < 0 {
			c = 0
		}
		if i >= len(h.Bounds) {
			// Overflow bucket: everything beyond the last bound counts as > v
			// unless v clears the last bound (handled below by cum).
			break
		}
		hi := float64(h.Bounds[i])
		if float64(v) >= hi {
			cum += float64(c)
			continue
		}
		lo := float64(0)
		if i > 0 {
			lo = float64(h.Bounds[i-1])
		}
		if float64(v) > lo && hi > lo {
			cum += float64(c) * (float64(v) - lo) / (hi - lo)
		}
		break
	}
	f := cum / float64(h.Count)
	return math.Min(f, 1), true
}

// SLO declares a windowed latency objective over one histogram family: the
// Quantile-quantile of the metric's observations over the last Window ring
// intervals must not exceed Target. Equivalently (and how attainment is
// computed): at least a Quantile fraction of windowed observations must be
// <= Target.
type SLO struct {
	Metric   string  `json:"metric"`
	Quantile float64 `json:"quantile"` // e.g. 0.99
	Target   int64   `json:"target"`   // in the metric's own unit
	Window   int     `json:"window"`   // ring intervals; <= 0 means the whole ring
}

// SLOStatus is one evaluation of an SLO over a window delta.
type SLOStatus struct {
	SLO
	Observations  int64   `json:"observations"`
	Attained      float64 `json:"attained"`       // fraction of observations <= Target
	QuantileValue float64 `json:"quantile_value"` // the windowed q-quantile estimate
	Burn          float64 `json:"burn"`           // error-budget burn: (1-Attained)/(1-Quantile)
	Met           bool    `json:"met"`
}

// maxBurn caps the error-budget burn rate so a fully-missed objective (or a
// Quantile of 1.0, whose error budget is zero) stays finite and
// JSON-encodable.
const maxBurn = 1e6

// EvalSLO evaluates one SLO against a window-delta snapshot. An empty window
// is vacuously met (no observations, no burn): a quiet service has not spent
// any error budget.
func EvalSLO(s SLO, window Snapshot) SLOStatus {
	st := SLOStatus{SLO: s, Attained: 1, Met: true}
	h, ok := window.Histograms[s.Metric]
	if !ok || h.Count <= 0 {
		return st
	}
	st.Observations = h.Count
	st.Attained, _ = h.FractionAtMost(s.Target)
	st.QuantileValue, _ = h.Quantile(s.Quantile)
	if miss := 1 - st.Attained; miss > 0 {
		if budget := 1 - s.Quantile; budget > miss/maxBurn {
			st.Burn = miss / budget
		} else {
			st.Burn = maxBurn
		}
	}
	st.Met = st.Attained >= s.Quantile
	return st
}

// EvalSLO evaluates the SLO over the ring's most recent s.Window intervals.
// On a nil or empty ring the SLO is vacuously met.
func (r *Ring) EvalSLO(s SLO) SLOStatus {
	delta, _, _, ok := r.Window(s.Window)
	if !ok {
		return SLOStatus{SLO: s, Attained: 1, Met: true}
	}
	return EvalSLO(s, delta)
}
