package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// HistogramSnapshot is an immutable copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // len(Bounds)+1; last is the overflow bucket
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// Snapshot is a point-in-time copy of a registry. Map-backed so that
// encoding/json marshals it with sorted keys — the serialized form is
// deterministic for a given state regardless of registration order.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state. A nil registry yields
// an empty snapshot. Instruments may keep moving while the snapshot is
// taken; each individual value is read atomically.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{
				Bounds: append([]int64(nil), h.bounds...),
				Counts: make([]int64, len(h.counts)),
				Sum:    h.Sum(),
				Count:  h.Count(),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// Merge folds other into s and returns the result: counters and gauges
// add, histograms add elementwise. Because every quantity is an
// integer, the result is exact and independent of merge order — merging
// N shard snapshots yields identical bytes under any permutation.
// Histograms sharing a name must share bounds.
func Merge(s, other Snapshot) (Snapshot, error) {
	out := Snapshot{}
	addAll := func(dst *map[string]int64, src map[string]int64) {
		if len(src) == 0 {
			return
		}
		if *dst == nil {
			*dst = make(map[string]int64, len(src))
		}
		for k, v := range src {
			(*dst)[k] += v
		}
	}
	addAll(&out.Counters, s.Counters)
	addAll(&out.Counters, other.Counters)
	addAll(&out.Gauges, s.Gauges)
	addAll(&out.Gauges, other.Gauges)
	for _, src := range []map[string]HistogramSnapshot{s.Histograms, other.Histograms} {
		for name, h := range src {
			if out.Histograms == nil {
				out.Histograms = make(map[string]HistogramSnapshot)
			}
			cur, ok := out.Histograms[name]
			if !ok {
				out.Histograms[name] = HistogramSnapshot{
					Bounds: append([]int64(nil), h.Bounds...),
					Counts: append([]int64(nil), h.Counts...),
					Sum:    h.Sum,
					Count:  h.Count,
				}
				continue
			}
			if !boundsEqual(cur.Bounds, h.Bounds) {
				return Snapshot{}, fmt.Errorf("obs: histogram %q bounds mismatch in merge", name)
			}
			for i := range cur.Counts {
				cur.Counts[i] += h.Counts[i]
			}
			cur.Sum += h.Sum
			cur.Count += h.Count
			out.Histograms[name] = cur
		}
	}
	return out, nil
}

func boundsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WriteJSON writes the snapshot as indented JSON. Deterministic for a
// given state: encoding/json sorts map keys.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
