package obs

import (
	"math"
	"sync"
	"testing"
)

// snapWithCounter builds a minimal snapshot holding one counter value.
func snapWithCounter(name string, v int64) Snapshot {
	return Snapshot{Counters: map[string]int64{name: v}}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := int64(1); i <= 10; i++ {
		r.Record(i*100, snapWithCounter("c", i))
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	iv := r.Intervals()
	wantAt := []int64{700, 800, 900, 1000}
	for i, w := range wantAt {
		if iv[i].At != w {
			t.Errorf("interval %d at %d, want %d (oldest-first order broken)", i, iv[i].At, w)
		}
		if iv[i].Snap.Counters["c"] != w/100 {
			t.Errorf("interval %d counter %d, want %d", i, iv[i].Snap.Counters["c"], w/100)
		}
	}
	// Window over the last 2 intervals: counter delta 10-8.
	delta, fromAt, toAt, ok := r.Window(2)
	if !ok || delta.Counters["c"] != 2 || fromAt != 800 || toAt != 1000 {
		t.Errorf("Window(2) = %+v [%d,%d] ok=%t, want delta 2 over [800,1000]", delta.Counters, fromAt, toAt, ok)
	}
	// Whole-ring window with history dropped: best effort from the oldest
	// held interval, not from the (lost) zero baseline.
	delta, fromAt, _, ok = r.Window(0)
	if !ok || delta.Counters["c"] != 3 || fromAt != 700 {
		t.Errorf("Window(0) after drops = %+v from %d ok=%t, want delta 3 from 700", delta.Counters, fromAt, ok)
	}
}

func TestRingWindowBeforeWraparound(t *testing.T) {
	r := NewRing(8)
	r.Record(10, snapWithCounter("c", 5))
	r.Record(20, snapWithCounter("c", 9))
	// No drops yet: the whole-ring window is the cumulative snapshot itself
	// (delta from the zero baseline).
	delta, fromAt, toAt, ok := r.Window(0)
	if !ok || delta.Counters["c"] != 9 || fromAt != 0 || toAt != 20 {
		t.Errorf("Window(0) = %+v [%d,%d] ok=%t, want cumulative 9 over [0,20]", delta.Counters, fromAt, toAt, ok)
	}
}

func TestRingEmptyAndNil(t *testing.T) {
	var nilRing *Ring
	nilRing.Record(1, Snapshot{}) // must not panic
	if nilRing.Len() != 0 || nilRing.Intervals() != nil || nilRing.CounterSeries("x") != nil {
		t.Error("nil ring should be empty")
	}
	if _, _, _, ok := nilRing.Window(1); ok {
		t.Error("nil ring Window should not be ok")
	}
	st := nilRing.EvalSLO(SLO{Metric: "m", Quantile: 0.99, Target: 10})
	if !st.Met || st.Burn != 0 || st.Observations != 0 {
		t.Errorf("nil ring SLO should be vacuously met, got %+v", st)
	}
	empty := NewRing(4)
	if _, _, _, ok := empty.Window(0); ok {
		t.Error("empty ring Window should not be ok")
	}
}

func TestRingCounterSeries(t *testing.T) {
	r := NewRing(8)
	vals := []int64{0, 3, 3, 10}
	for i, v := range vals {
		r.Record(int64(i)*50, snapWithCounter("c", v))
	}
	s := r.CounterSeries("c")
	if len(s) != 3 {
		t.Fatalf("series length %d, want 3", len(s))
	}
	wantDelta := []int64{3, 0, 7}
	for i, w := range wantDelta {
		if s[i].Delta != w {
			t.Errorf("series[%d].Delta = %d, want %d", i, s[i].Delta, w)
		}
		if want := float64(w) / 50; math.Abs(s[i].Rate-want) > 1e-12 {
			t.Errorf("series[%d].Rate = %g, want %g", i, s[i].Rate, want)
		}
	}
}

func TestDeltaGaugesKeepLevel(t *testing.T) {
	cur := Snapshot{
		Counters: map[string]int64{"c": 10},
		Gauges:   map[string]int64{"g": 7},
	}
	prev := Snapshot{
		Counters: map[string]int64{"c": 4},
		Gauges:   map[string]int64{"g": 99},
	}
	d := Delta(cur, prev)
	if d.Counters["c"] != 6 {
		t.Errorf("counter delta = %d, want 6", d.Counters["c"])
	}
	if d.Gauges["g"] != 7 {
		t.Errorf("gauge in delta = %d, want the newest level 7", d.Gauges["g"])
	}
}

// observeAll records values into a registry histogram and snapshots it.
func histSnapshot(t *testing.T, bounds []int64, values []int64) HistogramSnapshot {
	t.Helper()
	reg := NewRegistry()
	h := reg.Histogram("h", bounds)
	for _, v := range values {
		h.Observe(v)
	}
	return reg.Snapshot().Histograms["h"]
}

func TestQuantileInterpolation(t *testing.T) {
	bounds := []int64{10, 20, 40}
	// 10 observations uniformly in (0,10], 10 in (10,20].
	var vals []int64
	for i := int64(1); i <= 10; i++ {
		vals = append(vals, i, 10+i)
	}
	h := histSnapshot(t, bounds, vals)
	if q, ok := h.Quantile(0.5); !ok || q != 10 {
		t.Errorf("p50 = %g ok=%t, want 10 (bucket boundary)", q, ok)
	}
	if q, ok := h.Quantile(0.75); !ok || q != 15 {
		t.Errorf("p75 = %g ok=%t, want 15 (midway through (10,20])", q, ok)
	}
	// Overflow clamps to the last finite bound.
	over := histSnapshot(t, bounds, []int64{100, 200, 300})
	if q, ok := over.Quantile(0.99); !ok || q != 40 {
		t.Errorf("overflow p99 = %g ok=%t, want clamp to 40", q, ok)
	}
	// Empty histogram: not ok.
	if _, ok := (HistogramSnapshot{Bounds: bounds, Counts: make([]int64, 4)}).Quantile(0.5); ok {
		t.Error("empty histogram quantile should not be ok")
	}
}

func TestFractionAtMost(t *testing.T) {
	bounds := []int64{10, 20, 40}
	var vals []int64
	for i := int64(1); i <= 10; i++ {
		vals = append(vals, i, 10+i)
	}
	h := histSnapshot(t, bounds, vals)
	cases := []struct {
		v    int64
		want float64
	}{
		{10, 0.5},  // first bucket entirely
		{20, 1.0},  // both buckets
		{15, 0.75}, // half of the second bucket interpolated
		{0, 0},     // below every observation
	}
	for _, c := range cases {
		if got, ok := h.FractionAtMost(c.v); !ok || math.Abs(got-c.want) > 1e-12 {
			t.Errorf("FractionAtMost(%d) = %g ok=%t, want %g", c.v, got, ok, c.want)
		}
	}
}

// TestQuantilePermutationMergeInvariance is the windowed-quantile analogue of
// the snapshot-merge contract: merging per-shard histogram snapshots in any
// order yields the identical quantile estimate, bit for bit.
func TestQuantilePermutationMergeInvariance(t *testing.T) {
	bounds := []int64{100, 1_000, 10_000}
	shards := []Snapshot{}
	for s := 0; s < 4; s++ {
		reg := NewRegistry()
		h := reg.Histogram("lat", bounds)
		for i := 0; i < 50; i++ {
			h.Observe(int64((s*7919 + i*131) % 12_000))
		}
		shards = append(shards, reg.Snapshot())
	}
	perms := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}}
	var ref float64
	var refAttained float64
	for pi, perm := range perms {
		merged := Snapshot{}
		var err error
		for _, i := range perm {
			merged, err = Merge(merged, shards[i])
			if err != nil {
				t.Fatal(err)
			}
		}
		q, ok := merged.Histograms["lat"].Quantile(0.99)
		if !ok {
			t.Fatal("merged histogram unexpectedly empty")
		}
		a, _ := merged.Histograms["lat"].FractionAtMost(5_000)
		if pi == 0 {
			ref, refAttained = q, a
			continue
		}
		if q != ref || a != refAttained {
			t.Errorf("permutation %v: quantile %v / attained %v, want %v / %v (merge-order dependent!)",
				perm, q, a, ref, refAttained)
		}
	}
}

func TestEvalSLO(t *testing.T) {
	bounds := []int64{10, 100, 1_000}
	// 99 fast observations, 1 slow: p99 lands right around the target.
	var vals []int64
	for i := 0; i < 99; i++ {
		vals = append(vals, 5)
	}
	vals = append(vals, 500)
	win := Snapshot{Histograms: map[string]HistogramSnapshot{"lat": histSnapshot(t, bounds, vals)}}

	met := EvalSLO(SLO{Metric: "lat", Quantile: 0.95, Target: 100}, win)
	if !met.Met || met.Attained != 0.99 || met.Observations != 100 {
		t.Errorf("attainable SLO: %+v, want met with attained 0.99 over 100 obs", met)
	}
	if math.Abs(met.Burn-0.2) > 1e-9 { // (1-0.99)/(1-0.95)
		t.Errorf("burn = %g, want 0.2", met.Burn)
	}

	unmet := EvalSLO(SLO{Metric: "lat", Quantile: 0.999, Target: 100}, win)
	if unmet.Met || unmet.Burn <= 1 {
		t.Errorf("impossible SLO: %+v, want unmet with burn > 1", unmet)
	}

	// Zero error budget (quantile 1.0) with any miss: burn caps, not Inf.
	capped := EvalSLO(SLO{Metric: "lat", Quantile: 1.0, Target: 100}, win)
	if capped.Burn != maxBurn || capped.Met {
		t.Errorf("zero-budget SLO: %+v, want capped burn %g", capped, maxBurn)
	}

	// Empty window: vacuously met, zero burn.
	empty := EvalSLO(SLO{Metric: "lat", Quantile: 0.99, Target: 100}, Snapshot{})
	if !empty.Met || empty.Burn != 0 || empty.Attained != 1 {
		t.Errorf("empty window: %+v, want vacuously met", empty)
	}
}

// TestRingConcurrentHammer races Observe against Record/Window/EvalSLO;
// run under -race in CI. The final cumulative window must see every
// observation once the writers are done.
func TestRingConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", DurationBounds)
	c := reg.Counter("ops")
	r := NewRing(64)

	const writers = 8
	const perWriter = 5_000
	var observers sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		observers.Add(1)
		go func(wi int) {
			defer observers.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(int64((wi*31 + i) % 50_000))
				c.Inc()
			}
		}(wi)
	}
	stop := make(chan struct{})
	var snapshotter sync.WaitGroup
	snapshotter.Add(1)
	go func() { // records and reads concurrently with the observers
		defer snapshotter.Done()
		at := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			at++
			r.Record(at, reg.Snapshot())
			r.Window(8)
			r.EvalSLO(SLO{Metric: "lat", Quantile: 0.99, Target: 1_000, Window: 8})
			r.CounterSeries("ops")
		}
	}()
	observers.Wait()
	close(stop)
	snapshotter.Wait()

	// A final record after every observer finished must account for every
	// observation, on both the cumulative instruments and the ring's newest
	// interval.
	r.Record(1<<30, reg.Snapshot())
	iv := r.Intervals()
	newest := iv[len(iv)-1].Snap
	if got := newest.Histograms["lat"].Count; got != writers*perWriter {
		t.Fatalf("newest interval saw %d observations, want %d", got, writers*perWriter)
	}
	if c.Value() != writers*perWriter {
		t.Fatalf("counter %d, want %d", c.Value(), writers*perWriter)
	}
}
