package obs

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("second resolution returned a different counter")
	}

	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}

	h := r.Histogram("h", []int64{10, 100})
	for _, v := range []int64{5, 10, 11, 100, 101, 1000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("hist count = %d, want 6", got)
	}
	if got := h.Sum(); got != 5+10+11+100+101+1000 {
		t.Fatalf("hist sum = %d", got)
	}
	s := r.Snapshot()
	hs := s.Histograms["h"]
	want := []int64{2, 2, 2} // (<=10), (<=100), overflow
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", DurationBounds)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must resolve nil instruments")
	}
	// Every operation must be a safe no-op.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(2)
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

// TestDisabledZeroAlloc is the "zero allocation disabled" half of the
// overhead contract: every disabled-path operation allocates nothing.
func TestDisabledZeroAlloc(t *testing.T) {
	var r *Registry
	var tr *Tracer
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", DurationBounds)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(3)
		g.Add(1)
		h.Observe(7)
		end := tr.Span(0, 0, "s", "cat")
		end()
		tr.CompleteAt(0, 0, "x", "cat", 0, 1)
	}); n != 0 {
		t.Fatalf("disabled telemetry allocated %.1f allocs/op, want 0", n)
	}
}

// TestSnapshotMergeDeterministic is the shard-merge determinism
// contract: merging per-shard snapshots yields identical serialized
// bytes under every shard-order permutation.
func TestSnapshotMergeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shards := make([]Snapshot, 4)
	for i := range shards {
		r := NewRegistry()
		c := r.Counter("cells.done")
		h := r.Histogram("cell.us", DurationBounds)
		h2 := r.Histogram("turnaround.cycles", CycleBounds)
		for j := 0; j < 50; j++ {
			c.Inc()
			h.Observe(rng.Int63n(200_000_000))
			h2.Observe(rng.Int63n(20_000_000))
		}
		r.Gauge("depth").Set(int64(i))
		shards[i] = r.Snapshot()
	}
	perms := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}}
	var ref []byte
	for _, p := range perms {
		var merged Snapshot
		var err error
		for _, i := range p {
			merged, err = Merge(merged, shards[i])
			if err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := merged.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = buf.Bytes()
			continue
		}
		if !bytes.Equal(ref, buf.Bytes()) {
			t.Fatalf("merge order %v produced different bytes:\n%s\nvs\n%s", p, ref, buf.Bytes())
		}
	}
}

func TestMergeBoundsMismatch(t *testing.T) {
	r1 := NewRegistry()
	r1.Histogram("h", []int64{1, 2}).Observe(1)
	r2 := NewRegistry()
	r2.Histogram("h", []int64{1, 2, 3}).Observe(1)
	if _, err := Merge(r1.Snapshot(), r2.Snapshot()); err == nil {
		t.Fatal("merging histograms with different bounds must error")
	}
}

// TestObsConcurrent hammers one registry from many goroutines; run
// under -race in CI.
func TestObsConcurrent(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("hist", CycleBounds)
			for i := 0; i < 1000; i++ {
				c.Inc()
				r.Gauge("depth").Add(1)
				h.Observe(int64(i))
				end := tr.Span(0, w, "op", "test")
				end()
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
	if got := r.Histogram("hist", CycleBounds).Count(); got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
	if tr.Len() != 8000 {
		t.Fatalf("tracer has %d events, want 8000", tr.Len())
	}
}
