package obs

import (
	"strings"
	"testing"
	"time"
)

func TestWriteProm(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("coord.leases.granted").Add(7)
	reg.Gauge("sched.queue-depth").Set(3)
	h := reg.Histogram("coord.cell.us", []int64{100, 1_000})
	h.Observe(50)
	h.Observe(50)
	h.Observe(500)
	h.Observe(5_000)

	var b strings.Builder
	if err := reg.Snapshot().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	wantLines := []string{
		"# TYPE coord_leases_granted counter",
		"coord_leases_granted 7",
		"# TYPE sched_queue_depth gauge",
		"sched_queue_depth 3",
		"# TYPE coord_cell_us histogram",
		`coord_cell_us_bucket{le="100"} 2`,
		`coord_cell_us_bucket{le="1000"} 3`, // cumulative, not per-bucket
		`coord_cell_us_bucket{le="+Inf"} 4`,
		"coord_cell_us_sum 5600",
		"coord_cell_us_count 4",
	}
	for _, w := range wantLines {
		if !strings.Contains(out, w+"\n") {
			t.Errorf("exposition missing line %q:\n%s", w, out)
		}
	}

	// Deterministic for a given state.
	var b2 strings.Builder
	if err := reg.Snapshot().WriteProm(&b2); err != nil {
		t.Fatal(err)
	}
	if out != b2.String() {
		t.Error("two expositions of the same state differ")
	}

	// Every non-comment line must be "name value" or "name{le=...} value" —
	// the shape a text-format parser accepts.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"coord.leases.granted": "coord_leases_granted",
		"9lives":               "_9lives",
		"a-b c":                "a_b_c",
		"":                     "_",
		"ok_name:sub":          "ok_name:sub",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFlightRecorder(t *testing.T) {
	f := NewFlightRecorder(3)
	at := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	f.SetClock(func() time.Time { return at })
	for i := 1; i <= 5; i++ {
		f.Record("lease", "event %d", i)
	}
	ev := f.Events()
	if len(ev) != 3 {
		t.Fatalf("kept %d events, want 3", len(ev))
	}
	if ev[0].Seq != 3 || ev[2].Seq != 5 {
		t.Errorf("kept seqs %d..%d, want 3..5 (oldest overwritten)", ev[0].Seq, ev[2].Seq)
	}
	if ev[2].Msg != "event 5" || ev[2].Kind != "lease" {
		t.Errorf("newest event = %+v", ev[2])
	}
	d := f.Dump("test abort")
	if d.Recorded != 5 || d.Dropped != 2 || d.Reason != "test abort" {
		t.Errorf("dump header = %+v, want recorded 5, dropped 2", d)
	}

	path := t.TempDir() + "/flightrec.json"
	if err := f.WriteFile(path, "test abort"); err != nil {
		t.Fatal(err)
	}

	// Nil recorder: everything is a no-op, and a dump is still writable.
	var nilRec *FlightRecorder
	nilRec.Record("x", "ignored")
	if nilRec.Len() != 0 || nilRec.Events() != nil {
		t.Error("nil recorder should hold nothing")
	}
	if err := nilRec.WriteFile(t.TempDir()+"/nil.json", "empty"); err != nil {
		t.Fatal(err)
	}
}
