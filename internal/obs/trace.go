package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Tracer records spans in the Chrome trace-event format, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Spans live on (pid,
// tid) lanes: the coordinator uses wall-clock lanes per worker, the
// simulators use cycle-domain lanes (simulation cycles reported as
// microseconds), which makes their traces deterministic.
//
// A nil *Tracer is a valid, disabled tracer: every method is a no-op
// and Span returns a shared no-op closure, so disabled call sites
// allocate nothing.
type Tracer struct {
	mu     sync.Mutex
	start  time.Time
	events []traceEvent
}

type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTracer returns a tracer whose wall-clock span timestamps are
// microseconds since this call.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

func (t *Tracer) now() float64 {
	return float64(time.Since(t.start)) / float64(time.Microsecond)
}

var noopEnd = func() {}

// Since converts a wall-clock instant to a trace timestamp:
// microseconds since the tracer started. 0 on a nil tracer.
func (t *Tracer) Since(at time.Time) float64 {
	if t == nil {
		return 0
	}
	return float64(at.Sub(t.start)) / float64(time.Microsecond)
}

// Span opens a wall-clock span on lane (pid, tid) and returns the
// closure that ends it. On a nil tracer it returns a shared no-op.
func (t *Tracer) Span(pid, tid int, name, cat string) func() {
	if t == nil {
		return noopEnd
	}
	begin := t.now()
	return func() {
		t.CompleteAt(pid, tid, name, cat, begin, t.now()-begin)
	}
}

// CompleteAt records a complete span with explicit timestamp and
// duration (both in microseconds — or simulation cycles for
// cycle-domain traces). No-op on a nil tracer.
func (t *Tracer) CompleteAt(pid, tid int, name, cat string, ts, dur float64) {
	if t == nil {
		return
	}
	t.append(traceEvent{Name: name, Cat: cat, Ph: "X", TS: ts, Dur: dur, PID: pid, TID: tid})
}

// Instant records a zero-duration instant event (thread-scoped).
// No-op on a nil tracer.
func (t *Tracer) Instant(pid, tid int, name, cat string) {
	if t == nil {
		return
	}
	t.append(traceEvent{Name: name, Cat: cat, Ph: "i", TS: t.now(), PID: pid, TID: tid,
		Args: map[string]any{"s": "t"}})
}

// Process names a pid lane group in the trace viewer. No-op on a nil
// tracer.
func (t *Tracer) Process(pid int, name string) {
	if t == nil {
		return
	}
	t.append(traceEvent{Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]any{"name": name}})
}

// Lane names a (pid, tid) lane in the trace viewer. No-op on a nil
// tracer.
func (t *Tracer) Lane(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.append(traceEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name}})
}

func (t *Tracer) append(e traceEvent) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Len returns the number of recorded events; 0 on a nil tracer.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Write writes the trace as a Chrome trace-event JSON object.
func (t *Tracer) Write(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	t.mu.Lock()
	events := make([]traceEvent, len(t.events))
	copy(events, t.events)
	t.mu.Unlock()
	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{events, "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteFile writes the trace to path.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: writing trace: %w", err)
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: writing trace: %w", err)
	}
	return f.Close()
}
