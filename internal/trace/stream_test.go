package trace

import (
	"testing"
	"testing/quick"

	"dcra/internal/isa"
)

func TestAllProfilesValid(t *testing.T) {
	for name, p := range Benchmarks() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("map key %q != profile name %q", name, p.Name)
		}
	}
}

func TestNamesCoverBenchmarks(t *testing.T) {
	names := Names()
	bm := Benchmarks()
	if len(names) != len(bm) {
		t.Fatalf("Names() has %d entries, Benchmarks() %d", len(names), len(bm))
	}
	for _, n := range names {
		if _, ok := bm[n]; !ok {
			t.Errorf("Names() lists unknown benchmark %q", n)
		}
	}
}

func TestTaxonomyMatchesPaperTable3(t *testing.T) {
	// The paper's split: MEM iff L2 miss rate >= 1%.
	for name, p := range Benchmarks() {
		wantMem := p.PaperL2MissRate >= 1.0
		if p.Mem != wantMem {
			t.Errorf("%s: Mem=%v but paper rate %.2f%%", name, p.Mem, p.PaperL2MissRate)
		}
	}
}

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(MustProfile("gcc"), 0, 99)
	b := NewStream(MustProfile("gcc"), 0, 99)
	for i := uint64(0); i < 20000; i++ {
		ua, ub := *a.At(i), *b.At(i)
		if ua != ub {
			t.Fatalf("streams diverged at %d: %+v vs %+v", i, ua, ub)
		}
	}
}

func TestStreamsDifferAcrossThreadsAndSeeds(t *testing.T) {
	base := NewStream(MustProfile("gcc"), 0, 99)
	otherThread := NewStream(MustProfile("gcc"), 1, 99)
	otherSeed := NewStream(MustProfile("gcc"), 0, 100)
	same1, same2 := 0, 0
	for i := uint64(0); i < 1000; i++ {
		if base.At(i).Class == otherThread.At(i).Class {
			same1++
		}
		if base.At(i).Class == otherSeed.At(i).Class {
			same2++
		}
	}
	if same1 == 1000 || same2 == 1000 {
		t.Fatal("streams for different threads/seeds are identical")
	}
}

func TestReplayAfterRelease(t *testing.T) {
	s := NewStream(MustProfile("gzip"), 0, 7)
	// Generate ahead, snapshot a window, release a prefix, then re-read.
	var snap []isa.Uop
	for i := uint64(0); i < 5000; i++ {
		snap = append(snap, *s.At(i))
	}
	s.Release(3000)
	for i := uint64(3000); i < 5000; i++ {
		if got := *s.At(i); got != snap[i] {
			t.Fatalf("replay mismatch at %d", i)
		}
	}
}

func TestReleasedAccessPanics(t *testing.T) {
	s := NewStream(MustProfile("gzip"), 0, 7)
	for i := uint64(0); i < 3000; i++ {
		s.At(i)
	}
	s.Release(2000)
	defer func() {
		if recover() == nil {
			t.Fatal("At() below the release point must panic")
		}
	}()
	s.At(100)
}

func TestUopsStructurallyValid(t *testing.T) {
	for _, name := range []string{"mcf", "gzip", "swim", "eon"} {
		s := NewStream(MustProfile(name), 0, 3)
		for i := uint64(0); i < 20000; i++ {
			u := s.At(i)
			if err := u.Validate(); err != nil {
				t.Fatalf("%s uop %d: %v", name, i, err)
			}
			if u.Index != i {
				t.Fatalf("%s uop %d has index %d", name, i, u.Index)
			}
			s.Release(i)
		}
	}
}

func TestStaticCode(t *testing.T) {
	// The same PC must always host the same instruction class.
	s := NewStream(MustProfile("gcc"), 0, 1)
	classes := map[uint64]isa.OpClass{}
	for i := uint64(0); i < 50000; i++ {
		u := s.At(i)
		if prev, ok := classes[u.PC]; ok && prev != u.Class {
			t.Fatalf("PC %#x changed class %v -> %v", u.PC, prev, u.Class)
		}
		classes[u.PC] = u.Class
		s.Release(i)
	}
}

func TestBranchTargetsStablePerSite(t *testing.T) {
	s := NewStream(MustProfile("gzip"), 0, 5)
	targets := map[uint64]uint64{}
	for i := uint64(0); i < 100000; i++ {
		u := s.At(i)
		if u.Class == isa.OpBranch && u.Taken && u.CallKind == isa.CallNone {
			if prev, ok := targets[u.PC]; ok && prev != u.Target {
				t.Fatalf("branch at %#x changed target %#x -> %#x", u.PC, prev, u.Target)
			}
			targets[u.PC] = u.Target
		}
		s.Release(i)
	}
	if len(targets) == 0 {
		t.Fatal("no taken branches observed")
	}
}

func TestInstructionMixRoughlyMatchesProfile(t *testing.T) {
	p := MustProfile("gcc")
	s := NewStream(p, 0, 11)
	var loads, branches, total float64
	for i := uint64(0); i < 200000; i++ {
		u := s.At(i)
		total++
		switch u.Class {
		case isa.OpLoad:
			loads++
		case isa.OpBranch:
			branches++
		}
		s.Release(i)
	}
	// Dynamic frequencies deviate from static fractions (loops weight PCs
	// unevenly); allow a wide band.
	if f := loads / total; f < p.LoadFrac*0.5 || f > p.LoadFrac*1.6 {
		t.Errorf("load fraction %.3f far from profile %.3f", f, p.LoadFrac)
	}
	if f := branches / total; f < p.BranchFrac*0.4 || f > p.BranchFrac*1.8 {
		t.Errorf("branch fraction %.3f far from profile %.3f", f, p.BranchFrac)
	}
}

func TestAddressesStayInRegions(t *testing.T) {
	s := NewStream(MustProfile("art"), 0, 13)
	fp := s.Footprint()
	for i := uint64(0); i < 50000; i++ {
		u := s.At(i)
		if isa.IsMem(u.Class) {
			if u.Addr < fp.HotBase {
				t.Fatalf("data address %#x below hot base %#x", u.Addr, fp.HotBase)
			}
		} else if u.PC < fp.CodeBase || u.PC >= fp.CodeBase+uint64(fp.CodeBytes) {
			t.Fatalf("PC %#x outside code region", u.PC)
		}
		s.Release(i)
	}
}

func TestCallStackBalance(t *testing.T) {
	// Returns must always target a previously pushed call's fall-through.
	s := NewStream(MustProfile("eon"), 0, 17)
	var stack []uint64
	for i := uint64(0); i < 200000; i++ {
		u := s.At(i)
		switch u.CallKind {
		case isa.CallDirect:
			stack = append(stack, u.PC+4)
		case isa.CallReturn:
			if len(stack) == 0 {
				t.Fatalf("return at %d with empty call stack", i)
			}
			want := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if u.Target != want {
				t.Fatalf("return target %#x, want %#x", u.Target, want)
			}
		}
		s.Release(i)
	}
}

func TestWrongPathDeterministicPerDraw(t *testing.T) {
	a := NewStream(MustProfile("gzip"), 0, 23)
	b := NewStream(MustProfile("gzip"), 0, 23)
	pc := a.Footprint().CodeBase
	for i := 0; i < 1000; i++ {
		ua, ub := a.WrongPath(pc), b.WrongPath(pc)
		if ua != ub {
			t.Fatalf("wrong-path streams diverged at draw %d", i)
		}
		pc = a.NextWrongPC(&ua)
		if pc != b.NextWrongPC(&ub) {
			t.Fatal("NextWrongPC diverged")
		}
	}
}

func TestWrongPathStaysInCode(t *testing.T) {
	s := NewStream(MustProfile("gcc"), 0, 29)
	fp := s.Footprint()
	pc := fp.CodeBase + 4096
	for i := 0; i < 5000; i++ {
		u := s.WrongPath(pc)
		if u.PC < fp.CodeBase || u.PC >= fp.CodeBase+uint64(fp.CodeBytes) {
			t.Fatalf("wrong-path PC %#x escaped the code region", u.PC)
		}
		if !u.WrongPath {
			t.Fatal("wrong-path uop not flagged")
		}
		pc = s.NextWrongPC(&u)
	}
}

func TestValidateRejectsBrokenProfiles(t *testing.T) {
	base := MustProfile("gzip")
	mods := map[string]func(*Profile){
		"no name":       func(p *Profile) { p.Name = "" },
		"mix over 1":    func(p *Profile) { p.LoadFrac = 0.9; p.StoreFrac = 0.2 },
		"negative frac": func(p *Profile) { p.ChaseProb = -0.1 },
		"dep below 1":   func(p *Profile) { p.MeanDep = 0.5 },
		"zero code":     func(p *Profile) { p.CodeBytes = 0 },
		"zero phase":    func(p *Profile) { p.PhaseLen = 0 },
	}
	for name, mod := range mods {
		p := base
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestGeometricDepDistances(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		s := NewStream(MustProfile("bzip2"), 0, seed)
		for i := uint64(0); i < 200; i++ {
			u := s.At(i)
			if uint64(u.Dep1) > i || uint64(u.Dep2) > i {
				return false // dependence beyond program start
			}
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSkipUopMatchesGenerate pins fast-forward's core invariant: skipping a
// uop yields bit-identical content to generating it, and a stream that
// alternates between the two paths stays on the canonical sequence.
func TestSkipUopMatchesGenerate(t *testing.T) {
	for _, name := range []string{"gzip", "mcf", "gcc", "art"} {
		ref := NewStream(MustProfile(name), 0, 99)
		mixed := NewStream(MustProfile(name), 0, 99)
		idx := uint64(0)
		var u isa.Uop
		for round := 0; round < 50; round++ {
			// A stretch of retained generation, fully released...
			for i := 0; i < 137; i++ {
				got := *mixed.At(idx)
				if want := *ref.At(idx); got != want {
					t.Fatalf("%s: At mismatch at %d: %+v vs %+v", name, idx, got, want)
				}
				idx++
				mixed.Release(idx)
			}
			// ...then a stretch of skip-mode advancement.
			for i := 0; i < 211; i++ {
				mixed.SkipUop(&u)
				if want := *ref.At(idx); u != want {
					t.Fatalf("%s: SkipUop mismatch at %d: %+v vs %+v", name, idx, u, want)
				}
				idx++
			}
			ref.Release(idx)
		}
	}
}

// TestSkipUopRequiresReleasedPrefix pins the precondition: skipping with
// retained (unreleased) uops must panic rather than silently desync.
func TestSkipUopRequiresReleasedPrefix(t *testing.T) {
	s := NewStream(MustProfile("gzip"), 0, 7)
	s.At(10) // retain a window
	defer func() {
		if recover() == nil {
			t.Fatal("SkipUop with retained uops must panic")
		}
	}()
	var u isa.Uop
	s.SkipUop(&u)
}
