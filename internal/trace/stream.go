package trace

import (
	"fmt"

	"dcra/internal/isa"
	"dcra/internal/rng"
)

// Stream produces the canonical micro-op sequence of one thread and retains
// every uop between the commit point and the generation frontier, so squash
// events (branch mispredictions, FLUSH) can deterministically re-fetch the
// same path.
//
// The front end addresses uops by absolute index:
//
//	u := s.At(i)     // i may be at most the generation frontier
//	s.Release(i)     // uops below i have committed and may be dropped
type Stream struct {
	prof Profile

	rg  *rng.Source // canonical-path randomness
	wrg *rng.Source // wrong-path randomness (separate so squashes cannot
	// perturb the canonical stream)

	buf  []isa.Uop // retained window, buf[0] has index base
	base uint64
	next uint64 // == base + len(buf): next index to synthesise

	// Generator machine state (advances only at the frontier).
	pc        uint64
	callStack []uint64
	sinceLoad int  // distance to the previous load, for pointer chasing
	slow      bool // current phase
	phaseLeft int

	// Address-space layout: regions are disjoint per thread.
	codeBase uint64
	regBase  [3]uint64 // hot, warm, cold bases
	regSize  [3]uint64
	lastAddr [3]uint64 // stride cursors

	// seed for per-site branch bias hashing, fixed per stream.
	siteSeed uint64

	// skim, set for the duration of a SkipUops call, elides the
	// dependency-distance CDF searches (the draws still happen; see
	// depDistance). Never set on any path that observes uop content.
	skim bool

	// Precomputed geometric samplers for the profile's fixed means (shared
	// across streams; see rng.NewGeomDist).
	depDist   *rng.GeomDist
	phaseDist *rng.GeomDist

	// classTab memoises classAt per static instruction (0xff = unfilled):
	// the class is a pure function of (pc, siteSeed), and both the
	// generator and the fast-forward walk consult it for every uop.
	classTab []uint8

	// mixTotal caches rng.Pick's positive-weight sums for the two
	// working-set mixtures ([0] fast, [1] slow), so the per-access address
	// draw skips the accumulation pass. Summation order matches Pick's, so
	// draws stay bit-identical.
	mixTotal [2]float64
}

// Region indices within the working-set mixture.
const (
	regionHot = iota
	regionWarm
	regionCold
)

// maxCallDepth bounds the synthetic call stack; beyond it calls degrade to
// plain branches (deep recursion would otherwise grow memory unboundedly).
const maxCallDepth = 64

// NewStream builds the canonical stream for profile p on hardware context
// threadID, seeded deterministically from seed.
func NewStream(p Profile, threadID int, seed uint64) *Stream {
	s := &Stream{rg: new(rng.Source), wrg: new(rng.Source)}
	s.init(p, threadID, seed)
	return s
}

// Rebind resets the stream to the exact post-NewStream(p, threadID, seed)
// state, reusing the retained-window and call-stack backing arrays. A rebound
// stream produces a bit-identical uop sequence to a freshly constructed one;
// the machine-reuse lifecycle depends on this.
func (s *Stream) Rebind(p Profile, threadID int, seed uint64) {
	s.init(p, threadID, seed)
}

// init sets every field from (p, threadID, seed). The RNG derivation order —
// rg, wrg, siteSeed, then the initial phase draw — is shared with the
// original constructor and must not change: it defines the canonical streams
// of every recorded experiment.
func (s *Stream) init(p Profile, threadID int, seed uint64) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	var base rng.Source
	base.Reseed(seed ^ (uint64(threadID)+1)*0x9e3779b97f4a7c15)
	s.prof = p
	base.SplitInto(s.rg)
	base.SplitInto(s.wrg)
	s.siteSeed = base.Uint64()
	s.buf = s.buf[:0]
	s.base, s.next = 0, 0
	s.callStack = s.callStack[:0]
	s.sinceLoad = 0
	// Stagger the layout per thread by odd line counts: power-of-two bases
	// would make every thread's regions congruent modulo the cache-set
	// space, so all threads would fight over the same sets (the real world
	// equivalent is the OS's random page colouring).
	stagger := uint64(threadID) * 73 * 64
	s.codeBase = (uint64(threadID)+1)<<40 + stagger
	s.pc = s.codeBase
	s.regBase[regionHot] = s.codeBase + (1 << 28) + 31*64
	s.regBase[regionWarm] = s.codeBase + (2 << 28) + 97*64
	s.regBase[regionCold] = s.codeBase + (8 << 28) + 41*64
	s.regSize[regionHot] = uint64(p.HotBytes)
	s.regSize[regionWarm] = uint64(p.WarmBytes)
	s.regSize[regionCold] = uint64(p.ColdBytes)
	for r := range s.lastAddr {
		s.lastAddr[r] = s.regBase[r]
	}
	s.phaseLeft = 1 // choose a phase on the first uop
	s.slow = base.Bool(p.SlowFrac)
	s.depDist = rng.NewGeomDist(p.MeanDep)
	s.phaseDist = rng.NewGeomDist(p.PhaseLen)
	if n := p.CodeBytes / 4; cap(s.classTab) >= n {
		s.classTab = s.classTab[:n]
	} else {
		s.classTab = make([]uint8, n)
	}
	for i := range s.classTab {
		s.classTab[i] = 0xff
	}
	s.mixTotal[0] = pickTotal(p.FastMix[:])
	s.mixTotal[1] = pickTotal(p.SlowMix[:])
}

// pickTotal accumulates the positive weights exactly like rng.Pick.
func pickTotal(weights []float64) float64 {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	return total
}

// Profile returns the profile the stream was built from.
func (s *Stream) Profile() Profile { return s.prof }

// Footprint describes the stream's address-space regions, used by the
// simulator to pre-warm caches (see cache.Hierarchy.PrewarmData).
type Footprint struct {
	CodeBase  uint64
	CodeBytes int
	HotBase   uint64
	HotBytes  int
	WarmBase  uint64
	WarmBytes int
}

// Footprint returns the stream's resident regions (cold is excluded by
// design: it must miss).
func (s *Stream) Footprint() Footprint {
	return Footprint{
		CodeBase:  s.codeBase,
		CodeBytes: s.prof.CodeBytes,
		HotBase:   s.regBase[regionHot],
		HotBytes:  s.prof.HotBytes,
		WarmBase:  s.regBase[regionWarm],
		WarmBytes: s.prof.WarmBytes,
	}
}

// Frontier returns the lowest index not yet synthesised.
func (s *Stream) Frontier() uint64 { return s.next }

// At returns the uop at absolute index idx. idx must be in
// [released base, Frontier()]; requesting the frontier synthesises one uop.
func (s *Stream) At(idx uint64) *isa.Uop {
	if idx < s.base {
		panic(fmt.Sprintf("trace: uop %d already released (base %d)", idx, s.base))
	}
	for idx >= s.next {
		s.generate()
	}
	return &s.buf[idx-s.base]
}

// Release drops all uops with index < idx; they have committed and can no
// longer be re-fetched. Compaction is amortised.
func (s *Stream) Release(idx uint64) {
	if idx <= s.base {
		return
	}
	if idx > s.next {
		panic(fmt.Sprintf("trace: release beyond frontier (%d > %d)", idx, s.next))
	}
	k := idx - s.base
	// Compact lazily: only when a sizeable prefix is dead, so each uop is
	// copied O(1) times amortised.
	if k >= 1024 || int(k) == len(s.buf) {
		n := copy(s.buf, s.buf[k:])
		s.buf = s.buf[:n]
		s.base = idx
	}
}

// SkipUop synthesises the uop at the frontier into u and advances past it
// without retaining it. It performs exactly the draws generate does — phase
// process, PC walk, addresses, branch directions, operand dependences — so
// the canonical stream is preserved bit-for-bit: uop N has identical content
// whether it was fast-forwarded or detail-executed, and the uops a
// measurement window fetches after a gap match what an uninterrupted run
// would have fetched. (A cheaper variant that skipped the dependence draws
// the pipeline never reads during warming was measured to bias sampled IPC
// low by ~1-2% across the Figure 5 sweep — window content decorrelates from
// the exact run's — so fast-forward pays for the full draw sequence and
// saves only the retention: no buffer append, no compaction, no At/Release
// bookkeeping.)
//
// Skipped indices are consumed — they can never be re-fetched, so SkipUop
// requires every earlier uop to have been released.
func (s *Stream) SkipUop(u *isa.Uop) {
	if s.base != s.next {
		panic(fmt.Sprintf("trace: SkipUop with retained uops [%d,%d)", s.base, s.next))
	}
	s.skipOne(u)
}

// SkipUops discards n consecutive frontier uops — the exact draw sequence
// of n SkipUop calls with the per-call validation hoisted out of the loop.
// u is scratch space; unlike SkipUop it is NOT a faithful synthesis: the
// dependency-distance fields are left zero (their geometric draws advance
// the RNG identically but skip the CDF search — see rng.GeomDist.Skip),
// because no caller observes them. Callers that need complete uops
// (functional warming) use SkipUop per uop instead. This is the
// bulk-advance primitive behind warm-tail fast-forward, where the gap body
// only needs the stream cursor and RNG state moved, not the uops
// themselves.
func (s *Stream) SkipUops(n uint64, u *isa.Uop) {
	if n == 0 {
		return
	}
	if s.base != s.next {
		panic(fmt.Sprintf("trace: SkipUops with retained uops [%d,%d)", s.base, s.next))
	}
	s.skim = true
	defer func() { s.skim = false }()
	for i := uint64(0); i < n; i++ {
		s.skipOne(u)
	}
}

// SkipUopWarm is SkipUop for functional warming: the uop's control and
// memory content (PC, class, effective address, branch direction and
// target) is synthesised faithfully, but the dependency-distance CDF
// searches are elided like SkipUops' (the draws still advance the RNG
// identically). Warming feeds caches, TLBs and predictors — it never reads
// operand dependencies, which only exist for the detailed pipeline.
func (s *Stream) SkipUopWarm(u *isa.Uop) {
	if s.base != s.next {
		panic(fmt.Sprintf("trace: SkipUopWarm with retained uops [%d,%d)", s.base, s.next))
	}
	s.skim = true
	s.skipOne(u)
	s.skim = false
}

// skipOne synthesises the frontier uop into u and consumes it. The caller
// has checked that no retained uops remain.
func (s *Stream) skipOne(u *isa.Uop) {
	p := &s.prof

	s.phaseLeft--
	if s.phaseLeft <= 0 {
		s.slow = s.rg.Bool(p.SlowFrac)
		s.phaseLeft = s.phaseDist.Sample(s.rg)
	}

	*u = isa.Uop{Index: s.next, PC: s.pc}

	switch s.classAt(s.pc) {
	case isa.OpLoad:
		s.genLoad(u)
	case isa.OpStore:
		s.genStore(u)
	case isa.OpBranch:
		s.genBranch(u)
	case isa.OpFPALU:
		u.Class = isa.OpFPALU
		s.genDeps(u)
	case isa.OpFPMul:
		u.Class = isa.OpFPMul
		s.genDeps(u)
	case isa.OpIntMul:
		u.Class = isa.OpIntMul
		s.genDeps(u)
	default:
		u.Class = isa.OpIntALU
		s.genDeps(u)
	}

	if u.Class == isa.OpBranch && u.Taken {
		s.pc = u.Target
	} else {
		s.pc += 4
		if s.pc >= s.codeBase+uint64(p.CodeBytes) {
			s.pc = s.codeBase
		}
	}

	if u.Class == isa.OpLoad {
		s.sinceLoad = 0
	} else if s.sinceLoad < 1<<14 {
		s.sinceLoad++
	}

	s.base++
	s.next++
}

// classAt returns the op class of the static instruction at pc. The
// synthetic program is *static code with dynamic data*: the class (and the
// per-site branch bias, target, chase behaviour, FP-ness of a load) is a
// pure function of the PC, while operand distances, addresses and branch
// directions are drawn per dynamic instance. Static classes are what make
// loops re-execute the same instructions, which in turn is what lets the
// I-cache, BTB and gshare behave as they do on real programs.
func (s *Stream) classAt(pc uint64) isa.OpClass {
	slot := -1
	if i := (pc - s.codeBase) >> 2; i < uint64(len(s.classTab)) {
		if c := s.classTab[i]; c != 0xff {
			return isa.OpClass(c)
		}
		slot = int(i)
	}
	c := s.classAtSlow(pc)
	if slot >= 0 {
		s.classTab[slot] = uint8(c)
	}
	return c
}

// classAtSlow computes the class from the site hash (see classAt).
func (s *Stream) classAtSlow(pc uint64) isa.OpClass {
	p := &s.prof
	h := mix64(pc ^ s.siteSeed ^ 0x51a71c)
	x := float64(h&0xfffff) / float64(1<<20)
	switch {
	case x < p.LoadFrac:
		return isa.OpLoad
	case x < p.LoadFrac+p.StoreFrac:
		return isa.OpStore
	case x < p.LoadFrac+p.StoreFrac+p.BranchFrac:
		// Block heads (32-byte aligned PCs, where all jump targets land)
		// are never branches: without this rule, chains of strongly-taken
		// branches form attractor cycles that capture the PC walk and
		// inflate the dynamic branch fraction ~3x over the static mix.
		if pc&31 == 0 {
			return isa.OpIntALU
		}
		return isa.OpBranch
	case x < p.LoadFrac+p.StoreFrac+p.BranchFrac+p.FPFrac:
		if h&(1<<21) != 0 && h&(1<<22) != 0 {
			return isa.OpFPMul // ~25% of FP compute
		}
		return isa.OpFPALU
	case x < p.LoadFrac+p.StoreFrac+p.BranchFrac+p.FPFrac+p.IntMulFrac:
		return isa.OpIntMul
	default:
		return isa.OpIntALU
	}
}

// generate synthesises the next canonical uop at the frontier.
func (s *Stream) generate() {
	p := &s.prof

	// Phase process.
	s.phaseLeft--
	if s.phaseLeft <= 0 {
		s.slow = s.rg.Bool(p.SlowFrac)
		s.phaseLeft = s.phaseDist.Sample(s.rg)
	}

	u := isa.Uop{Index: s.next, PC: s.pc}

	switch s.classAt(s.pc) {
	case isa.OpLoad:
		s.genLoad(&u)
	case isa.OpStore:
		s.genStore(&u)
	case isa.OpBranch:
		s.genBranch(&u)
	case isa.OpFPALU:
		u.Class = isa.OpFPALU
		s.genDeps(&u)
	case isa.OpFPMul:
		u.Class = isa.OpFPMul
		s.genDeps(&u)
	case isa.OpIntMul:
		u.Class = isa.OpIntMul
		s.genDeps(&u)
	default:
		u.Class = isa.OpIntALU
		s.genDeps(&u)
	}

	// Advance PC: branches may jump, everything else falls through. Keep
	// the PC inside the code footprint so the I-cache sees the intended
	// working set.
	if u.Class == isa.OpBranch && u.Taken {
		s.pc = u.Target
	} else {
		s.pc += 4
		if s.pc >= s.codeBase+uint64(p.CodeBytes) {
			s.pc = s.codeBase
		}
	}

	if u.Class == isa.OpLoad {
		s.sinceLoad = 0
	} else if s.sinceLoad < 1<<14 {
		s.sinceLoad++
	}

	s.buf = append(s.buf, u)
	s.next++
}

// genDeps assigns register dependences from the geometric distance model.
func (s *Stream) genDeps(u *isa.Uop) {
	u.Dep1 = s.depDistance()
	if s.rg.Bool(0.6) { // most ops are two-operand
		u.Dep2 = s.depDistance()
	}
	u.FPDest = isa.DestClass(u.Class) == isa.RegFP
}

func (s *Stream) depDistance() uint16 {
	if s.skim {
		// Bulk skim (SkipUops): consume the draw so the stream stays
		// bit-identical, but skip the CDF search — nothing reads the value.
		s.depDist.Skip(s.rg)
		return 0
	}
	d := s.depDist.Sample(s.rg)
	if d > int(s.next) { // cannot reach before the start of the program
		d = int(s.next)
	}
	if d > 1<<12 {
		d = 1 << 12
	}
	return uint16(d)
}

func (s *Stream) genLoad(u *isa.Uop) {
	u.Class = isa.OpLoad
	u.Addr = s.dataAddr()
	h := mix64(u.PC ^ s.siteSeed ^ 0xf00d)
	// FP-ness and pointer-chasing are per-site properties of the static
	// load instruction.
	u.FPDest = float64(h&0xffff)/0x10000 < s.prof.FPLoadFrac
	chasing := float64((h>>16)&0xffff)/0x10000 < s.prof.ChaseProb
	if chasing && s.sinceLoad > 0 && s.sinceLoad <= 1<<12 {
		// The address depends on the previous load's result, serialising
		// misses (the mcf/art pattern that caps MLP).
		u.Dep1 = uint16(s.sinceLoad)
	} else {
		u.Dep1 = s.depDistance()
	}
}

func (s *Stream) genStore(u *isa.Uop) {
	u.Class = isa.OpStore
	u.Addr = s.dataAddr()
	u.Dep1 = s.depDistance() // address operand
	u.Dep2 = s.depDistance() // data operand
}

func (s *Stream) genFP(u *isa.Uop) {
	if s.rg.Bool(0.7) {
		u.Class = isa.OpFPALU
	} else {
		u.Class = isa.OpFPMul
	}
	s.genDeps(u)
}

// dataAddr draws an effective address from the phase's working-set mixture.
// The region pick inlines rng.Pick with the cached weight total; the
// arithmetic (and therefore every draw) is identical.
func (s *Stream) dataAddr() uint64 {
	mix, total := &s.prof.FastMix, s.mixTotal[0]
	if s.slow {
		mix, total = &s.prof.SlowMix, s.mixTotal[1]
	}
	r := len(mix) - 1
	if total <= 0 {
		r = 0
	} else {
		x := s.rg.Float64() * total
		for i, w := range mix {
			if w <= 0 {
				continue
			}
			if x < w {
				r = i
				break
			}
			x -= w
		}
	}
	base, size := s.regBase[r], s.regSize[r]
	var addr uint64
	if s.rg.Bool(s.prof.StrideFrac) {
		addr = s.lastAddr[r] + 8
		if addr >= base+size {
			addr = base
		}
	} else {
		addr = base + (s.rg.Uint64() % size &^ 7)
	}
	s.lastAddr[r] = addr
	return addr
}

// genBranch synthesises a control-flow uop: per-site stable kind, bias and
// target so the gshare and BTB can learn, plus call/return flavours
// exercising the RAS.
func (s *Stream) genBranch(u *isa.Uop) {
	u.Class = isa.OpBranch
	u.Dep1 = s.depDistance() // condition operand

	h := mix64(u.PC ^ s.siteSeed)
	kindSel := float64((h>>32)&0xffff) / 0x10000
	switch {
	case kindSel < s.prof.CallFrac && len(s.callStack) < maxCallDepth:
		// Static call site.
		u.CallKind = isa.CallDirect
		u.Taken = true
		u.Target = s.siteTarget(u.PC)
		s.callStack = append(s.callStack, u.PC+4)
		return
	case kindSel >= s.prof.CallFrac && kindSel < 2*s.prof.CallFrac && len(s.callStack) > 0:
		// Static return site with a live call stack.
		u.CallKind = isa.CallReturn
		u.Taken = true
		u.Target = s.callStack[len(s.callStack)-1]
		s.callStack = s.callStack[:len(s.callStack)-1]
		return
	}

	// Plain conditional branch with a per-site stable bias.
	var bias float64
	if float64(h&0xffff)/0x10000 < s.prof.Predictability {
		// Strongly biased site; direction chosen by another hash bit.
		if h&0x10000 != 0 {
			bias = 0.97
		} else {
			bias = 0.03
		}
	} else {
		// Erratic (data-dependent) site: moderately biased, 25-75% taken.
		bias = 0.25 + float64((h>>20)&0xff)/256*0.5
	}
	u.Taken = s.rg.Bool(bias)
	if u.Taken {
		u.Target = s.siteTarget(u.PC)
	}
}

// siteTarget returns the stable jump target of the branch site at pc.
// Target geometry mimics real control flow: mostly short backward jumps
// (loops — these give the I-cache and BTB their locality), some short
// forward skips (if/else), and a tail of long-range jumps. Stability per
// site is essential: the BTB caches one target per branch PC.
func (s *Stream) siteTarget(pc uint64) uint64 {
	h := mix64(pc ^ s.siteSeed ^ 0xabcd)
	sel := h & 0xff
	code := uint64(s.prof.CodeBytes)
	var t uint64
	switch {
	case sel < 176: // ~69%: backward loop jump, 64B..2KB
		k := 64 + (h>>8)%1984
		if pc >= s.codeBase+k {
			t = pc - k
		} else {
			t = s.codeBase + (h>>16)%16*32
		}
	case sel < 232: // ~22%: forward skip, 32..512B
		k := 32 + (h>>8)%480
		t = pc + k
		if t >= s.codeBase+code {
			t = s.codeBase + (t-s.codeBase)%code
		}
	default: // ~9%: long-range jump anywhere in the code footprint
		t = s.codeBase + (h>>8)%code
	}
	// Land on a 32-byte block head (see classAt): the walk always executes
	// a sequential run after a jump.
	t &^= 31
	if t == pc { // a self-jump would wedge the PC model
		t = s.codeBase
	}
	return t
}

// WrongPath synthesises the wrong-path uop at PC wpc. Wrong-path uops
// consume fetch bandwidth, queue slots and registers until the squash,
// which is their entire purpose. The wrong path executes the same *static
// code* as the right path — same class per PC, same branch targets — so it
// loops within cached code just like real wrong-path execution (a junk PC
// walk into never-executed code would stall on I-cache misses and
// under-model the resource pressure the paper's policies fight over).
// The caller advances its wrong-path PC with NextWrongPC.
func (s *Stream) WrongPath(wpc uint64) isa.Uop {
	u := isa.Uop{
		Index:     ^uint64(0), // never a valid canonical index
		PC:        wpc,
		WrongPath: true,
	}
	u.Class = s.classAt(wpc)
	switch u.Class {
	case isa.OpBranch:
		// Follow per-site bias and target so the wrong path stays inside
		// the program's loops. These branches are never predicted or
		// resolved as mispredicts; they only steer wrong-path fetch.
		h := mix64(wpc ^ s.siteSeed)
		bias := 0.5
		if float64(h&0xffff)/0x10000 < s.prof.Predictability {
			if h&0x10000 != 0 {
				bias = 0.97
			} else {
				bias = 0.03
			}
		}
		u.Taken = s.wrg.Bool(bias)
		if u.Taken {
			u.Target = s.siteTarget(wpc)
		}
	case isa.OpLoad, isa.OpStore:
		// Wrong-path memory ops read the same working sets as the right
		// path (they are the same program), drawn from a parallel stream so
		// squashes cannot perturb canonical addresses. They pollute the
		// caches mildly, like real wrong-path execution.
		mix := s.prof.FastMix
		if s.slow {
			mix = s.prof.SlowMix
		}
		r := s.wrg.Pick(mix[:])
		u.Addr = s.regBase[r] + (s.wrg.Uint64() % s.regSize[r] &^ 7)
		u.FPDest = u.Class == isa.OpLoad && s.wrg.Bool(s.prof.FPLoadFrac)
	case isa.OpFPALU, isa.OpFPMul:
		u.FPDest = true
	}
	u.Dep1 = uint16(s.wrg.Intn(8))
	return u
}

// NextWrongPC returns the wrong-path PC following uop u (branch target or
// fall-through, wrapped into the code footprint).
func (s *Stream) NextWrongPC(u *isa.Uop) uint64 {
	if u.Class == isa.OpBranch && u.Taken {
		return u.Target
	}
	pc := u.PC + 4
	if pc >= s.codeBase+uint64(s.prof.CodeBytes) {
		pc = s.codeBase
	}
	return pc
}

// mix64 is SplitMix64's finaliser, used as a cheap stable hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
