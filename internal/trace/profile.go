// Package trace generates synthetic instruction streams that stand in for
// the paper's Alpha SPEC2000 traces.
//
// The substitution is documented in EXPERIMENTS.md: every policy the paper
// studies reacts only to dynamic resource-demand signals (queue and register
// occupancy, cache misses, branch mispredictions, dependency-limited ILP),
// so a statistical model that reproduces those signals — with real simulated
// caches and predictors, so miss rates are emergent rather than injected —
// preserves the behaviour the experiments measure.
//
// Each SPEC2000 program is described by a Profile; a Stream turns a Profile
// into a deterministic, replayable micro-op sequence.
package trace

import "fmt"

// Profile is the statistical model of one benchmark.
type Profile struct {
	Name string
	FP   bool // floating-point suite member (Table 3 grouping)
	Mem  bool // MEM thread per the paper's taxonomy (L2 miss rate >= 1%)

	// Instruction mix (fractions of all uops; remainder is integer ALU).
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64
	FPFrac     float64 // FP compute fraction (split 70/30 between FP-ALU and FP-mul)
	IntMulFrac float64

	// FPLoadFrac is the fraction of loads that write FP registers.
	FPLoadFrac float64

	// MeanDep is the mean backwards dependency distance; small values mean
	// serial code (low ILP), large values mean independent work.
	MeanDep float64
	// ChaseProb is the probability a load's address depends on the previous
	// load (pointer chasing); it serialises misses and caps MLP.
	ChaseProb float64

	// Branch behaviour: CallFrac of branches are calls (matched returns are
	// emitted while the synthetic call stack is non-empty); Predictability
	// is the fraction of static branch sites that are strongly biased.
	CallFrac       float64
	Predictability float64

	// Footprints in bytes. Code drives the I-cache; the three data regions
	// drive the D-side hierarchy: Hot fits L1, Warm fits L2, Cold exceeds L2.
	CodeBytes int
	HotBytes  int
	WarmBytes int
	ColdBytes int

	// StrideFrac is the fraction of data accesses that walk sequentially
	// within their region (spatial locality); the rest are uniform random.
	StrideFrac float64

	// Region mixture [hot, warm, cold] per phase. The slow phase is the
	// memory-bound phase; the Markov phase process (SlowFrac, PhaseLen)
	// switches between them.
	FastMix  [3]float64
	SlowMix  [3]float64
	SlowFrac float64 // long-run fraction of instructions in slow phases
	PhaseLen float64 // mean instructions per phase episode

	// PaperL2MissRate is the L2 miss rate (%) reported in the paper's
	// Table 3, kept for the side-by-side reproduction report.
	PaperL2MissRate float64
}

// Validate checks the profile is internally consistent.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("trace: profile without name")
	}
	sum := p.LoadFrac + p.StoreFrac + p.BranchFrac + p.FPFrac + p.IntMulFrac
	if sum >= 1 {
		return fmt.Errorf("trace: %s instruction mix sums to %.2f >= 1", p.Name, sum)
	}
	for _, f := range []float64{p.LoadFrac, p.StoreFrac, p.BranchFrac, p.FPFrac,
		p.IntMulFrac, p.FPLoadFrac, p.ChaseProb, p.CallFrac, p.Predictability,
		p.StrideFrac, p.SlowFrac} {
		if f < 0 || f > 1 {
			return fmt.Errorf("trace: %s has fraction outside [0,1]", p.Name)
		}
	}
	if p.MeanDep < 1 {
		return fmt.Errorf("trace: %s mean dependency distance %.1f < 1", p.Name, p.MeanDep)
	}
	if p.CodeBytes <= 0 || p.HotBytes <= 0 || p.WarmBytes <= 0 || p.ColdBytes <= 0 {
		return fmt.Errorf("trace: %s has non-positive footprint", p.Name)
	}
	if p.PhaseLen < 1 {
		return fmt.Errorf("trace: %s phase length %.0f < 1", p.Name, p.PhaseLen)
	}
	return nil
}

// Type returns the paper's thread taxonomy label.
func (p Profile) Type() string {
	if p.Mem {
		return "MEM"
	}
	return "ILP"
}

// intProfile and fpProfile build baseline mixes for the two suites; the
// benchmark table below then perturbs memory behaviour per program.
func intProfile(name string) Profile {
	return Profile{
		Name:       name,
		LoadFrac:   0.26,
		StoreFrac:  0.11,
		BranchFrac: 0.14,
		IntMulFrac: 0.01,
		MeanDep:    6,
		CallFrac:   0.08,

		Predictability: 0.92,
		CodeBytes:      12 << 10,
		HotBytes:       10 << 10,
		WarmBytes:      96 << 10,
		ColdBytes:      48 << 20,
		StrideFrac:     0.45,
		FastMix:        [3]float64{0.985, 0.01498, 0.00002},
		SlowMix:        [3]float64{0.93, 0.06985, 0.00015},
		SlowFrac:       0.20,
		PhaseLen:       4000,
	}
}

func fpProfile(name string) Profile {
	p := intProfile(name)
	p.FP = true
	p.BranchFrac = 0.07
	p.FPFrac = 0.30
	p.FPLoadFrac = 0.60
	p.MeanDep = 9
	p.Predictability = 0.97
	p.StrideFrac = 0.70
	return p
}

// Benchmarks returns the full synthetic SPEC2000 suite keyed by name. The
// memory parameters are calibrated so single-thread simulation on the
// baseline configuration lands each program on the correct side of the
// paper's MEM/ILP split and in roughly the right L2 miss-rate order
// (Table 3); EXPERIMENTS.md records measured-vs-paper values.
func Benchmarks() map[string]Profile {
	m := make(map[string]Profile)
	add := func(p Profile) {
		if _, dup := m[p.Name]; dup {
			panic("trace: duplicate benchmark " + p.Name)
		}
		if err := p.Validate(); err != nil {
			panic(err)
		}
		m[p.Name] = p
	}

	// ---- MEM integer ----
	mcf := intProfile("mcf")
	mcf.Mem = true
	mcf.CodeBytes = 20 << 10
	mcf.HotBytes = 16 << 10
	mcf.WarmBytes = 224 << 10
	mcf.PaperL2MissRate = 29.6
	mcf.MeanDep = 3.2
	mcf.ChaseProb = 0.55
	mcf.Predictability = 0.96
	mcf.StrideFrac = 0.05
	mcf.ColdBytes = 160 << 20
	mcf.FastMix = [3]float64{0.76, 0.21, 0.03}
	mcf.SlowMix = [3]float64{0.62, 0.28, 0.10}
	mcf.SlowFrac = 0.88
	mcf.LoadFrac = 0.31
	add(mcf)

	twolf := intProfile("twolf")
	twolf.Mem = true
	twolf.CodeBytes = 20 << 10
	twolf.HotBytes = 16 << 10
	twolf.WarmBytes = 224 << 10
	twolf.PaperL2MissRate = 2.9
	twolf.MeanDep = 4.5
	twolf.ChaseProb = 0.15
	twolf.StrideFrac = 0.25
	twolf.FastMix = [3]float64{0.92, 0.079, 0.001}
	twolf.SlowMix = [3]float64{0.84, 0.155, 0.005}
	twolf.SlowFrac = 0.60
	add(twolf)

	vpr := intProfile("vpr")
	vpr.Mem = true
	vpr.CodeBytes = 20 << 10
	vpr.HotBytes = 16 << 10
	vpr.WarmBytes = 224 << 10
	vpr.PaperL2MissRate = 1.9
	vpr.MeanDep = 4.8
	vpr.ChaseProb = 0.12
	vpr.StrideFrac = 0.30
	vpr.FastMix = [3]float64{0.93, 0.0695, 0.0005}
	vpr.SlowMix = [3]float64{0.85, 0.147, 0.003}
	vpr.SlowFrac = 0.55
	add(vpr)

	parser := intProfile("parser")
	parser.Mem = true
	parser.CodeBytes = 20 << 10
	parser.HotBytes = 16 << 10
	parser.WarmBytes = 224 << 10
	parser.PaperL2MissRate = 1.0
	parser.MeanDep = 5.0
	parser.ChaseProb = 0.20
	parser.FastMix = [3]float64{0.94, 0.0596, 0.0004}
	parser.SlowMix = [3]float64{0.87, 0.128, 0.002}
	parser.SlowFrac = 0.45
	add(parser)

	// ---- MEM floating point ----
	art := fpProfile("art")
	art.Mem = true
	art.CodeBytes = 20 << 10
	art.HotBytes = 16 << 10
	art.WarmBytes = 224 << 10
	art.PaperL2MissRate = 18.6
	art.MeanDep = 4.0
	art.ChaseProb = 0.25
	art.StrideFrac = 0.35
	art.ColdBytes = 96 << 20
	art.FastMix = [3]float64{0.82, 0.165, 0.015}
	art.SlowMix = [3]float64{0.66, 0.285, 0.055}
	art.SlowFrac = 0.85
	add(art)

	swim := fpProfile("swim")
	swim.Mem = true
	swim.CodeBytes = 20 << 10
	swim.HotBytes = 16 << 10
	swim.WarmBytes = 224 << 10
	swim.PaperL2MissRate = 11.4
	swim.MeanDep = 11
	swim.ChaseProb = 0.02
	swim.StrideFrac = 0.85 // streaming
	swim.ColdBytes = 128 << 20
	swim.FastMix = [3]float64{0.85, 0.144, 0.006}
	swim.SlowMix = [3]float64{0.70, 0.27, 0.03}
	swim.SlowFrac = 0.80
	add(swim)

	lucas := fpProfile("lucas")
	lucas.Mem = true
	lucas.CodeBytes = 20 << 10
	lucas.HotBytes = 16 << 10
	lucas.WarmBytes = 224 << 10
	lucas.PaperL2MissRate = 7.47
	lucas.MeanDep = 9
	lucas.ChaseProb = 0.05
	lucas.StrideFrac = 0.75
	lucas.FastMix = [3]float64{0.88, 0.118, 0.002}
	lucas.SlowMix = [3]float64{0.74, 0.24, 0.02}
	lucas.SlowFrac = 0.70
	add(lucas)

	equake := fpProfile("equake")
	equake.Mem = true
	equake.CodeBytes = 20 << 10
	equake.HotBytes = 16 << 10
	equake.WarmBytes = 224 << 10
	equake.PaperL2MissRate = 4.72
	equake.MeanDep = 7
	equake.ChaseProb = 0.18
	equake.StrideFrac = 0.50
	equake.FastMix = [3]float64{0.90, 0.099, 0.001}
	equake.SlowMix = [3]float64{0.80, 0.191, 0.009}
	equake.SlowFrac = 0.65
	add(equake)

	// ---- ILP integer ----
	gap := intProfile("gap")
	gap.PaperL2MissRate = 0.7
	gap.SlowMix = [3]float64{0.92, 0.0796, 0.0004}
	gap.SlowFrac = 0.30
	add(gap)

	vortex := intProfile("vortex")
	vortex.PaperL2MissRate = 0.3
	vortex.CodeBytes = 64 << 10 // large code footprint: some I-cache misses
	vortex.SlowMix = [3]float64{0.93, 0.06985, 0.00015}
	vortex.SlowFrac = 0.22
	add(vortex)

	gcc := intProfile("gcc")
	gcc.PaperL2MissRate = 0.3
	gcc.CodeBytes = 96 << 10
	gcc.Predictability = 0.88
	gcc.SlowMix = [3]float64{0.93, 0.0698, 0.0002}
	gcc.SlowFrac = 0.22
	add(gcc)

	perl := intProfile("perl")
	perl.PaperL2MissRate = 0.1
	perl.CodeBytes = 48 << 10
	perl.SlowFrac = 0.15
	add(perl)

	bzip2 := intProfile("bzip2")
	bzip2.PaperL2MissRate = 0.1
	bzip2.MeanDep = 7
	bzip2.SlowFrac = 0.15
	add(bzip2)

	crafty := intProfile("crafty")
	crafty.PaperL2MissRate = 0.1
	crafty.Predictability = 0.87
	crafty.MeanDep = 7
	crafty.SlowFrac = 0.12
	add(crafty)

	gzip := intProfile("gzip")
	gzip.PaperL2MissRate = 0.1
	gzip.MeanDep = 8
	gzip.SlowFrac = 0.12
	add(gzip)

	eon := intProfile("eon")
	eon.PaperL2MissRate = 0.0
	eon.MeanDep = 8
	eon.Predictability = 0.96
	eon.FastMix = [3]float64{0.985, 0.014995, 0.000005}
	eon.SlowMix = [3]float64{0.93, 0.06995, 0.00005}
	eon.SlowFrac = 0.08
	add(eon)

	// ---- ILP floating point ----
	apsi := fpProfile("apsi")
	apsi.PaperL2MissRate = 0.9
	apsi.SlowMix = [3]float64{0.91, 0.0895, 0.0005}
	apsi.SlowFrac = 0.30
	add(apsi)

	wupwise := fpProfile("wupwise")
	wupwise.PaperL2MissRate = 0.9
	wupwise.SlowMix = [3]float64{0.91, 0.0895, 0.0005}
	wupwise.SlowFrac = 0.28
	add(wupwise)

	mesa := fpProfile("mesa")
	mesa.PaperL2MissRate = 0.1
	mesa.FPFrac = 0.22
	mesa.SlowFrac = 0.12
	add(mesa)

	fma3d := fpProfile("fma3d")
	fma3d.PaperL2MissRate = 0.0
	fma3d.FastMix = [3]float64{0.985, 0.014995, 0.000005}
	fma3d.SlowMix = [3]float64{0.93, 0.06995, 0.00005}
	fma3d.SlowFrac = 0.08
	add(fma3d)

	return m
}

// MustProfile returns the named benchmark profile or panics; experiment code
// uses it for the fixed workload tables.
func MustProfile(name string) Profile {
	p, ok := Benchmarks()[name]
	if !ok {
		panic("trace: unknown benchmark " + name)
	}
	return p
}

// ProfileByName returns the named benchmark profile, with an error rather
// than a panic for names arriving from external inputs (campaign cells,
// shard files).
func ProfileByName(name string) (Profile, error) {
	p, ok := Benchmarks()[name]
	if !ok {
		return Profile{}, fmt.Errorf("trace: unknown benchmark %q", name)
	}
	return p, nil
}

// Names returns all benchmark names in a deterministic order: MEM first in
// descending paper miss rate, then ILP, matching Table 3's presentation.
func Names() []string {
	return []string{
		"mcf", "twolf", "vpr", "parser", // MEM int
		"art", "swim", "lucas", "equake", // MEM fp
		"gap", "vortex", "gcc", "perl", "bzip2", "crafty", "gzip", "eon", // ILP int
		"apsi", "wupwise", "mesa", "fma3d", // ILP fp
	}
}
