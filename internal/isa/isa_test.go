package isa

import (
	"testing"
	"testing/quick"
)

func TestQueueOf(t *testing.T) {
	cases := map[OpClass]Queue{
		OpNop:    QInt,
		OpIntALU: QInt,
		OpIntMul: QInt,
		OpBranch: QInt,
		OpFPALU:  QFP,
		OpFPMul:  QFP,
		OpLoad:   QLoadStore,
		OpStore:  QLoadStore,
	}
	for c, want := range cases {
		if got := QueueOf(c); got != want {
			t.Errorf("QueueOf(%v) = %v, want %v", c, got, want)
		}
	}
}

func TestDestClass(t *testing.T) {
	cases := map[OpClass]RegClass{
		OpIntALU: RegInt,
		OpIntMul: RegInt,
		OpLoad:   RegInt,
		OpFPALU:  RegFP,
		OpFPMul:  RegFP,
		OpBranch: RegNone,
		OpStore:  RegNone,
		OpNop:    RegNone,
	}
	for c, want := range cases {
		if got := DestClass(c); got != want {
			t.Errorf("DestClass(%v) = %v, want %v", c, got, want)
		}
	}
}

func TestDestRegClassFPLoad(t *testing.T) {
	u := Uop{Class: OpLoad, Addr: 8, FPDest: true}
	if got := u.DestRegClass(); got != RegFP {
		t.Fatalf("FP load dest class = %v, want fp", got)
	}
	u.FPDest = false
	if got := u.DestRegClass(); got != RegInt {
		t.Fatalf("int load dest class = %v, want int", got)
	}
}

func TestIsMem(t *testing.T) {
	for c := OpClass(0); int(c) < NumOpClasses; c++ {
		want := c == OpLoad || c == OpStore
		if got := IsMem(c); got != want {
			t.Errorf("IsMem(%v) = %v, want %v", c, got, want)
		}
	}
}

func TestValidate(t *testing.T) {
	valid := []Uop{
		{Class: OpIntALU},
		{Class: OpLoad, Addr: 64},
		{Class: OpLoad, Addr: 64, FPDest: true},
		{Class: OpFPALU, FPDest: true},
		{Class: OpBranch, Taken: true, Target: 4},
		{Class: OpBranch, Taken: false},
		{Class: OpStore, Addr: 8},
	}
	for i, u := range valid {
		if err := u.Validate(); err != nil {
			t.Errorf("valid uop %d rejected: %v", i, err)
		}
	}
	invalid := []Uop{
		{Class: OpClass(200)},
		{Class: OpLoad, Addr: 0},
		{Class: OpBranch, Taken: true, Target: 0},
		{Class: OpFPALU, FPDest: false},
		{Class: OpIntALU, FPDest: true},
	}
	for i, u := range invalid {
		if err := u.Validate(); err == nil {
			t.Errorf("invalid uop %d accepted", i)
		}
	}
}

func TestStringNames(t *testing.T) {
	if OpLoad.String() != "load" || OpFPMul.String() != "fpmul" {
		t.Error("op class names wrong")
	}
	if QInt.String() != "intIQ" || QLoadStore.String() != "lsIQ" {
		t.Error("queue names wrong")
	}
	if RegFP.String() != "fp" || RegNone.String() != "none" {
		t.Error("reg class names wrong")
	}
	if OpClass(99).String() == "" || Queue(9).String() == "" || RegClass(9).String() == "" {
		t.Error("out-of-range String must not be empty")
	}
}

// TestQueueDestConsistency checks the property that every class maps to
// exactly one queue and its destination class is internally consistent.
func TestQueueDestConsistency(t *testing.T) {
	err := quick.Check(func(raw uint8) bool {
		c := OpClass(raw % uint8(NumOpClasses))
		q := QueueOf(c)
		if q >= NumQueues {
			return false
		}
		d := DestClass(c)
		// FP-queue compute classes must write FP registers.
		if (c == OpFPALU || c == OpFPMul) && d != RegFP {
			return false
		}
		// Nothing outside the FP queue writes FP (loads use the flag).
		if q != QFP && d == RegFP {
			return false
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
