// Package isa defines the micro-operation model shared by the synthetic
// workload generator and the SMT pipeline.
//
// The simulator is trace-driven: semantics of instructions are irrelevant,
// only their resource footprint matters (which queue they occupy, which
// register class they write, how long their functional unit takes, whether
// they touch memory or redirect fetch). A Uop therefore carries operand
// *positions* in the instruction stream rather than register numbers: the
// generator expresses "this uop consumes the value produced k uops ago",
// and the renamer turns that into physical-register dependences.
package isa

import "fmt"

// OpClass identifies the resource class of a micro-operation.
type OpClass uint8

// Operation classes. The three queue-occupying groups mirror the paper's
// three issue queues (integer, FP, load/store).
const (
	OpNop    OpClass = iota
	OpIntALU         // 1-cycle integer operation
	OpIntMul         // multi-cycle integer multiply/divide
	OpBranch         // conditional branch (integer IQ)
	OpFPALU          // FP add/compare
	OpFPMul          // FP multiply/divide
	OpLoad           // memory load (load/store IQ)
	OpStore          // memory store (load/store IQ)
	numOpClasses
)

// NumOpClasses is the number of distinct operation classes.
const NumOpClasses = int(numOpClasses)

var opClassNames = [...]string{
	OpNop:    "nop",
	OpIntALU: "ialu",
	OpIntMul: "imul",
	OpBranch: "br",
	OpFPALU:  "fpalu",
	OpFPMul:  "fpmul",
	OpLoad:   "load",
	OpStore:  "store",
}

func (c OpClass) String() string {
	if int(c) < len(opClassNames) {
		return opClassNames[c]
	}
	return fmt.Sprintf("OpClass(%d)", uint8(c))
}

// CallKind classifies branch flavours for return-address prediction.
type CallKind uint8

// Branch flavours.
const (
	CallNone   CallKind = iota // plain conditional branch
	CallDirect                 // call: pushes return address
	CallReturn                 // return: pops predicted target
)

// RegClass identifies a register file.
type RegClass uint8

// Register classes.
const (
	RegNone RegClass = iota // no register
	RegInt
	RegFP
)

func (c RegClass) String() string {
	switch c {
	case RegNone:
		return "none"
	case RegInt:
		return "int"
	case RegFP:
		return "fp"
	}
	return fmt.Sprintf("RegClass(%d)", uint8(c))
}

// Queue identifies an issue queue, following the paper's three-queue split.
type Queue uint8

// Issue queues.
const (
	QInt Queue = iota
	QFP
	QLoadStore
	NumQueues
)

func (q Queue) String() string {
	switch q {
	case QInt:
		return "intIQ"
	case QFP:
		return "fpIQ"
	case QLoadStore:
		return "lsIQ"
	}
	return fmt.Sprintf("Queue(%d)", uint8(q))
}

// QueueOf returns the issue queue in which class c waits for issue.
func QueueOf(c OpClass) Queue {
	switch c {
	case OpFPALU, OpFPMul:
		return QFP
	case OpLoad, OpStore:
		return QLoadStore
	default:
		return QInt
	}
}

// DestClass returns the register class written by class c. Branches and
// stores produce no register value.
func DestClass(c OpClass) RegClass {
	switch c {
	case OpIntALU, OpIntMul, OpLoad:
		return RegInt
	case OpFPALU, OpFPMul:
		return RegFP
	default:
		return RegNone
	}
}

// IsMem reports whether class c accesses the data cache.
func IsMem(c OpClass) bool { return c == OpLoad || c == OpStore }

// Uop is one micro-operation of the trace. Dependences are expressed as
// backwards distances in the same thread's committed-order stream: a
// distance d > 0 means "the uop d positions earlier produces my operand";
// d == 0 means the operand is ready (immediate, or produced long ago).
type Uop struct {
	Index uint64  // position in the thread's canonical stream (0-based)
	PC    uint64  // synthetic program counter (for predictors/caches)
	Class OpClass // resource class

	// Dep1/Dep2 are backwards dependence distances (0 = no dependence).
	Dep1 uint16
	Dep2 uint16

	// Addr is the effective address for loads/stores (already translated by
	// the generator's address model; the TLB model hashes it).
	Addr uint64

	// Taken and Target describe the canonical outcome of a branch.
	Taken  bool
	Target uint64

	// CallKind distinguishes calls and returns among branches so the RAS
	// participates in target prediction.
	CallKind CallKind

	// FPDest marks uops writing an FP register. For ALU classes it is
	// implied by Class; for loads it distinguishes FP loads (which allocate
	// an FP physical register) from integer loads.
	FPDest bool

	// WrongPath marks uops synthesised beyond a mispredicted branch. They
	// consume resources but never commit.
	WrongPath bool
}

// Validate performs structural sanity checks, used by tests and the
// generator's self-checks.
func (u *Uop) Validate() error {
	if u.Class >= numOpClasses {
		return fmt.Errorf("isa: invalid op class %d", u.Class)
	}
	if IsMem(u.Class) && u.Addr == 0 {
		return fmt.Errorf("isa: memory uop %d without address", u.Index)
	}
	if u.Class == OpBranch && u.Taken && u.Target == 0 {
		return fmt.Errorf("isa: taken branch %d without target", u.Index)
	}
	if u.Class != OpLoad && u.FPDest != (DestClass(u.Class) == RegFP) {
		return fmt.Errorf("isa: uop %d FPDest flag inconsistent with class %v", u.Index, u.Class)
	}
	return nil
}

// DestRegClass returns the register class this uop's destination actually
// occupies, honouring the FP-load distinction.
func (u *Uop) DestRegClass() RegClass {
	c := DestClass(u.Class)
	if u.Class == OpLoad && u.FPDest {
		return RegFP
	}
	return c
}
