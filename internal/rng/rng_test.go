package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeeds(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestReseed(t *testing.T) {
	s := New(7)
	first := s.Uint64()
	s.Uint64()
	s.Reseed(7)
	if got := s.Uint64(); got != first {
		t.Fatalf("reseed did not restore stream: %d != %d", got, first)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	if a, b := s.Uint64(), s.Uint64(); a == 0 && b == 0 {
		t.Fatal("zero seed produced a stuck zero stream")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(42)
	err := quick.Check(func(n uint16) bool {
		bound := int(n%1000) + 1
		v := s.Intn(bound)
		return v >= 0 && v < bound
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(9)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d: %d draws, want about %d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		if f := s.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(4)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(5)
	hits := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / draws
	if got < 0.28 || got > 0.32 {
		t.Fatalf("Bool(0.3) hit rate %.3f", got)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(6)
	for _, mean := range []float64{1, 2, 5, 20} {
		var sum float64
		const draws = 50000
		for i := 0; i < draws; i++ {
			v := s.Geometric(mean)
			if v < 1 {
				t.Fatalf("Geometric(%v) returned %d < 1", mean, v)
			}
			sum += float64(v)
		}
		got := sum / draws
		if mean == 1 {
			if got != 1 {
				t.Fatalf("Geometric(1) mean %v, want exactly 1", got)
			}
			continue
		}
		if got < mean*0.93 || got > mean*1.07 {
			t.Errorf("Geometric(%v) sample mean %.3f", mean, got)
		}
	}
}

func TestPickWeights(t *testing.T) {
	s := New(8)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const draws = 40000
	for i := 0; i < draws; i++ {
		counts[s.Pick(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("picked zero-weight bucket %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio %.2f, want about 3", ratio)
	}
}

func TestPickDegenerate(t *testing.T) {
	s := New(8)
	if got := s.Pick([]float64{0, 0}); got != 0 {
		t.Fatalf("all-zero weights: got %d, want 0", got)
	}
	if got := s.Pick([]float64{-1, -2}); got != 0 {
		t.Fatalf("negative weights: got %d, want 0", got)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(11)
	child := parent.Split()
	// Draw from the child; the parent's subsequent stream must be the same
	// as if the child were never consumed.
	parentCopy := New(11)
	parentCopy.Split()
	for i := 0; i < 100; i++ {
		child.Uint64()
	}
	for i := 0; i < 100; i++ {
		if parent.Uint64() != parentCopy.Uint64() {
			t.Fatal("consuming a split child perturbed the parent stream")
		}
	}
}
