// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by the synthetic workload generator and the simulator.
//
// Reproducibility is a hard requirement for the experiment harness: two runs
// with the same seed must produce bit-identical instruction streams and
// therefore identical simulation results. math/rand would work, but its
// global state and historical Seed semantics make accidental coupling easy;
// a tiny local SplitMix64/xoshiro combination keeps every stream independent
// and explicit.
package rng

import "sync"

// Source is a deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64).
// The zero value is not usable; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed. Distinct seeds yield independent
// streams for all practical purposes.
func New(seed uint64) *Source {
	var s Source
	s.Reseed(seed)
	return &s
}

// Reseed resets the generator to the state derived from seed.
func (s *Source) Reseed(seed uint64) {
	// SplitMix64 to spread the seed across the full state, avoiding the
	// all-zero state xoshiro cannot escape.
	x := seed
	for i := range s.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		s.s[i] = z ^ (z >> 31)
	}
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Geometric returns a sample from a geometric distribution with mean m
// (support {1, 2, ...}). Used for dependency distances: mean m implies
// success probability 1/m per trial. For m <= 1 it always returns 1.
func (s *Source) Geometric(m float64) int {
	if m <= 1 {
		return 1
	}
	p := 1 / m
	// Inverse-CDF sampling keeps this O(1) regardless of the mean.
	u := s.Float64()
	// ceil(log(1-u)/log(1-p)) without importing math: iterate only for the
	// tiny fraction of cases where the fast path overflows is not worth it;
	// use the math-free iterative fallback only for pathological u.
	return geomFromUniform(u, p)
}

// geomFromUniform converts a uniform sample into a geometric sample.
func geomFromUniform(u, p float64) int {
	// Iterative CDF walk, capped to keep worst case bounded. The cap at 4096
	// only truncates an O(e^-40) tail for realistic means (<= 100).
	q := 1 - p
	cdf := p
	tail := p
	for k := 1; k < 4096; k++ {
		if u < cdf {
			return k
		}
		tail *= q
		cdf += tail
	}
	return 4096
}

// GeomDist is a precomputed sampler for the geometric distribution with a
// fixed mean. It draws samples bit-identical to Source.Geometric for the
// same uniform input, but replaces the per-call CDF walk (O(mean) float
// operations, a steady ~5-7% of simulation time for the dependency-distance
// model) with a binary search over a CDF table built once per distinct
// mean. Tables are immutable after construction and safe to share across
// goroutines.
type GeomDist struct {
	cdf []float64 // cdf[k-1] = P(X <= k), accumulated exactly like geomFromUniform

	// guide[j] is the smallest index i with cdf[i] > j/guideBuckets: a draw
	// u starts its linear scan at guide[int(u*guideBuckets)], which lands
	// within a couple of entries of the answer for any mean. The table only
	// accelerates the search — results are identical to a full scan.
	guide [guideBuckets]int32
}

// guideBuckets is the resolution of the GeomDist guide table.
const guideBuckets = 256

// geomDistCache shares tables between streams; the experiment suite uses
// only a handful of distinct means (one MeanDep and one PhaseLen per
// benchmark profile).
var geomDistCache sync.Map // float64 -> *GeomDist

// NewGeomDist returns the (cached) sampler for mean m.
func NewGeomDist(m float64) *GeomDist {
	if g, ok := geomDistCache.Load(m); ok {
		return g.(*GeomDist)
	}
	g := &GeomDist{}
	if m > 1 {
		p := 1 / m
		q := 1 - p
		cdf := make([]float64, 4095)
		tail := p
		c := p
		cdf[0] = c
		for k := 2; k < 4096; k++ {
			tail *= q
			c += tail
			cdf[k-1] = c
		}
		g.cdf = cdf
		i := int32(0)
		for j := range g.guide {
			for int(i) < len(cdf) && cdf[i] <= float64(j)/guideBuckets {
				i++
			}
			g.guide[j] = i
		}
	}
	actual, _ := geomDistCache.LoadOrStore(m, g)
	return actual.(*GeomDist)
}

// Skip advances s exactly as Sample would — one uniform draw when the
// distribution is non-trivial, none otherwise — without the CDF search.
// Bulk stream skims use it when they need the generator state moved but
// not the sampled value: draw sequences stay bit-identical to Sample at a
// fraction of the cost.
func (g *GeomDist) Skip(s *Source) {
	if g.cdf != nil {
		s.Float64()
	}
}

// Sample draws from the distribution using randomness from s. It consumes
// exactly one Float64, like Source.Geometric.
func (g *GeomDist) Sample(s *Source) int {
	if g.cdf == nil {
		return 1
	}
	u := s.Float64()
	// Smallest k (1-based) with u < cdf[k-1]; the walk in geomFromUniform
	// checks the same predicate in ascending order, so the results agree.
	// The guide table starts the scan at the first candidate for u's bucket,
	// so the expected scan length is O(1) for any mean.
	cdf := g.cdf
	i := int(g.guide[int(u*guideBuckets)])
	for i < len(cdf) && cdf[i] <= u {
		i++
	}
	if i >= len(cdf) {
		return 4096
	}
	return i + 1
}

// Pick returns an index in [0, len(weights)) with probability proportional
// to weights[i]. Zero or negative total weight returns 0.
func (s *Source) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := s.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// Split derives a new independent Source from this one. Useful to hand each
// thread or each model component its own stream so that consuming randomness
// in one never perturbs another.
func (s *Source) Split() *Source {
	dst := new(Source)
	s.SplitInto(dst)
	return dst
}

// SplitInto reseeds dst exactly as Split would seed a fresh Source, without
// allocating. Reset paths use it to rebind an existing generator to a new
// stream bit-identically to construction.
func (s *Source) SplitInto(dst *Source) {
	dst.Reseed(s.Uint64() ^ 0xa0761d6478bd642f)
}
